//! Component micro-benches: the hot paths of each substrate crate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use downlake_analysis::AnalysisFrame;
use downlake_avtype::{BehaviorExtractor, FamilyExtractor};
use downlake_bench::tiny_study;
use downlake_features::{build_training_set, Extractor};
use downlake_groundtruth::VirusTotalSim;
use downlake_rulelearn::{ConflictPolicy, PartLearner, TreeConfig};
use downlake_types::{effective_second_level_domain, FileHash, LatentProfile, Timestamp, Url};
use std::hint::black_box;

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group.sample_size(20);

    // e2LD extraction / URL parsing.
    let hosts = [
        "dl3.files.softonic.com",
        "cdn.baixaki.com.br",
        "a.b.c.example.co.uk",
        "192.168.10.4",
        "wipmsc.ru",
    ];
    group.throughput(Throughput::Elements(hosts.len() as u64));
    group.bench_function("e2ld_extraction", |b| {
        b.iter(|| {
            for host in hosts {
                black_box(effective_second_level_domain(black_box(host)));
            }
        })
    });
    group.bench_function("url_parse", |b| {
        b.iter(|| {
            black_box(
                "http://dl3.files.softonic.com/pkg/setup_v2.exe"
                    .parse::<Url>()
                    .unwrap(),
            )
        })
    });

    // AV label interpretation (AVType) and family extraction.
    let labels = [
        ("Symantec", "Trojan.Zbot"),
        ("McAfee", "Downloader-FYH!6C7411D1C043"),
        ("Kaspersky", "Trojan-Spy.Win32.Zbot.ruxa"),
        ("Microsoft", "PWS:Win32/Zbot"),
    ];
    let behavior = BehaviorExtractor::new();
    group.bench_function("avtype_extract", |b| {
        b.iter(|| black_box(behavior.extract(black_box(&labels))))
    });
    let families = FamilyExtractor::new();
    group.bench_function("avclass_family", |b| {
        b.iter(|| black_box(families.extract(black_box(&labels))))
    });

    // VirusTotal scan simulation.
    let vt = VirusTotalSim::new(7);
    let profile = LatentProfile::malicious(
        downlake_types::FileNature::Malicious(downlake_types::MalwareType::Dropper),
        Some("somoto".into()),
        0.95,
        0.9,
    );
    group.bench_function("vt_scan", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(vt.scan(FileHash::from_raw(i), &profile, Timestamp::from_day(3)))
        })
    });

    // Feature extraction + PART training + classification on real data.
    let study = tiny_study();
    let extractor = Extractor::new(study.dataset(), study.url_labeler());
    group.bench_function("feature_extract_event", |b| {
        let event = &study.dataset().events()[0];
        b.iter(|| black_box(extractor.extract_event(black_box(event))))
    });

    let gt = study.ground_truth();
    let vectors = extractor.extract_files();
    let instances = build_training_set(vectors.iter().map(|(h, v)| (v, gt.label(h))));
    group.bench_function("part_learn", |b| {
        let learner = PartLearner::new(TreeConfig {
            min_leaf: 4,
            prune: false,
            ..TreeConfig::default()
        });
        b.iter(|| black_box(learner.learn(black_box(&instances))))
    });

    let set = PartLearner::new(TreeConfig {
        min_leaf: 4,
        prune: false,
        ..TreeConfig::default()
    })
    .learn(&instances)
    .reevaluate(&instances)
    .select_with(0.001, 10);
    let sample = vectors.iter().next().map(|(_, v)| v).expect("nonempty");
    group.bench_function("ruleset_classify", |b| {
        let encoded = set.schema().encode(&sample.values());
        b.iter(|| black_box(set.classify(black_box(&encoded), ConflictPolicy::Reject)))
    });

    // Columnar frame construction: labels/types resolved once per
    // distinct file/process, CSR adjacency, month bounds.
    let types = study.types();
    group.bench_function("frame_build", |b| {
        b.iter(|| {
            black_box(AnalysisFrame::build(
                study.dataset(),
                |h| gt.label(h),
                |h| types.malware_type(h),
            ))
        })
    });

    // A representative analysis pass over the prebuilt frame.
    group.bench_function("frame_domain_popularity", |b| {
        b.iter(|| black_box(study.frame().domain_popularity(10)))
    });

    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
