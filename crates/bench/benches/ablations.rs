//! Ablation benches: runtime of each ablation study (the quality numbers
//! are printed by the `ablations` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use downlake_bench::{ablation, tiny_study};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let data = ablation::ablation_data(tiny_study());
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("tau_sweep", |b| {
        b.iter(|| black_box(ablation::tau_sweep(&data)))
    });
    group.bench_function("conflict_policies", |b| {
        b.iter(|| black_box(ablation::conflict_policies(&data)))
    });
    group.bench_function("part_vs_tree", |b| {
        b.iter(|| black_box(ablation::part_vs_tree(&data)))
    });
    group.bench_function("feature_ablation", |b| {
        b.iter(|| black_box(ablation::feature_ablation(&data)))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
