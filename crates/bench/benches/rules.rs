//! Regeneration benches for the rule-system experiments (Tables XVI/XVII)
//! and the end-to-end study pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use downlake::{experiments, Study, StudyConfig};
use downlake_bench::tiny_study;
use downlake_synth::Scale;
use std::hint::black_box;

fn bench_rules(c: &mut Criterion) {
    let study = tiny_study();
    let mut group = c.benchmark_group("rules");
    group.sample_size(10);
    group.bench_function("table16_and_17", |b| {
        b.iter(|| black_box(experiments::rule_experiments(study)))
    });
    group.bench_function("full_pipeline_tiny", |b| {
        b.iter(|| black_box(Study::run(&StudyConfig::new(7).with_scale(Scale::Tiny))))
    });
    group.finish();
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);
