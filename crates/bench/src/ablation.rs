//! Ablation studies for the design choices `DESIGN.md` calls out:
//!
//! * **τ sweep** — rule-selection threshold vs TP/FP/coverage;
//! * **conflict policy** — rejection vs majority vote vs first match;
//! * **PART vs C4.5** — independent rules vs deploying the whole tree;
//! * **feature ablation** — drop one feature, measure rule quality;
//! * **σ sweep** — the reporting cap's effect on measured prevalence.

use downlake::{Study, StudyConfig};
use downlake_features::{build_training_set, Extractor, FeatureVector, FEATURE_NAMES};
use downlake_rulelearn::{
    ConflictPolicy, Confusion, DecisionTree, Instances, PartLearner, TreeConfig, Verdict,
};
use downlake_synth::Scale;
use downlake_types::{FileHash, FileLabel, Month};
use std::collections::HashMap;
use std::fmt;

/// Feature vectors of one month, keyed by file.
type MonthVectors = HashMap<FileHash, FeatureVector>;

/// Train/test material for the rule ablations.
#[derive(Debug)]
pub struct AblationData {
    /// Training month vectors.
    pub train: MonthVectors,
    /// Test month vectors.
    pub test: MonthVectors,
    /// The training instances.
    pub instances: Instances,
    /// Test `(vector, is_malicious)` pairs (confident labels only, train
    /// files excluded).
    pub test_rows: Vec<(FeatureVector, bool)>,
}

/// Extracts one month pair's material from a study.
pub fn ablation_data(study: &Study) -> AblationData {
    let extractor = Extractor::new(study.dataset(), study.url_labeler());
    let gt = study.ground_truth();
    let month_vecs = |m: Month| -> MonthVectors {
        let mut map = MonthVectors::new();
        for event in study.dataset().month(m).events() {
            map.entry(event.file)
                .or_insert_with(|| extractor.extract_event(event));
        }
        map
    };
    let train = month_vecs(Month::January);
    let test = month_vecs(Month::February);
    let instances = build_training_set(train.iter().map(|(&h, v)| (v, gt.label(h))));
    let test_rows: Vec<(FeatureVector, bool)> = test
        .iter()
        .filter(|(h, _)| !train.contains_key(h))
        .filter_map(|(&h, v)| match gt.label(h) {
            FileLabel::Benign => Some((v.clone(), false)),
            FileLabel::Malicious => Some((v.clone(), true)),
            _ => None,
        })
        .collect();
    AblationData {
        train,
        test,
        instances,
        test_rows,
    }
}

fn experiment_learner() -> PartLearner {
    PartLearner::new(TreeConfig {
        min_leaf: 4,
        prune: false,
        ..TreeConfig::default()
    })
}

/// One row of an ablation table.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityRow {
    /// Variant label.
    pub variant: String,
    /// Rules deployed (0 for tree baselines).
    pub rules: usize,
    /// Confusion over the test rows.
    pub confusion: Confusion,
}

impl fmt::Display for QualityRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} rules={:<5} decided={:<5} TP={:>6.2}% FP={:>6.2}% rejected={} unmatched={}",
            self.variant,
            self.rules,
            self.confusion.decided(),
            100.0 * self.confusion.tp_rate(),
            100.0 * self.confusion.fp_rate(),
            self.confusion.rejected,
            self.confusion.unmatched,
        )
    }
}

fn evaluate_rules(
    data: &AblationData,
    tau: f64,
    min_coverage: usize,
    policy: ConflictPolicy,
) -> QualityRow {
    let set = experiment_learner()
        .learn(&data.instances)
        .reevaluate(&data.instances)
        .select_with(tau, min_coverage);
    let mut confusion = Confusion::default();
    for (vector, malicious) in &data.test_rows {
        let encoded = set.schema().encode(&vector.values());
        let verdict = set.classify(&encoded, policy);
        confusion.record(verdict, u8::from(*malicious), 1);
    }
    QualityRow {
        variant: format!("τ={:.2}% cov≥{} {:?}", tau * 100.0, min_coverage, policy),
        rules: set.len(),
        confusion,
    }
}

/// τ sweep at the standard support floor and rejection policy.
pub fn tau_sweep(data: &AblationData) -> Vec<QualityRow> {
    [0.0, 0.001, 0.005, 0.01, 0.05, 0.10]
        .into_iter()
        .map(|tau| evaluate_rules(data, tau, 10, ConflictPolicy::Reject))
        .collect()
}

/// Conflict-policy comparison at τ = 0.1%.
pub fn conflict_policies(data: &AblationData) -> Vec<QualityRow> {
    [
        ConflictPolicy::Reject,
        ConflictPolicy::MajorityVote,
        ConflictPolicy::FirstMatch,
    ]
    .into_iter()
    .map(|policy| evaluate_rules(data, 0.001, 10, policy))
    .collect()
}

/// Support-floor sweep at τ = 0.1%.
pub fn coverage_sweep(data: &AblationData) -> Vec<QualityRow> {
    [0, 4, 10, 25, 50]
        .into_iter()
        .map(|cov| evaluate_rules(data, 0.001, cov, ConflictPolicy::Reject))
        .collect()
}

/// PART rule set vs deploying a whole C4.5 decision tree (§VI-D's
/// argument for per-rule selection).
pub fn part_vs_tree(data: &AblationData) -> Vec<QualityRow> {
    let mut rows = vec![evaluate_rules(data, 0.001, 10, ConflictPolicy::Reject)];
    for (label, config) in [
        ("C4.5 tree (pruned)", TreeConfig::default()),
        (
            "C4.5 tree (unpruned)",
            TreeConfig {
                prune: false,
                ..TreeConfig::default()
            },
        ),
    ] {
        let tree = DecisionTree::learn(&data.instances, config);
        let mut confusion = Confusion::default();
        for (vector, malicious) in &data.test_rows {
            let encoded = data.instances.schema().encode(&vector.values());
            let class = tree.classify(&encoded);
            confusion.record(Verdict::Class(class), u8::from(*malicious), 1);
        }
        rows.push(QualityRow {
            variant: label.to_owned(),
            rules: 0,
            confusion,
        });
    }
    rows
}

/// Feature ablation: blank out one feature at a time and re-learn.
pub fn feature_ablation(data: &AblationData) -> Vec<QualityRow> {
    let mut rows = vec![evaluate_rules(data, 0.001, 10, ConflictPolicy::Reject)];
    for drop in 0..FEATURE_NAMES.len() {
        // Rebuild instances with feature `drop` forced constant.
        let gt_rows: Vec<(FeatureVector, bool)> = data.test_rows.clone();
        let mut builder =
            downlake_rulelearn::InstancesBuilder::new(&FEATURE_NAMES, &["benign", "malicious"]);
        for row in data.instances.rows() {
            let values: Vec<&str> = (0..FEATURE_NAMES.len())
                .map(|attr| {
                    if attr == drop {
                        "(ablated)"
                    } else {
                        data.instances.schema().attrs()[attr].value(row.values[attr])
                    }
                })
                .collect();
            builder.push(
                &values,
                if row.class == 1 {
                    "malicious"
                } else {
                    "benign"
                },
            );
        }
        let instances = builder.build();
        let set = experiment_learner()
            .learn(&instances)
            .reevaluate(&instances)
            .select_with(0.001, 10);
        let mut confusion = Confusion::default();
        for (vector, malicious) in &gt_rows {
            let mut raw = vector.values();
            raw[drop] = "(ablated)";
            let encoded = set.schema().encode(&raw);
            confusion.record(
                set.classify(&encoded, ConflictPolicy::Reject),
                u8::from(*malicious),
                1,
            );
        }
        rows.push(QualityRow {
            variant: format!("without {}", FEATURE_NAMES[drop]),
            rules: set.len(),
            confusion,
        });
    }
    rows
}

/// σ sweep: regenerate tiny worlds with different reporting caps and
/// report the measured prevalence shape.
pub fn sigma_sweep(seed: u64) -> Vec<String> {
    [5u32, 20, 60]
        .into_iter()
        .map(|sigma| {
            let mut config = StudyConfig::new(seed).with_scale(Scale::Tiny);
            config.synth.sigma = sigma;
            let study = Study::run(&config);
            let report = study.frame().prevalence_report(sigma as usize);
            format!(
                "σ={sigma:<3} P(prev=1)={:.1}%  capped={:.2}%  mean prevalence={:.2}",
                report.prevalence_one_share, report.capped_share, report.means.0
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny_study;

    #[test]
    fn ablation_data_is_usable() {
        let data = ablation_data(tiny_study());
        assert!(!data.instances.is_empty());
        assert!(!data.test_rows.is_empty());
    }

    #[test]
    fn tau_sweep_is_monotone_in_rules() {
        let data = ablation_data(tiny_study());
        let rows = tau_sweep(&data);
        for pair in rows.windows(2) {
            assert!(
                pair[0].rules <= pair[1].rules,
                "looser τ must admit at least as many rules"
            );
        }
    }

    #[test]
    fn rejection_never_has_more_fps_than_first_match() {
        let data = ablation_data(tiny_study());
        let rows = conflict_policies(&data);
        let reject = &rows[0].confusion;
        let first = &rows[2].confusion;
        assert!(reject.false_positives <= first.false_positives);
    }

    #[test]
    fn tree_baseline_decides_everything() {
        let data = ablation_data(tiny_study());
        let rows = part_vs_tree(&data);
        let tree = &rows[1].confusion;
        assert_eq!(tree.unmatched, 0);
        assert_eq!(tree.rejected, 0);
        assert_eq!(tree.decided(), data.test_rows.len());
    }

    #[test]
    fn feature_ablation_has_one_row_per_feature() {
        let data = ablation_data(tiny_study());
        let rows = feature_ablation(&data);
        assert_eq!(rows.len(), 1 + FEATURE_NAMES.len());
    }

    #[test]
    fn sigma_sweep_reports_three_settings() {
        let rows = sigma_sweep(7);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].starts_with("σ=5"));
    }
}
