//! `sweep_fanout` — wall-clock effect of the sweep-level worker pool,
//! measured over a full (σ × τ) sensitivity sweep at 1 vs 4 threads.
//!
//! ```text
//! cargo run --release -p downlake-bench --bin sweep            # small scale
//! cargo run --release -p downlake-bench --bin sweep -- --smoke # tiny, for CI
//! ```
//!
//! Unlike `parallel` (which widens the pool *inside* one study), this
//! bin holds every study at one thread and fans the runs themselves
//! out, which is the sweep harness's own parallelism axis. The verdict
//! that must hold everywhere is byte-identity of the timing-stripped
//! sweep manifest across pool widths; the bin exits non-zero if it
//! ever breaks. Emits `BENCH_sweep.json` via the shared
//! [`downlake_bench::report`] manifest writer, with the sweep's own
//! deterministic observation plane absorbed into the body.

use downlake_bench::report::{bench_manifest, TimedRun};
use downlake_obs::{ObsReport, RealClock};
use downlake_sweep::{run_sweep, SweepManifest};
use std::time::Instant;

/// The benched surface: three σ caps around the paper's 20 crossed
/// with the paper's τ settings, canonical seed, full window.
const MANIFEST: &str = r#"{
    "name": "bench-3x3",
    "scale": "SCALE",
    "sigmas": [5, 20, 60],
    "taus": [0.0, 0.001, 0.01]
}"#;

struct Run {
    threads: usize,
    seconds: f64,
    stripped: String,
    obs: ObsReport,
}

fn run_once(scale_name: &str, threads: usize) -> Run {
    let mut manifest = SweepManifest::parse(&MANIFEST.replace("SCALE", scale_name))
        .expect("bench manifest is valid");
    manifest.threads = threads;
    let start = Instant::now();
    let report = run_sweep(&manifest, &RealClock::new());
    Run {
        threads,
        seconds: start.elapsed().as_secs_f64(),
        stripped: report.manifest(&manifest).to_json_stripped(),
        obs: report.obs().clone(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale_name = if smoke { "tiny" } else { "small" };
    let seed = 42u64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("sweep_fanout: scale {scale_name}, seed {seed}, host_cpus {host_cpus}");
    let runs: Vec<Run> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let run = run_once(scale_name, threads);
            eprintln!("  threads {threads}: {:.3}s", run.seconds);
            run
        })
        .collect();

    let identical = runs.windows(2).all(|w| w[0].stripped == w[1].stripped);
    let speedup = match runs.last() {
        Some(last) if last.seconds > 0.0 => runs
            .first()
            .map_or(1.0, |first| first.seconds / last.seconds),
        _ => 1.0,
    };
    eprintln!("  speedup (1 → 4 threads): {speedup:.2}x, surfaces identical: {identical}");

    let timed: Vec<TimedRun> = runs
        .iter()
        .map(|r| TimedRun {
            threads: r.threads,
            seconds: r.seconds,
            events_per_sec: None,
        })
        .collect();
    let mut manifest = bench_manifest(
        "sweep_fanout",
        scale_name,
        seed,
        identical,
        host_cpus,
        &timed,
        speedup,
    );
    // The deterministic plane is identical across the runs (that is the
    // point), so absorbing one representative loses nothing.
    if let Some(run) = runs.first() {
        manifest.absorb(&run.obs);
    }
    if let Err(e) = manifest.write(std::path::Path::new("BENCH_sweep.json")) {
        eprintln!("sweep_fanout: could not write BENCH_sweep.json: {e}");
        std::process::exit(1);
    }
    eprintln!("sweep_fanout: wrote BENCH_sweep.json");

    if !identical {
        eprintln!("sweep_fanout: FAIL — pool width changed the sweep surface bytes");
        std::process::exit(1);
    }
}
