//! `stream_throughput` — events/second of the live classification
//! replay (`downlake-stream`), one event at a time vs pooled
//! micro-batches, plus the online/batch identity check.
//!
//! ```text
//! cargo run --release -p downlake-bench --bin stream            # large scale
//! cargo run --release -p downlake-bench --bin stream -- --smoke # tiny, for CI
//! ```
//!
//! Emits `BENCH_stream.json` in the current directory via the shared
//! [`downlake_bench::report`] manifest writer, schema-matched to
//! `BENCH_parallel.json`: `host_cpus` is recorded (under `timing`)
//! because a single-core runner cannot show pooled speedup, and
//! `identical` reports the invariant that actually matters — every
//! replay ends byte-identical to the batch pipeline and to every other
//! replay. Exits non-zero if identity ever breaks.

use downlake::live::{self, LiveConfig};
use downlake::{Study, StudyConfig};
use downlake_bench::report::{bench_manifest, TimedRun};
use downlake_synth::Scale;
use std::time::Instant;

struct Run {
    threads: usize,
    seconds: f64,
    events_per_sec: f64,
    outcome: live::LiveOutcome,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, scale_name) = if smoke {
        (Scale::Tiny, "tiny")
    } else {
        (Scale::Large, "large")
    };
    let seed = 42u64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("stream_throughput: scale {scale_name}, seed {seed}, host_cpus {host_cpus}");
    let study = Study::run(&StudyConfig::new(seed).with_scale(scale));
    let prep = live::prepare(&study, LiveConfig::default());
    eprintln!(
        "  staged: {} events, {} wire bytes, {} rules",
        prep.events_total(),
        prep.stream_bytes(),
        prep.engine().rule_count()
    );

    let runs: Vec<Run> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let start = Instant::now();
            let outcome = match prep.replay(threads) {
                Ok(outcome) => outcome,
                Err(e) => {
                    eprintln!("stream_throughput: replay failed: {e}");
                    std::process::exit(1);
                }
            };
            let seconds = start.elapsed().as_secs_f64();
            let events_per_sec = if seconds > 0.0 {
                outcome.events_total as f64 / seconds
            } else {
                0.0
            };
            eprintln!(
                "  threads {threads}: {seconds:.3}s, {events_per_sec:.0} events/s, \
                 matches batch: {}",
                outcome.matches_batch
            );
            Run {
                threads,
                seconds,
                events_per_sec,
                outcome,
            }
        })
        .collect();

    // Identity: every replay equals the batch oracle AND every other
    // replay (verdicts, vectors, suppression — the whole outcome).
    let identical = runs.iter().all(|r| r.outcome.matches_batch)
        && runs.windows(2).all(|w| w[0].outcome == w[1].outcome);
    let speedup = match runs.last() {
        Some(last) if last.seconds > 0.0 => runs
            .first()
            .map_or(1.0, |first| first.seconds / last.seconds),
        _ => 1.0,
    };
    eprintln!("  speedup (1 → 4 threads): {speedup:.2}x, identical: {identical}");

    let timed: Vec<TimedRun> = runs
        .iter()
        .map(|r| TimedRun {
            threads: r.threads,
            seconds: r.seconds,
            events_per_sec: Some(r.events_per_sec),
        })
        .collect();
    let mut manifest = bench_manifest(
        "stream_throughput",
        scale_name,
        seed,
        identical,
        host_cpus,
        &timed,
        speedup,
    );
    manifest
        .set_run("events", prep.events_total() as u64)
        .set_run("stream_bytes", prep.stream_bytes() as u64)
        .set_run("rules", prep.engine().rule_count() as u64)
        .absorb(study.obs());
    if let Err(e) = manifest.write(std::path::Path::new("BENCH_stream.json")) {
        eprintln!("stream_throughput: could not write BENCH_stream.json: {e}");
        std::process::exit(1);
    }
    eprintln!("stream_throughput: wrote BENCH_stream.json");

    if !identical {
        eprintln!("stream_throughput: FAIL — replay diverged from the batch pipeline");
        std::process::exit(1);
    }
}
