//! `stream_throughput` — events/second of the live classification
//! replay (`downlake-stream`), one event at a time vs pooled
//! micro-batches, plus the online/batch identity check.
//!
//! ```text
//! cargo run --release -p downlake-bench --bin stream            # large scale
//! cargo run --release -p downlake-bench --bin stream -- --smoke # tiny, for CI
//! ```
//!
//! Emits `BENCH_stream.json` in the current directory, schema-matched
//! to `BENCH_parallel.json`: `host_cpus` is recorded because a
//! single-core runner cannot show pooled speedup, and `identical`
//! reports the invariant that actually matters — every replay ends
//! byte-identical to the batch pipeline and to every other replay.
//! Exits non-zero if identity ever breaks.

use downlake::live::{self, LiveConfig};
use downlake::{Study, StudyConfig};
use downlake_synth::Scale;
use std::time::Instant;

struct Run {
    threads: usize,
    seconds: f64,
    events_per_sec: f64,
    outcome: live::LiveOutcome,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, scale_name) = if smoke {
        (Scale::Tiny, "tiny")
    } else {
        (Scale::Large, "large")
    };
    let seed = 42u64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("stream_throughput: scale {scale_name}, seed {seed}, host_cpus {host_cpus}");
    let study = Study::run(&StudyConfig::new(seed).with_scale(scale));
    let prep = live::prepare(&study, LiveConfig::default());
    eprintln!(
        "  staged: {} events, {} wire bytes, {} rules",
        prep.events_total(),
        prep.stream_bytes(),
        prep.engine().rule_count()
    );

    let runs: Vec<Run> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let start = Instant::now();
            let outcome = match prep.replay(threads) {
                Ok(outcome) => outcome,
                Err(e) => {
                    eprintln!("stream_throughput: replay failed: {e}");
                    std::process::exit(1);
                }
            };
            let seconds = start.elapsed().as_secs_f64();
            let events_per_sec = if seconds > 0.0 {
                outcome.events_total as f64 / seconds
            } else {
                0.0
            };
            eprintln!(
                "  threads {threads}: {seconds:.3}s, {events_per_sec:.0} events/s, \
                 matches batch: {}",
                outcome.matches_batch
            );
            Run {
                threads,
                seconds,
                events_per_sec,
                outcome,
            }
        })
        .collect();

    // Identity: every replay equals the batch oracle AND every other
    // replay (verdicts, vectors, suppression — the whole outcome).
    let identical = runs.iter().all(|r| r.outcome.matches_batch)
        && runs.windows(2).all(|w| w[0].outcome == w[1].outcome);
    let speedup = match runs.last() {
        Some(last) if last.seconds > 0.0 => runs
            .first()
            .map_or(1.0, |first| first.seconds / last.seconds),
        _ => 1.0,
    };
    eprintln!("  speedup (1 → 4 threads): {speedup:.2}x, identical: {identical}");

    // Hand-rolled JSON: the bench crate stays free of serialization deps.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"stream_throughput\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"events\": {},\n", prep.events_total()));
    json.push_str(&format!("  \"stream_bytes\": {},\n", prep.stream_bytes()));
    json.push_str(&format!("  \"rules\": {},\n", prep.engine().rule_count()));
    json.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"threads\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}}}{comma}\n",
            run.threads, run.seconds, run.events_per_sec
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup\": {speedup:.4},\n"));
    json.push_str(&format!("  \"identical\": {identical}\n"));
    json.push_str("}\n");
    if let Err(e) = std::fs::write("BENCH_stream.json", &json) {
        eprintln!("stream_throughput: could not write BENCH_stream.json: {e}");
        std::process::exit(1);
    }
    eprintln!("stream_throughput: wrote BENCH_stream.json");

    if !identical {
        eprintln!("stream_throughput: FAIL — replay diverged from the batch pipeline");
        std::process::exit(1);
    }
}
