//! `query_tables` — the relational query engine vs the pre-refactor
//! bespoke loops, end to end over every analysis pass.
//!
//! ```text
//! cargo run --release -p downlake-bench --bin query            # large scale
//! cargo run --release -p downlake-bench --bin query -- --smoke # tiny, for CI
//! ```
//!
//! The baseline (`mod loops`) is the original hash-map/hash-set
//! accumulation code that `crates/analysis` shipped before the
//! `downlake-query` rewrite: per-event string allocation, boxed-closure
//! label lookups, one full event scan per table. The engine side builds
//! one [`downlake_analysis::AnalysisFrame`] (dense-id columns + CSR
//! adjacency, counted in its timing) and runs the same sixteen passes
//! as relational queries. Both sides render their outputs through the
//! same deterministic serialisation and the bin exits non-zero unless
//! the bytes agree — the speedup claim is only worth reporting over a
//! proven-equivalent computation.
//!
//! Emits `BENCH_query.json` via the shared [`downlake_bench::report`]
//! manifest writer. As with the other bench bins, `host_cpus` and all
//! wall-clock numbers live under the manifest's `timing` section; the
//! byte-identity verdict lives under `run`. The `runs` array is
//! `[loops, engine]`, also named `loops_seconds` / `engine_seconds`.

use downlake::{Study, StudyConfig};
use downlake_analysis::{AnalysisFrame, RankSource};
use downlake_bench::report::{bench_manifest, TimedRun};
use downlake_synth::Scale;
use downlake_types::{FileLabel, MalwareType};
use std::fmt::Write as _;
use std::time::Instant;

/// Pre-refactor reference implementations of every analysis pass,
/// kept as the honest baseline for the engine comparison. These are
/// the hash-map/hash-set accumulation passes that consumed a
/// `&Dataset` and a `LabelView` directly before the `downlake-query`
/// rewrite; they intentionally keep the per-event string allocation
/// and boxed-closure calls the refactor removed, so the bench
/// quantifies the win. Their outputs are sorted (or consumed
/// order-insensitively) before they escape, which is why the hash
/// iteration below is allowed case by case.
mod loops {
    use downlake_analysis::stats::{percent, Counter, Ecdf};
    use downlake_analysis::{
        ClassShares, DomainCount, EscalationKind, EscalationReport, LabelView, MonthSummary,
        PackerReport, PrevalenceReport, ProcessBehaviorRow, RankSource, SignerOverlapRow,
        SignerScatterPoint, SigningRateRow, TopSignersReport,
    };
    use downlake_telemetry::Dataset;
    use downlake_types::{
        BrowserKind, FileHash, FileLabel, MachineId, MalwareType, ProcessCategory, Timestamp,
        UrlId, UrlLabel,
    };
    use std::collections::{HashMap, HashSet};

    // -----------------------------------------------------------------
    // Domains (Tables III–V, XIII; Figs. 3 and 6)
    // -----------------------------------------------------------------

    /// Table III via the original per-event hash-map accumulation.
    pub fn domain_popularity(
        dataset: &Dataset,
        labels: &LabelView<'_>,
        k: usize,
    ) -> [Vec<DomainCount>; 3] {
        let mut overall: HashMap<String, HashSet<u64>> = HashMap::new();
        let mut benign: HashMap<String, HashSet<u64>> = HashMap::new();
        let mut malicious: HashMap<String, HashSet<u64>> = HashMap::new();
        for event in dataset.events() {
            let e2ld = dataset.url_of(event).e2ld();
            let machine = event.machine.raw();
            overall.entry(e2ld.to_owned()).or_default().insert(machine);
            match labels.label(event.file) {
                FileLabel::Benign => {
                    benign.entry(e2ld.to_owned()).or_default().insert(machine);
                }
                FileLabel::Malicious => {
                    malicious
                        .entry(e2ld.to_owned())
                        .or_default()
                        .insert(machine);
                }
                _ => {}
            }
        }
        [overall, benign, malicious].map(|m| top_by_set_size(m, k))
    }

    /// Table IV via the original per-event hash-map accumulation.
    pub fn files_per_domain(
        dataset: &Dataset,
        labels: &LabelView<'_>,
        k: usize,
    ) -> [Vec<DomainCount>; 2] {
        let mut benign: HashMap<String, HashSet<u64>> = HashMap::new();
        let mut malicious: HashMap<String, HashSet<u64>> = HashMap::new();
        for event in dataset.events() {
            let e2ld = dataset.url_of(event).e2ld();
            match labels.label(event.file) {
                FileLabel::Benign => {
                    benign
                        .entry(e2ld.to_owned())
                        .or_default()
                        .insert(event.file.raw());
                }
                FileLabel::Malicious => {
                    malicious
                        .entry(e2ld.to_owned())
                        .or_default()
                        .insert(event.file.raw());
                }
                _ => {}
            }
        }
        [benign, malicious].map(|m| top_by_set_size(m, k))
    }

    /// Table V via the original per-event hash-map accumulation.
    pub fn type_domain_tables(
        dataset: &Dataset,
        labels: &LabelView<'_>,
        k: usize,
    ) -> HashMap<MalwareType, Vec<DomainCount>> {
        let mut per_type: HashMap<MalwareType, HashMap<String, HashSet<u64>>> = HashMap::new();
        for event in dataset.events() {
            if labels.label(event.file) != FileLabel::Malicious {
                continue;
            }
            let Some(ty) = labels.malware_type(event.file) else {
                continue;
            };
            let e2ld = dataset.url_of(event).e2ld();
            per_type
                .entry(ty)
                .or_default()
                .entry(e2ld.to_owned())
                .or_default()
                .insert(event.file.raw());
        }
        per_type
            .into_iter() // downlake-lint: allow(D1) — values are sorted in top_by_set_size; callers render keyed by MalwareType::ALL
            .map(|(ty, m)| (ty, top_by_set_size(m, k)))
            .collect()
    }

    /// Table XIII via the original string-keyed counter.
    pub fn top_domains_by_downloads(
        dataset: &Dataset,
        labels: &LabelView<'_>,
        class: FileLabel,
        k: usize,
    ) -> Vec<DomainCount> {
        let mut counter: Counter<String> = Counter::new();
        for event in dataset.events() {
            if labels.label(event.file) == class {
                counter.add(dataset.url_of(event).e2ld().to_owned());
            }
        }
        counter
            .top(k)
            .into_iter()
            .map(|(domain, count)| DomainCount { domain, count })
            .collect()
    }

    /// Figs. 3/6 rank ECDF via the original domain-string set.
    pub fn rank_distribution(
        dataset: &Dataset,
        labels: &LabelView<'_>,
        ranks: &RankSource<'_>,
        class: FileLabel,
    ) -> (Ecdf, usize) {
        let mut domains: HashSet<String> = HashSet::new();
        for event in dataset.events() {
            if labels.label(event.file) == class {
                domains.insert(dataset.url_of(event).e2ld().to_owned());
            }
        }
        let mut samples = Vec::new();
        let mut unranked = 0usize;
        // downlake-lint: allow(D1) — Ecdf::from_samples sorts; unranked is a count
        for d in &domains {
            match ranks.rank(d) {
                Some(r) => samples.push(r as f64),
                None => unranked += 1,
            }
        }
        (Ecdf::from_samples(samples), unranked)
    }

    fn top_by_set_size(map: HashMap<String, HashSet<u64>>, k: usize) -> Vec<DomainCount> {
        let mut rows: Vec<DomainCount> = map
            .into_iter() // downlake-lint: allow(D1) — rows are fully sorted before truncation
            .map(|(domain, set)| DomainCount {
                domain,
                count: set.len() as u64,
            })
            .collect();
        rows.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.domain.cmp(&b.domain)));
        rows.truncate(k);
        rows
    }

    // -----------------------------------------------------------------
    // Signers (Tables VI–IX, Fig. 4)
    // -----------------------------------------------------------------

    /// Which files were downloaded by a browser at least once.
    fn browser_files(dataset: &Dataset) -> HashSet<FileHash> {
        let mut set = HashSet::new();
        for event in dataset.events() {
            if dataset
                .processes()
                .get(event.process)
                .is_some_and(|p| p.category.is_browser())
            {
                set.insert(event.file);
            }
        }
        set
    }

    /// Table VI via the original string-keyed class accumulator.
    pub fn signing_rates_table(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<SigningRateRow> {
        let via_browser = browser_files(dataset);
        // (files, signed, browser files, browser signed) per class key.
        let mut acc: HashMap<String, (usize, usize, usize, usize)> = HashMap::new();
        let mut bump = |key: &str, signed: bool, browser: bool| {
            let entry = acc.entry(key.to_owned()).or_default();
            entry.0 += 1;
            if signed {
                entry.1 += 1;
            }
            if browser {
                entry.2 += 1;
                if signed {
                    entry.3 += 1;
                }
            }
        };
        for record in dataset.files().iter() {
            let signed = record.meta.is_validly_signed();
            let browser = via_browser.contains(&record.hash);
            match labels.label(record.hash) {
                FileLabel::Benign => bump("benign", signed, browser),
                FileLabel::Unknown => bump("unknown", signed, browser),
                FileLabel::Malicious => {
                    bump("malicious", signed, browser);
                    if let Some(ty) = labels.malware_type(record.hash) {
                        bump(ty.name(), signed, browser);
                    }
                }
                _ => {}
            }
        }
        let mut rows: Vec<SigningRateRow> = Vec::new();
        let order: Vec<String> = MalwareType::ALL
            .iter()
            .map(|t| t.name().to_owned())
            .chain([
                "benign".to_owned(),
                "unknown".to_owned(),
                "malicious".to_owned(),
            ])
            .collect();
        for class in order {
            if let Some(&(files, signed, bfiles, bsigned)) = acc.get(&class) {
                rows.push(SigningRateRow {
                    class,
                    files,
                    signed_pct: percent(signed, files),
                    browser_files: bfiles,
                    browser_signed_pct: percent(bsigned, bfiles),
                });
            }
        }
        rows
    }

    /// Signer → (benign files, malicious files, per-type files) index.
    struct SignerIndex {
        benign: HashMap<String, u64>,
        malicious: HashMap<String, u64>,
        per_type: HashMap<MalwareType, HashMap<String, u64>>,
    }

    fn signer_index(dataset: &Dataset, labels: &LabelView<'_>) -> SignerIndex {
        let mut index = SignerIndex {
            benign: HashMap::new(),
            malicious: HashMap::new(),
            per_type: HashMap::new(),
        };
        for record in dataset.files().iter() {
            let Some(subject) = record.meta.valid_signer_subject() else {
                continue;
            };
            match labels.label(record.hash) {
                FileLabel::Benign => {
                    *index.benign.entry(subject.to_owned()).or_insert(0) += 1;
                }
                FileLabel::Malicious => {
                    *index.malicious.entry(subject.to_owned()).or_insert(0) += 1;
                    if let Some(ty) = labels.malware_type(record.hash) {
                        *index
                            .per_type
                            .entry(ty)
                            .or_default()
                            .entry(subject.to_owned())
                            .or_insert(0) += 1;
                    }
                }
                _ => {}
            }
        }
        index
    }

    /// Table VII via the original signer string index.
    pub fn signer_overlap(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<SignerOverlapRow> {
        let index = signer_index(dataset, labels);
        let benign: HashSet<&String> = index.benign.keys().collect();
        let mut rows = Vec::new();
        for ty in MalwareType::ALL {
            let Some(signers) = index.per_type.get(&ty) else {
                continue;
            };
            // downlake-lint: allow(D1) — membership count, order-insensitive
            let common = signers.keys().filter(|s| benign.contains(s)).count();
            rows.push(SignerOverlapRow {
                class: ty.name().to_owned(),
                signers: signers.len(),
                common_with_benign: common,
            });
        }
        let common_total = index
            .malicious
            .keys() // downlake-lint: allow(D1) — membership count, order-insensitive
            .filter(|s| benign.contains(s))
            .count();
        rows.push(SignerOverlapRow {
            class: "total".to_owned(),
            signers: index.malicious.len(),
            common_with_benign: common_total,
        });
        rows
    }

    /// Tables VIII/IX and Fig. 4 via the original signer string index.
    pub fn top_signers(dataset: &Dataset, labels: &LabelView<'_>, k: usize) -> TopSignersReport {
        let index = signer_index(dataset, labels);
        let benign_set: HashSet<&String> = index.benign.keys().collect();
        let malicious_set: HashSet<&String> = index.malicious.keys().collect();

        let top =
            |m: &HashMap<String, u64>, filter: &dyn Fn(&String) -> bool| -> Vec<(String, u64)> {
                let mut v: Vec<(String, u64)> = m
                    .iter() // downlake-lint: allow(D1) — rows are fully sorted before truncation
                    .filter(|(s, _)| filter(s))
                    .map(|(s, &c)| (s.clone(), c))
                    .collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                v.truncate(k);
                v
            };

        let mut per_type = Vec::new();
        for ty in MalwareType::ALL {
            let Some(signers) = index.per_type.get(&ty) else {
                continue;
            };
            per_type.push((
                ty.name().to_owned(),
                top(signers, &|_| true),
                top(signers, &|s| benign_set.contains(s)),
                top(signers, &|s| !benign_set.contains(s)),
            ));
        }

        let scatter: Vec<SignerScatterPoint> = {
            let mut pts: Vec<SignerScatterPoint> = index
                .malicious
                .iter() // downlake-lint: allow(D1) — points are fully sorted below
                .filter_map(|(s, &mal)| {
                    index.benign.get(s).map(|&ben| SignerScatterPoint {
                        signer: s.clone(),
                        benign_files: ben,
                        malicious_files: mal,
                    })
                })
                .collect();
            pts.sort_by(|a, b| {
                (b.benign_files + b.malicious_files)
                    .cmp(&(a.benign_files + a.malicious_files))
                    .then_with(|| a.signer.cmp(&b.signer))
            });
            pts
        };

        TopSignersReport {
            per_type,
            benign_exclusive: top(&index.benign, &|s| !malicious_set.contains(s)),
            malicious_exclusive: top(&index.malicious, &|s| !benign_set.contains(s)),
            scatter,
        }
    }

    // -----------------------------------------------------------------
    // Packers (§IV-C)
    // -----------------------------------------------------------------

    /// Packing rates and overlap via the original string sets.
    pub fn packer_report(dataset: &Dataset, labels: &LabelView<'_>) -> PackerReport {
        let mut benign_files = 0usize;
        let mut benign_packed = 0usize;
        let mut malicious_files = 0usize;
        let mut malicious_packed = 0usize;
        let mut benign_packers: HashSet<String> = HashSet::new();
        let mut malicious_packers: HashSet<String> = HashSet::new();

        for record in dataset.files().iter() {
            let packer = record.meta.packer.as_ref().map(|p| p.name.clone());
            match labels.label(record.hash) {
                FileLabel::Benign => {
                    benign_files += 1;
                    if let Some(name) = packer {
                        benign_packed += 1;
                        benign_packers.insert(name);
                    }
                }
                FileLabel::Malicious => {
                    malicious_files += 1;
                    if let Some(name) = packer {
                        malicious_packed += 1;
                        malicious_packers.insert(name);
                    }
                }
                _ => {}
            }
        }

        let mut shared: Vec<String> = benign_packers
            .intersection(&malicious_packers) // downlake-lint: allow(D1) — collected then sorted below
            .cloned()
            .collect();
        let mut malicious_only: Vec<String> = malicious_packers
            .difference(&benign_packers) // downlake-lint: allow(D1) — collected then sorted below
            .cloned()
            .collect();
        let mut benign_only: Vec<String> = benign_packers
            .difference(&malicious_packers) // downlake-lint: allow(D1) — collected then sorted below
            .cloned()
            .collect();
        shared.sort();
        malicious_only.sort();
        benign_only.sort();

        PackerReport {
            benign_packed_pct: percent(benign_packed, benign_files),
            malicious_packed_pct: percent(malicious_packed, malicious_files),
            // downlake-lint: allow(D1) — cardinality only
            total_packers: benign_packers.union(&malicious_packers).count(),
            shared_packers: shared.len(),
            malicious_only,
            benign_only,
            shared,
        }
    }

    // -----------------------------------------------------------------
    // Processes (Tables X–XII, XIV)
    // -----------------------------------------------------------------

    #[derive(Default)]
    struct RowAccumulator {
        processes: HashSet<FileHash>,
        machines: HashSet<MachineId>,
        infected: HashSet<MachineId>,
        unknown: HashSet<FileHash>,
        benign: HashSet<FileHash>,
        malicious: HashSet<FileHash>,
        types: HashMap<MalwareType, HashSet<FileHash>>,
    }

    impl RowAccumulator {
        fn record(
            &mut self,
            process: FileHash,
            machine: MachineId,
            file: FileHash,
            label: FileLabel,
            ty: Option<MalwareType>,
        ) {
            self.processes.insert(process);
            self.machines.insert(machine);
            match label {
                FileLabel::Unknown => {
                    self.unknown.insert(file);
                }
                FileLabel::Benign => {
                    self.benign.insert(file);
                }
                FileLabel::Malicious => {
                    self.malicious.insert(file);
                    self.infected.insert(machine);
                    if let Some(ty) = ty {
                        self.types.entry(ty).or_default().insert(file);
                    }
                }
                _ => {}
            }
        }

        fn into_row(self, label: String) -> ProcessBehaviorRow {
            let malicious_total = self.malicious.len();
            let mut type_mix: Vec<(MalwareType, f64)> = MalwareType::ALL
                .iter()
                .filter_map(|&ty| {
                    self.types
                        .get(&ty)
                        .map(|files| (ty, percent(files.len(), malicious_total)))
                })
                .collect();
            type_mix.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            ProcessBehaviorRow {
                label,
                processes: self.processes.len(),
                machines: self.machines.len(),
                unknown_files: self.unknown.len(),
                benign_files: self.benign.len(),
                malicious_files: self.malicious.len(),
                infected_pct: percent(self.infected.len(), self.machines.len()),
                type_mix,
            }
        }
    }

    fn aggregate_label(category: ProcessCategory) -> &'static str {
        category.aggregate_name()
    }

    /// Table X via the original per-event hash-set accumulators.
    pub fn category_behavior(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<ProcessBehaviorRow> {
        let mut acc: HashMap<&'static str, RowAccumulator> = HashMap::new();
        for event in dataset.events() {
            let Some(proc_rec) = dataset.processes().get(event.process) else {
                continue;
            };
            if labels.label(event.process) != FileLabel::Benign {
                continue;
            }
            acc.entry(aggregate_label(proc_rec.category))
                .or_default()
                .record(
                    event.process,
                    event.machine,
                    event.file,
                    labels.label(event.file),
                    labels.malware_type(event.file),
                );
        }
        let order = [
            "Browsers",
            "Windows Processes",
            "Java",
            "Acrobat Reader",
            "All other processes",
        ];
        order
            .iter()
            .filter_map(|&label| acc.remove(label).map(|a| a.into_row(label.to_owned())))
            .collect()
    }

    /// Table XI via the original per-event hash-set accumulators.
    pub fn browser_behavior(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<ProcessBehaviorRow> {
        let mut acc: HashMap<BrowserKind, RowAccumulator> = HashMap::new();
        for event in dataset.events() {
            let Some(proc_rec) = dataset.processes().get(event.process) else {
                continue;
            };
            let Some(kind) = proc_rec.category.browser() else {
                continue;
            };
            if labels.label(event.process) != FileLabel::Benign {
                continue;
            }
            acc.entry(kind).or_default().record(
                event.process,
                event.machine,
                event.file,
                labels.label(event.file),
                labels.malware_type(event.file),
            );
        }
        BrowserKind::ALL
            .iter()
            .filter_map(|&kind| {
                acc.remove(&kind)
                    .map(|a| a.into_row(kind.name().to_owned()))
            })
            .collect()
    }

    /// Table XII via the original per-event hash-set accumulators.
    pub fn malicious_process_behavior(
        dataset: &Dataset,
        labels: &LabelView<'_>,
    ) -> Vec<ProcessBehaviorRow> {
        let mut acc: HashMap<MalwareType, RowAccumulator> = HashMap::new();
        let mut overall = RowAccumulator::default();
        for event in dataset.events() {
            if labels.label(event.process) != FileLabel::Malicious {
                continue;
            }
            let ty = labels
                .malware_type(event.process)
                .unwrap_or(MalwareType::Undefined);
            let file_label = labels.label(event.file);
            let file_type = labels.malware_type(event.file);
            acc.entry(ty).or_default().record(
                event.process,
                event.machine,
                event.file,
                file_label,
                file_type,
            );
            overall.record(
                event.process,
                event.machine,
                event.file,
                file_label,
                file_type,
            );
        }
        let mut rows: Vec<ProcessBehaviorRow> = MalwareType::ALL
            .iter()
            .filter_map(|&ty| acc.remove(&ty).map(|a| a.into_row(ty.name().to_owned())))
            .collect();
        if overall.machines.is_empty() {
            return rows;
        }
        rows.push(overall.into_row("overall".to_owned()));
        rows
    }

    /// Table XIV via the original per-event hash-set accumulators.
    pub fn unknown_download_categories(
        dataset: &Dataset,
        labels: &LabelView<'_>,
    ) -> Vec<(String, usize)> {
        let mut acc: HashMap<&'static str, HashSet<FileHash>> = HashMap::new();
        for event in dataset.events() {
            if labels.label(event.file) != FileLabel::Unknown {
                continue;
            }
            let Some(proc_rec) = dataset.processes().get(event.process) else {
                continue;
            };
            if labels.label(event.process) != FileLabel::Benign {
                continue;
            }
            acc.entry(aggregate_label(proc_rec.category))
                .or_default()
                .insert(event.file);
        }
        let order = [
            "Browsers",
            "Windows Processes",
            "Java",
            "Acrobat Reader",
            "All other processes",
        ];
        let mut rows: Vec<(String, usize)> = Vec::new();
        let mut total = 0usize;
        for label in order {
            let n = acc.get(label).map_or(0, HashSet::len);
            total += n;
            rows.push((label.to_owned(), n));
        }
        rows.push(("Total".to_owned(), total));
        rows
    }

    // -----------------------------------------------------------------
    // Prevalence (§IV-A, Fig. 2)
    // -----------------------------------------------------------------

    /// Fig. 2 prevalence distributions via the original per-file lookups.
    pub fn prevalence_report(
        dataset: &Dataset,
        labels: &LabelView<'_>,
        sigma: usize,
    ) -> PrevalenceReport {
        let mut report = PrevalenceReport::default();
        let mut ones = 0usize;
        let mut capped = 0usize;
        let mut total_files = 0usize;
        let mut sums = (0usize, 0usize, 0usize, 0usize);
        let mut counts = (0usize, 0usize, 0usize, 0usize);

        for record in dataset.files().iter() {
            let prevalence = dataset.prevalence(record.hash);
            if prevalence == 0 {
                continue; // file never appeared in a reported event
            }
            total_files += 1;
            if prevalence == 1 {
                ones += 1;
            }
            if prevalence >= sigma {
                capped += 1;
            }
            *report.all.entry(prevalence).or_insert(0) += 1;
            sums.0 += prevalence;
            counts.0 += 1;
            match labels.label(record.hash) {
                FileLabel::Benign => {
                    *report.benign.entry(prevalence).or_insert(0) += 1;
                    sums.1 += prevalence;
                    counts.1 += 1;
                }
                FileLabel::Malicious => {
                    *report.malicious.entry(prevalence).or_insert(0) += 1;
                    sums.2 += prevalence;
                    counts.2 += 1;
                }
                FileLabel::Unknown => {
                    *report.unknown.entry(prevalence).or_insert(0) += 1;
                    sums.3 += prevalence;
                    counts.3 += 1;
                }
                // Likely-* files are excluded from the measurement (§III).
                FileLabel::LikelyBenign | FileLabel::LikelyMalicious => {}
            }
        }

        let mut touched: HashSet<MachineId> = HashSet::new();
        for event in dataset.events() {
            if labels.label(event.file) == FileLabel::Unknown {
                touched.insert(event.machine);
            }
        }

        report.prevalence_one_share = percent(ones, total_files);
        report.capped_share = percent(capped, total_files);
        report.machines_touching_unknown = percent(touched.len(), dataset.machine_count());
        let mean = |s: usize, c: usize| if c == 0 { 0.0 } else { s as f64 / c as f64 };
        report.means = (
            mean(sums.0, counts.0),
            mean(sums.1, counts.1),
            mean(sums.2, counts.2),
            mean(sums.3, counts.3),
        );
        report
    }

    // -----------------------------------------------------------------
    // Monthly summary (Table I)
    // -----------------------------------------------------------------

    /// Table I via per-month hash-set rebuilds (the pre-refactor
    /// `MonthlyView` behaviour).
    pub fn monthly_summary(
        dataset: &Dataset,
        labels: &LabelView<'_>,
        url_label: impl Fn(&str) -> UrlLabel,
    ) -> Vec<MonthSummary> {
        dataset
            .months()
            .map(|view| {
                let machines: HashSet<MachineId> =
                    view.events().iter().map(|e| e.machine).collect();
                let files: HashSet<FileHash> = view.events().iter().map(|e| e.file).collect();
                let processes: HashSet<FileHash> =
                    view.events().iter().map(|e| e.process).collect();
                let urls: HashSet<UrlId> = view.events().iter().map(|e| e.url).collect();

                let mut file_counts = [0usize; 4];
                // downlake-lint: allow(D1) — commutative per-class counts
                for &f in &files {
                    bump(&mut file_counts, labels.label(f));
                }
                let mut process_counts = [0usize; 4];
                // downlake-lint: allow(D1) — commutative per-class counts
                for &p in &processes {
                    bump(&mut process_counts, labels.label(p));
                }
                let mut url_benign = 0usize;
                let mut url_malicious = 0usize;
                // downlake-lint: allow(D1) — commutative per-class counts
                for &u in &urls {
                    match url_label(view.dataset().resolve_url(u).e2ld()) {
                        UrlLabel::Benign => url_benign += 1,
                        UrlLabel::Malicious => url_malicious += 1,
                        UrlLabel::Unknown => {}
                    }
                }

                MonthSummary {
                    month: view.month(),
                    machines: machines.len(),
                    events: view.events().len(),
                    processes: processes.len(),
                    process_shares: class_shares(process_counts, processes.len()),
                    files: files.len(),
                    file_shares: class_shares(file_counts, files.len()),
                    urls: urls.len(),
                    url_benign: percent(url_benign, urls.len()),
                    url_malicious: percent(url_malicious, urls.len()),
                }
            })
            .collect()
    }

    fn class_shares(counts: [usize; 4], total: usize) -> ClassShares {
        ClassShares {
            benign: percent(counts[0], total),
            likely_benign: percent(counts[1], total),
            malicious: percent(counts[2], total),
            likely_malicious: percent(counts[3], total),
        }
    }

    fn bump(counts: &mut [usize; 4], label: FileLabel) {
        match label {
            FileLabel::Benign => counts[0] += 1,
            FileLabel::LikelyBenign => counts[1] += 1,
            FileLabel::Malicious => counts[2] += 1,
            FileLabel::LikelyMalicious => counts[3] += 1,
            FileLabel::Unknown => {}
        }
    }

    // -----------------------------------------------------------------
    // Escalation (§V-B, Fig. 5)
    // -----------------------------------------------------------------

    /// Whether a downloaded file counts as "other malware" for escalation.
    fn is_target_malware(labels: &LabelView<'_>, file: FileHash) -> bool {
        labels.label(file) == FileLabel::Malicious
            && !matches!(
                labels.malware_type(file),
                Some(MalwareType::Adware)
                    | Some(MalwareType::Pup)
                    | Some(MalwareType::Undefined)
                    | None
            )
    }

    /// Fig. 5 curves via the original per-machine event collection.
    pub fn escalation_cdf(dataset: &Dataset, labels: &LabelView<'_>) -> EscalationReport {
        let mut samples: HashMap<EscalationKind, Vec<f64>> = HashMap::new();

        for machine in dataset.machines() {
            // Events are time-ordered per machine.
            let events: Vec<_> = dataset.events_of_machine(machine).collect();

            // Seed times: first adware, first pup, first dropper download;
            // benign baseline = first benign download on a machine with no
            // earlier malicious download. The seed file is remembered so
            // the seed event itself is not counted as the escalation
            // target.
            let mut seeds: HashMap<EscalationKind, (Timestamp, FileHash)> = HashMap::new();
            let mut seen_malicious = false;
            for event in &events {
                match labels.label(event.file) {
                    FileLabel::Malicious => {
                        let kind = match labels.malware_type(event.file) {
                            Some(MalwareType::Adware) => Some(EscalationKind::Adware),
                            Some(MalwareType::Pup) => Some(EscalationKind::Pup),
                            Some(MalwareType::Dropper) => Some(EscalationKind::Dropper),
                            _ => None,
                        };
                        if let Some(kind) = kind {
                            seeds.entry(kind).or_insert((event.timestamp, event.file));
                        }
                        seen_malicious = true;
                    }
                    FileLabel::Benign if !seen_malicious => {
                        seeds
                            .entry(EscalationKind::Benign)
                            .or_insert((event.timestamp, event.file));
                    }
                    _ => {}
                }
            }

            // For each seed: the first *other malware* download at or after
            // the seed time (same-day escalations are day 0), never counting
            // the seed download itself.
            // downlake-lint: allow(D1) — per-kind sample vectors, kinds independent
            for (kind, (seed_time, seed_file)) in seeds {
                let delta = events
                    .iter()
                    .filter(|e| {
                        e.timestamp >= seed_time
                            && !(e.timestamp == seed_time && e.file == seed_file)
                            && is_target_malware(labels, e.file)
                    })
                    .map(|e| (e.timestamp - seed_time).whole_days() as f64)
                    .next();
                if let Some(days) = delta {
                    samples.entry(kind).or_default().push(days);
                }
            }
        }

        EscalationReport {
            curves: EscalationKind::ALL
                .iter()
                .map(|&kind| {
                    let data = samples.remove(&kind).unwrap_or_default();
                    let n = data.len();
                    (kind, Ecdf::from_samples(data), n)
                })
                .collect(),
        }
    }
}

/// Every table/figure pass output, collected for rendering. Both sides
/// produce the same `downlake-analysis` report types, so one renderer
/// serves both.
struct PassOutputs {
    domain_popularity: [Vec<downlake_analysis::DomainCount>; 3],
    files_per_domain: [Vec<downlake_analysis::DomainCount>; 2],
    type_domains: std::collections::HashMap<MalwareType, Vec<downlake_analysis::DomainCount>>,
    unknown_top_domains: Vec<downlake_analysis::DomainCount>,
    ranks: [(downlake_analysis::stats::Ecdf, usize); 3],
    signing_rates: Vec<downlake_analysis::SigningRateRow>,
    signer_overlap: Vec<downlake_analysis::SignerOverlapRow>,
    top_signers: downlake_analysis::TopSignersReport,
    packers: downlake_analysis::PackerReport,
    category_behavior: Vec<downlake_analysis::ProcessBehaviorRow>,
    browser_behavior: Vec<downlake_analysis::ProcessBehaviorRow>,
    malicious_processes: Vec<downlake_analysis::ProcessBehaviorRow>,
    unknown_categories: Vec<(String, usize)>,
    prevalence: downlake_analysis::PrevalenceReport,
    monthly: Vec<downlake_analysis::MonthSummary>,
    escalation: downlake_analysis::EscalationReport,
}

impl PassOutputs {
    /// Deterministic serialisation: every collection here is ordered
    /// except the per-type domain map, which is rendered keyed by
    /// `MalwareType::ALL` so hash iteration never reaches the output.
    fn render(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        writeln!(w, "== domain_popularity ==\n{:#?}", self.domain_popularity).unwrap();
        writeln!(w, "== files_per_domain ==\n{:#?}", self.files_per_domain).unwrap();
        writeln!(w, "== type_domain_tables ==").unwrap();
        for ty in MalwareType::ALL {
            if let Some(rows) = self.type_domains.get(&ty) {
                writeln!(w, "[{}]\n{rows:#?}", ty.name()).unwrap();
            }
        }
        writeln!(
            w,
            "== top_domains_by_downloads(unknown) ==\n{:#?}",
            self.unknown_top_domains
        )
        .unwrap();
        writeln!(w, "== rank_distribution ==\n{:#?}", self.ranks).unwrap();
        writeln!(w, "== signing_rates_table ==\n{:#?}", self.signing_rates).unwrap();
        writeln!(w, "== signer_overlap ==\n{:#?}", self.signer_overlap).unwrap();
        writeln!(w, "== top_signers ==\n{:#?}", self.top_signers).unwrap();
        writeln!(w, "== packer_report ==\n{:#?}", self.packers).unwrap();
        writeln!(w, "== category_behavior ==\n{:#?}", self.category_behavior).unwrap();
        writeln!(w, "== browser_behavior ==\n{:#?}", self.browser_behavior).unwrap();
        writeln!(
            w,
            "== malicious_process_behavior ==\n{:#?}",
            self.malicious_processes
        )
        .unwrap();
        writeln!(
            w,
            "== unknown_download_categories ==\n{:#?}",
            self.unknown_categories
        )
        .unwrap();
        writeln!(w, "== prevalence_report ==\n{:#?}", self.prevalence).unwrap();
        writeln!(w, "== monthly_summary ==\n{:#?}", self.monthly).unwrap();
        writeln!(w, "== escalation_cdf ==\n{:#?}", self.escalation).unwrap();
        out
    }
}

const TOP_DOMAINS: usize = 10;
const TOP_TYPE_DOMAINS: usize = 5;
const TOP_SIGNERS: usize = 10;

/// All sixteen passes through the pre-refactor loops.
fn run_loops(study: &Study) -> PassOutputs {
    let dataset = study.dataset();
    let labels = study.label_view();
    let ranks = RankSource::new(move |e2ld| study.url_labeler().rank(e2ld).rank());
    let sigma = study.config().synth.sigma as usize;
    PassOutputs {
        domain_popularity: loops::domain_popularity(dataset, &labels, TOP_DOMAINS),
        files_per_domain: loops::files_per_domain(dataset, &labels, TOP_DOMAINS),
        type_domains: loops::type_domain_tables(dataset, &labels, TOP_TYPE_DOMAINS),
        unknown_top_domains: loops::top_domains_by_downloads(
            dataset,
            &labels,
            FileLabel::Unknown,
            TOP_DOMAINS,
        ),
        ranks: [FileLabel::Benign, FileLabel::Malicious, FileLabel::Unknown]
            .map(|class| loops::rank_distribution(dataset, &labels, &ranks, class)),
        signing_rates: loops::signing_rates_table(dataset, &labels),
        signer_overlap: loops::signer_overlap(dataset, &labels),
        top_signers: loops::top_signers(dataset, &labels, TOP_SIGNERS),
        packers: loops::packer_report(dataset, &labels),
        category_behavior: loops::category_behavior(dataset, &labels),
        browser_behavior: loops::browser_behavior(dataset, &labels),
        malicious_processes: loops::malicious_process_behavior(dataset, &labels),
        unknown_categories: loops::unknown_download_categories(dataset, &labels),
        prevalence: loops::prevalence_report(dataset, &labels, sigma),
        monthly: loops::monthly_summary(dataset, &labels, |e2ld| {
            study.url_labeler().label_e2ld(e2ld)
        }),
        escalation: loops::escalation_cdf(dataset, &labels),
    }
}

/// The same sixteen passes as relational queries, including the frame
/// build they share (dense-id columns + CSR adjacency).
fn run_engine(study: &Study) -> PassOutputs {
    let frame = AnalysisFrame::from_label_view(study.dataset(), &study.label_view());
    let ranks = RankSource::new(move |e2ld| study.url_labeler().rank(e2ld).rank());
    let sigma = study.config().synth.sigma as usize;
    PassOutputs {
        domain_popularity: frame.domain_popularity(TOP_DOMAINS),
        files_per_domain: frame.files_per_domain(TOP_DOMAINS),
        type_domains: frame.type_domain_tables(TOP_TYPE_DOMAINS),
        unknown_top_domains: frame.top_domains_by_downloads(FileLabel::Unknown, TOP_DOMAINS),
        ranks: [FileLabel::Benign, FileLabel::Malicious, FileLabel::Unknown]
            .map(|class| frame.rank_distribution(&ranks, class)),
        signing_rates: frame.signing_rates_table(),
        signer_overlap: frame.signer_overlap(),
        top_signers: frame.top_signers(TOP_SIGNERS),
        packers: frame.packer_report(),
        category_behavior: frame.category_behavior(),
        browser_behavior: frame.browser_behavior(),
        malicious_processes: frame.malicious_process_behavior(),
        unknown_categories: frame.unknown_download_categories(),
        prevalence: frame.prevalence_report(sigma),
        monthly: frame.monthly_summary(|e2ld| study.url_labeler().label_e2ld(e2ld)),
        escalation: frame.escalation_cdf(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, scale_name) = if smoke {
        (Scale::Tiny, "tiny")
    } else {
        (Scale::Large, "large")
    };
    let seed = 42u64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("query_tables: scale {scale_name}, seed {seed}, host_cpus {host_cpus}");
    let study = Study::run(&StudyConfig::new(seed).with_scale(scale));
    let events = study.dataset().events().len() as f64;

    let start = Instant::now();
    let loops_out = run_loops(&study).render();
    let loops_seconds = start.elapsed().as_secs_f64();
    eprintln!("  bespoke loops: {loops_seconds:.3}s");

    let start = Instant::now();
    let engine_out = run_engine(&study).render();
    let engine_seconds = start.elapsed().as_secs_f64();
    eprintln!("  query engine:  {engine_seconds:.3}s (frame build included)");

    let identical = loops_out == engine_out;
    let speedup = if engine_seconds > 0.0 {
        loops_seconds / engine_seconds
    } else {
        1.0
    };
    eprintln!("  speedup (loops → engine): {speedup:.2}x, outputs identical: {identical}");

    let timed = [
        TimedRun {
            threads: 1,
            seconds: loops_seconds,
            events_per_sec: Some(events / loops_seconds.max(f64::MIN_POSITIVE)),
        },
        TimedRun {
            threads: 1,
            seconds: engine_seconds,
            events_per_sec: Some(events / engine_seconds.max(f64::MIN_POSITIVE)),
        },
    ];
    let mut manifest = bench_manifest(
        "query_tables",
        scale_name,
        seed,
        identical,
        host_cpus,
        &timed,
        speedup,
    );
    manifest
        .set_timing("loops_seconds", loops_seconds)
        .set_timing("engine_seconds", engine_seconds);
    manifest.absorb(study.obs());
    if let Err(e) = manifest.write(std::path::Path::new("BENCH_query.json")) {
        eprintln!("query_tables: could not write BENCH_query.json: {e}");
        std::process::exit(1);
    }
    eprintln!("query_tables: wrote BENCH_query.json");

    if !identical {
        eprintln!("query_tables: FAIL — engine and loops disagree on the rendered tables");
        std::process::exit(1);
    }
}
