//! `service_throughput` — events/second of the sharded stream service
//! (`downlake::serve`) across a (threads × shards) grid, with the
//! epoch-based hot swap exercised and byte-identity enforced.
//!
//! ```text
//! cargo run --release -p downlake-bench --bin service            # large scale
//! cargo run --release -p downlake-bench --bin service -- --smoke # tiny, for CI
//! ```
//!
//! Emits `BENCH_service.json` in the current directory via the shared
//! [`downlake_bench::report`] manifest writer, schema-matched to
//! `BENCH_stream.json`: `host_cpus` is recorded (under `timing`)
//! because a single-core runner cannot show pooled speedup, and
//! `identical` reports the invariant that actually matters — every
//! (threads, shards) cell ends in the same logical state (verdicts,
//! swap divergences, merged tallies) as every other, and the sharded
//! service's verdicts equal the single `StreamSession` replay's. Exits
//! non-zero if identity ever breaks.

use downlake::serve::{self, ServeOptions, ServeRun};
use downlake::{Study, StudyConfig};
use downlake_bench::report::{bench_manifest, TimedRun};
use downlake_synth::Scale;
use downlake_types::Month;
use std::time::Instant;

struct Cell {
    threads: usize,
    shards: usize,
    seconds: f64,
    events_per_sec: f64,
    run: ServeRun,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, scale_name) = if smoke {
        (Scale::Tiny, "tiny")
    } else {
        (Scale::Large, "large")
    };
    let seed = 42u64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("service_throughput: scale {scale_name}, seed {seed}, host_cpus {host_cpus}");
    let study = Study::run(&StudyConfig::new(seed).with_scale(scale));
    // The hot swap is part of the measured shape: retrain on February
    // and publish at an epoch boundary early in the stream.
    let options = ServeOptions {
        epoch_len: 500,
        swap_month: Some(Month::February),
        ..ServeOptions::default()
    };
    let prep = serve::stage(&study, options);
    eprintln!(
        "  staged: {} events, {} rules (gen 0), swap staged for epoch {}",
        prep.events_total(),
        prep.live().engine().rule_count(),
        options.epoch_len
    );

    let cells: Vec<Cell> = [(1usize, 1usize), (4, 1), (1, 8), (4, 8)]
        .into_iter()
        .map(|(threads, shards)| {
            let start = Instant::now();
            let run = match prep.run(threads, shards) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("service_throughput: run failed: {e}");
                    std::process::exit(1);
                }
            };
            let seconds = start.elapsed().as_secs_f64();
            let events_per_sec = if seconds > 0.0 {
                run.status.events_seen as f64 / seconds
            } else {
                0.0
            };
            eprintln!(
                "  threads {threads} shards {shards}: {seconds:.3}s, \
                 {events_per_sec:.0} events/s, gen {}, {} swap(s)",
                run.status.generation, run.status.swaps
            );
            Cell {
                threads,
                shards,
                seconds,
                events_per_sec,
                run,
            }
        })
        .collect();

    // Identity: every grid cell ends in the same logical state as every
    // other, and the sharded verdict stream equals the single-session
    // replay's (the session has no hot swap, so compare a swap-free
    // run for that anchor).
    let grid_identical = cells.windows(2).all(|w| w[0].run.same_state(&w[1].run));
    let session_identical = {
        let plain = serve::stage(
            &study,
            ServeOptions {
                swap_month: None,
                ..options
            },
        );
        match (plain.run(1, 8), plain.live().replay(1)) {
            (Ok(run), Ok(outcome)) => run.verdicts == outcome.verdicts,
            _ => false,
        }
    };
    let identical = grid_identical && session_identical;
    // Pooled speedup at the widest shard count: threads 1 → 4.
    let (t1, t4) = (
        cells.iter().find(|c| c.threads == 1 && c.shards == 8),
        cells.iter().find(|c| c.threads == 4 && c.shards == 8),
    );
    let speedup = match (t1, t4) {
        (Some(one), Some(four)) if four.seconds > 0.0 => one.seconds / four.seconds,
        _ => 1.0,
    };
    eprintln!(
        "  speedup (1 → 4 threads @ 8 shards): {speedup:.2}x, identical: {identical} \
         (grid {grid_identical}, session {session_identical})"
    );

    let timed: Vec<TimedRun> = cells
        .iter()
        .map(|c| TimedRun {
            threads: c.threads,
            seconds: c.seconds,
            events_per_sec: Some(c.events_per_sec),
        })
        .collect();
    let mut manifest = bench_manifest(
        "service_throughput",
        scale_name,
        seed,
        identical,
        host_cpus,
        &timed,
        speedup,
    );
    manifest
        .set_run("events", prep.events_total() as u64)
        .set_run("rules", prep.live().engine().rule_count() as u64)
        .set_run("epoch_len", options.epoch_len)
        .set_run("shards_max", 8u64)
        .absorb(study.obs());
    if let Some(cell) = cells.first() {
        manifest
            .set_run("swaps_published", cell.run.status.swaps)
            .set_run(
                "swap_changed",
                cell.run.swaps.iter().map(|s| s.changed).sum::<u64>(),
            );
    }
    if let Err(e) = manifest.write(std::path::Path::new("BENCH_service.json")) {
        eprintln!("service_throughput: could not write BENCH_service.json: {e}");
        std::process::exit(1);
    }
    eprintln!("service_throughput: wrote BENCH_service.json");

    if !identical {
        eprintln!("service_throughput: FAIL — grid cells or session replay diverged");
        std::process::exit(1);
    }
}
