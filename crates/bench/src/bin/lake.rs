//! `lake_cache` — wall-clock effect of the disk-resident event lake,
//! measured end to end: cold build (generate + spill segments) vs warm
//! scan (reopen cached segments, zero generation) vs the in-RAM
//! pipeline.
//!
//! ```text
//! cargo run --release -p downlake-bench --bin lake            # small scale
//! cargo run --release -p downlake-bench --bin lake -- --smoke # tiny, for CI
//! ```
//!
//! The verdict that must hold everywhere is byte-identity of the full
//! report across all three paths — the lake is a cache, not a different
//! pipeline — and the bin exits non-zero if it ever breaks. It also
//! verifies through the obs counters that the warm run performed zero
//! event generation (`lake.open.warm` fired, `synth.events` absent).
//! Emits `BENCH_lake.json` via the shared [`downlake_bench::report`]
//! manifest writer; the lake root lives under a process-unique temp
//! directory that is removed on exit.

use downlake::{report, Study, StudyConfig};
use downlake_bench::report::{bench_manifest, TimedRun};
use downlake_obs::ObsReport;
use downlake_synth::Scale;
use std::path::PathBuf;
use std::time::Instant;

struct Run {
    label: &'static str,
    seconds: f64,
    report: String,
    obs: ObsReport,
}

fn run_once(label: &'static str, config: &StudyConfig) -> Run {
    let start = Instant::now();
    let study = Study::run(config);
    let report = report::full_report(&study);
    Run {
        label,
        seconds: start.elapsed().as_secs_f64(),
        report,
        obs: study.obs().clone(),
    }
}

/// A fresh, process-unique lake root (no tempfile dependency).
fn scratch_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("downlake-bench-lake-{}", std::process::id()));
    // A stale directory from a crashed earlier run would turn our "cold"
    // leg warm; start from nothing.
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("lake_cache: could not create scratch root: {e}");
        std::process::exit(1);
    }
    dir
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, scale_name) = if smoke {
        (Scale::Tiny, "tiny")
    } else {
        (Scale::Small, "small")
    };
    let seed = 42u64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("lake_cache: scale {scale_name}, seed {seed}, host_cpus {host_cpus}");
    let root = scratch_root();
    let ram_config = StudyConfig::new(seed).with_scale(scale).with_threads(1);
    let lake_config = ram_config.clone().with_lake(root.clone());

    let runs = [
        run_once("in_ram", &ram_config),
        run_once("cold_build", &lake_config),
        run_once("warm_scan", &lake_config),
    ];
    for run in &runs {
        eprintln!("  {}: {:.3}s", run.label, run.seconds);
    }
    let _ = std::fs::remove_dir_all(&root);

    let identical = runs.windows(2).all(|w| w[0].report == w[1].report);
    let warm = &runs[2];
    let warm_is_warm = warm.obs.counters.get("lake.open.warm") == Some(&1)
        && !warm.obs.counters.contains_key("synth.events")
        && !warm.obs.counters.contains_key("lake.fallback");
    let speedup = if warm.seconds > 0.0 {
        runs[0].seconds / warm.seconds
    } else {
        1.0
    };
    eprintln!(
        "  speedup (in-RAM → warm scan): {speedup:.2}x, reports identical: {identical}, \
         warm run generation-free: {warm_is_warm}"
    );

    let timed: Vec<TimedRun> = runs
        .iter()
        .map(|r| TimedRun {
            threads: 1,
            seconds: r.seconds,
            events_per_sec: None,
        })
        .collect();
    let mut manifest = bench_manifest(
        "lake_cache",
        scale_name,
        seed,
        identical && warm_is_warm,
        host_cpus,
        &timed,
        speedup,
    );
    manifest
        .set_timing("in_ram_seconds", runs[0].seconds)
        .set_timing("cold_build_seconds", runs[1].seconds)
        .set_timing("warm_scan_seconds", warm.seconds);
    // The deterministic plane of the warm run carries the lake counters
    // (`lake.open.warm`, `lake.events`, `lake.segments`) alongside the
    // pipeline's own metrics.
    manifest.absorb(&warm.obs);
    if let Err(e) = manifest.write(std::path::Path::new("BENCH_lake.json")) {
        eprintln!("lake_cache: could not write BENCH_lake.json: {e}");
        std::process::exit(1);
    }
    eprintln!("lake_cache: wrote BENCH_lake.json");

    if !identical {
        eprintln!("lake_cache: FAIL — the lake changed the report bytes");
        std::process::exit(1);
    }
    if !warm_is_warm {
        eprintln!("lake_cache: FAIL — the warm run regenerated instead of scanning");
        std::process::exit(1);
    }
}
