//! Prints the quality side of every ablation study.
//!
//! ```text
//! cargo run --release -p downlake-bench --bin ablations
//! ```

use downlake_bench::ablation;

fn main() {
    println!("building 1/64-scale study (seed 42)…\n");
    let data = ablation::ablation_data(downlake_bench::small_study());

    println!("== τ sweep (selection threshold vs quality) ==");
    for row in ablation::tau_sweep(&data) {
        println!("  {row}");
    }

    println!("\n== support-floor sweep (min rule coverage at τ=0.1%) ==");
    for row in ablation::coverage_sweep(&data) {
        println!("  {row}");
    }

    println!("\n== conflict policy (τ=0.1%, cov≥10) ==");
    for row in ablation::conflict_policies(&data) {
        println!("  {row}");
    }

    println!("\n== PART rules vs whole C4.5 tree ==");
    for row in ablation::part_vs_tree(&data) {
        println!("  {row}");
    }

    println!("\n== feature ablation (drop one feature, re-learn) ==");
    for row in ablation::feature_ablation(&data) {
        println!("  {row}");
    }

    println!("\n== σ (reporting cap) sweep on tiny worlds ==");
    for line in ablation::sigma_sweep(42) {
        println!("  {line}");
    }
}
