//! `parallel_speedup` — wall-clock effect of the deterministic worker
//! pool, measured end to end (generation → collection → labeling →
//! frame → full report) at 1 vs 4 threads.
//!
//! ```text
//! cargo run --release -p downlake-bench --bin parallel            # large scale
//! cargo run --release -p downlake-bench --bin parallel -- --smoke # tiny, for CI
//! ```
//!
//! Emits `BENCH_parallel.json` in the current directory via the shared
//! [`downlake_bench::report`] manifest writer. Numbers are honest:
//! `host_cpus` is recorded alongside the timings (under the manifest's
//! `timing` section), because on a single-core runner the pool cannot
//! (and should not) show a speedup — what must hold everywhere is
//! byte-identical output, which this bin also verifies and reports as
//! `"identical"`. The pipeline's own deterministic metrics (from
//! `Study::obs`) ride along in the manifest body.

use downlake::{report, Study, StudyConfig};
use downlake_bench::report::{bench_manifest, TimedRun};
use downlake_obs::ObsReport;
use downlake_synth::Scale;
use std::time::Instant;

struct Run {
    threads: usize,
    seconds: f64,
    report: String,
    obs: ObsReport,
}

fn run_once(scale: Scale, seed: u64, threads: usize) -> Run {
    let start = Instant::now();
    let study = Study::run(
        &StudyConfig::new(seed)
            .with_scale(scale)
            .with_threads(threads),
    );
    let report = report::full_report(&study);
    Run {
        threads,
        seconds: start.elapsed().as_secs_f64(),
        report,
        obs: study.obs().clone(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, scale_name) = if smoke {
        (Scale::Tiny, "tiny")
    } else {
        (Scale::Large, "large")
    };
    let seed = 42u64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("parallel_speedup: scale {scale_name}, seed {seed}, host_cpus {host_cpus}");
    let runs: Vec<Run> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let run = run_once(scale, seed, threads);
            eprintln!("  threads {threads}: {:.3}s", run.seconds);
            run
        })
        .collect();

    let identical = runs.windows(2).all(|w| w[0].report == w[1].report);
    let speedup = match runs.last() {
        Some(last) if last.seconds > 0.0 => runs
            .first()
            .map_or(1.0, |first| first.seconds / last.seconds),
        _ => 1.0,
    };
    eprintln!("  speedup (1 → 4 threads): {speedup:.2}x, outputs identical: {identical}");

    let timed: Vec<TimedRun> = runs
        .iter()
        .map(|r| TimedRun {
            threads: r.threads,
            seconds: r.seconds,
            events_per_sec: None,
        })
        .collect();
    let mut manifest = bench_manifest(
        "parallel_speedup",
        scale_name,
        seed,
        identical,
        host_cpus,
        &timed,
        speedup,
    );
    // The deterministic plane is identical across the runs (that is the
    // point), so absorbing one representative loses nothing.
    if let Some(run) = runs.first() {
        manifest.absorb(&run.obs);
    }
    if let Err(e) = manifest.write(std::path::Path::new("BENCH_parallel.json")) {
        eprintln!("parallel_speedup: could not write BENCH_parallel.json: {e}");
        std::process::exit(1);
    }
    eprintln!("parallel_speedup: wrote BENCH_parallel.json");

    if !identical {
        eprintln!("parallel_speedup: FAIL — thread count changed the report bytes");
        std::process::exit(1);
    }
}
