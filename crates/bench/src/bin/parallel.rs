//! `parallel_speedup` — wall-clock effect of the deterministic worker
//! pool, measured end to end (generation → collection → labeling →
//! frame → full report) at 1 vs 4 threads.
//!
//! ```text
//! cargo run --release -p downlake-bench --bin parallel            # large scale
//! cargo run --release -p downlake-bench --bin parallel -- --smoke # tiny, for CI
//! ```
//!
//! Emits `BENCH_parallel.json` in the current directory. Numbers are
//! honest: `host_cpus` is recorded alongside the timings, because on a
//! single-core runner the pool cannot (and should not) show a speedup —
//! what must hold everywhere is byte-identical output, which this bin
//! also verifies and reports as `"identical"`.

use downlake::{report, Study, StudyConfig};
use downlake_synth::Scale;
use std::time::Instant;

struct Run {
    threads: usize,
    seconds: f64,
    report: String,
}

fn run_once(scale: Scale, seed: u64, threads: usize) -> Run {
    let start = Instant::now();
    let study = Study::run(
        &StudyConfig::new(seed)
            .with_scale(scale)
            .with_threads(threads),
    );
    let report = report::full_report(&study);
    Run {
        threads,
        seconds: start.elapsed().as_secs_f64(),
        report,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, scale_name) = if smoke {
        (Scale::Tiny, "tiny")
    } else {
        (Scale::Large, "large")
    };
    let seed = 42u64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("parallel_speedup: scale {scale_name}, seed {seed}, host_cpus {host_cpus}");
    let runs: Vec<Run> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let run = run_once(scale, seed, threads);
            eprintln!("  threads {threads}: {:.3}s", run.seconds);
            run
        })
        .collect();

    let identical = runs.windows(2).all(|w| w[0].report == w[1].report);
    let speedup = match runs.last() {
        Some(last) if last.seconds > 0.0 => runs
            .first()
            .map_or(1.0, |first| first.seconds / last.seconds),
        _ => 1.0,
    };
    eprintln!("  speedup (1 → 4 threads): {speedup:.2}x, outputs identical: {identical}");

    // Hand-rolled JSON: the bench crate stays free of serialization deps.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"parallel_speedup\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"threads\": {}, \"seconds\": {:.6}}}{comma}\n",
            run.threads, run.seconds
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup\": {speedup:.4},\n"));
    json.push_str(&format!("  \"identical\": {identical}\n"));
    json.push_str("}\n");
    if let Err(e) = std::fs::write("BENCH_parallel.json", &json) {
        eprintln!("parallel_speedup: could not write BENCH_parallel.json: {e}");
        std::process::exit(1);
    }
    eprintln!("parallel_speedup: wrote BENCH_parallel.json");

    if !identical {
        eprintln!("parallel_speedup: FAIL — thread count changed the report bytes");
        std::process::exit(1);
    }
}
