//! Benchmark support library: shared study fixtures and the ablation
//! studies for the design choices called out in `DESIGN.md`.
//!
//! The criterion benches (`benches/`) regenerate every paper table and
//! figure against fixtures built here; the `ablations` binary prints the
//! quality side of each ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ablation;
pub mod report;

use downlake::{Study, StudyConfig};
use downlake_synth::Scale;
use std::sync::OnceLock;

/// A process-wide tiny study (1/256 scale, seed 42) for cheap benches.
pub fn tiny_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(&StudyConfig::new(42).with_scale(Scale::Tiny)))
}

/// A process-wide small study (1/64 scale, seed 42) for the heavier
/// regeneration benches and ablations.
pub fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(&StudyConfig::new(42).with_scale(Scale::Small)))
}
