//! Shared `BENCH_*.json` emitter for the bench binaries.
//!
//! Both speedup bins (`parallel`, `stream`) used to hand-roll their JSON
//! with `format!`, which silently produced invalid documents the moment
//! a string field contained a quote or backslash. They now render
//! through [`downlake_obs::RunManifest`], whose writer escapes per
//! RFC 8259 — and the same layout discipline applies: facts that are a
//! pure function of the configuration live under `run`, wall-clock
//! numbers (`host_cpus`, seconds, speedup) are quarantined under
//! `timing`.

use downlake_obs::json::Json;
use downlake_obs::RunManifest;

/// One timed replay/pipeline run at a fixed pool width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedRun {
    /// Worker-pool width used for this run.
    pub threads: usize,
    /// Wall-clock duration of the run.
    pub seconds: f64,
    /// Decoded events per second, where the bench measures throughput.
    pub events_per_sec: Option<f64>,
}

/// Builds the shared bench manifest.
///
/// `identical` — the determinism verdict (every run byte-equal) — sits
/// in the `run` section: its *value* is configuration-determined (the
/// bins exit non-zero if it is ever false). Everything measured with a
/// real clock goes under `timing`.
pub fn bench_manifest(
    bench: &str,
    scale: &str,
    seed: u64,
    identical: bool,
    host_cpus: usize,
    runs: &[TimedRun],
    speedup: f64,
) -> RunManifest {
    let mut manifest = RunManifest::new(bench);
    manifest
        .set_run("scale", scale)
        .set_run("seed", seed)
        .set_run("identical", identical)
        .set_timing("host_cpus", host_cpus as u64)
        .set_timing("speedup", speedup);
    let entries: Vec<Json> = runs
        .iter()
        .map(|r| {
            let mut obj = vec![
                ("threads".to_owned(), Json::from(r.threads as u64)),
                ("seconds".to_owned(), Json::from(r.seconds)),
            ];
            if let Some(eps) = r.events_per_sec {
                obj.push(("events_per_sec".to_owned(), Json::from(eps)));
            }
            Json::Obj(obj)
        })
        .collect();
    manifest.set_timing("runs", Json::Arr(entries));
    manifest
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_obs::json::parse;

    #[test]
    fn emitted_bench_json_parses_and_keeps_sections_straight() {
        let runs = [
            TimedRun {
                threads: 1,
                seconds: 1.25,
                events_per_sec: Some(80_000.0),
            },
            TimedRun {
                threads: 4,
                seconds: 0.5,
                events_per_sec: Some(200_000.0),
            },
        ];
        // A hostile scale name: the old format!-based writer emitted
        // invalid JSON for exactly this input.
        let manifest = bench_manifest(
            "stream_throughput",
            "1/64 \"paper\"\\",
            42,
            true,
            8,
            &runs,
            2.5,
        );
        let doc = parse(&manifest.to_json()).expect("bench manifest must be valid JSON");
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("stream_throughput")
        );
        let run = doc.get("run").expect("run section");
        assert_eq!(
            run.get("scale").and_then(Json::as_str),
            Some("1/64 \"paper\"\\")
        );
        assert_eq!(run.get("seed").and_then(Json::as_u64), Some(42));
        let timing = doc.get("timing").expect("timing section");
        assert_eq!(timing.get("host_cpus").and_then(Json::as_u64), Some(8));
        match timing.get("runs") {
            Some(Json::Arr(entries)) => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[1].get("threads").and_then(Json::as_u64), Some(4));
            }
            other => panic!("timing.runs should be an array, got {other:?}"),
        }
        // Wall-clock numbers never leak outside `timing`: stripping it
        // removes every one of them.
        let stripped = manifest.to_json_stripped();
        assert!(!stripped.contains("host_cpus"));
        assert!(!stripped.contains("seconds"));
        assert!(stripped.contains("identical"));
    }
}
