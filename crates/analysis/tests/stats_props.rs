//! Property tests for the statistics toolkit.

use downlake_analysis::stats::{percent, Counter, Ecdf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The ECDF is a proper CDF: monotone, within [0,1], reaching 1 at
    /// the maximum sample.
    #[test]
    fn ecdf_is_a_cdf(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Ecdf::from_samples(samples.clone());
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert_eq!(cdf.eval(max), 1.0);
        prop_assert!(cdf.eval(min - 1.0) == 0.0);
        let mut last = 0.0;
        let mut x = min;
        while x <= max {
            let y = cdf.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y >= last);
            last = y;
            x += (max - min).max(1.0) / 17.0;
        }
    }

    /// Quantiles are order statistics: within sample range and monotone
    /// in q.
    #[test]
    fn quantiles_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let cdf = Ecdf::from_samples(samples.clone());
        let mut last = f64::MIN;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = cdf.quantile(q).expect("non-empty");
            prop_assert!(samples.contains(&v));
            prop_assert!(v >= last);
            last = v;
        }
    }

    /// ECDF plot points are monotone and end at probability 1.
    #[test]
    fn points_are_monotone(samples in proptest::collection::vec(0f64..1e3, 1..300), k in 1usize..40) {
        let cdf = Ecdf::from_samples(samples);
        let pts = cdf.points(k);
        prop_assert!(!pts.is_empty());
        prop_assert_eq!(pts.last().unwrap().1, 1.0);
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// Counter totals are conserved and top-k is sorted.
    #[test]
    fn counter_conservation(keys in proptest::collection::vec(0u32..30, 0..300), k in 1usize..10) {
        let counter: Counter<u32> = keys.iter().copied().collect();
        prop_assert_eq!(counter.total(), keys.len() as u64);
        let top = counter.top(k);
        prop_assert!(top.len() <= k);
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        // Each reported count is exact.
        for (key, count) in &top {
            let expected = keys.iter().filter(|&&x| x == *key).count() as u64;
            prop_assert_eq!(*count, expected);
        }
    }

    /// percent() stays within [0, 100] for part ≤ whole.
    #[test]
    fn percent_bounds(part in 0usize..1000, extra in 0usize..1000) {
        let whole = part + extra;
        let p = percent(part, whole);
        if whole == 0 {
            prop_assert_eq!(p, 0.0);
        } else {
            prop_assert!((0.0..=100.0).contains(&p));
        }
    }
}
