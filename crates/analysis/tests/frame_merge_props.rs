//! Property: merging per-shard frame partials reproduces the
//! single-shard frame exactly, for randomized datasets and every pool
//! width.
//!
//! The dataset generator is a pure function of a `u64` seed (driven by
//! `downlake_exec::splitmix64`, no RNG dependency), so the `proptest!`
//! property and its plain `#[test]` grid mirror exercise the same code.

use downlake_analysis::AnalysisFrame;
use downlake_exec::{splitmix64, Pool};
use downlake_telemetry::{Dataset, DatasetBuilder, RawEvent};
use downlake_types::{
    FileHash, FileLabel, FileMeta, MachineId, MalwareType, PackerInfo, SignerInfo, Timestamp,
};
use proptest::prelude::*;

/// Builds a small randomized dataset: a pure function of `seed`.
fn dataset(seed: u64) -> Dataset {
    let mut builder = DatasetBuilder::new();
    let events = 40 + (splitmix64(seed) % 160) as usize;
    for i in 0..events {
        let roll = |salt: u64| splitmix64(seed ^ salt.wrapping_add(i as u64).wrapping_mul(0x9e37));
        let file = 1 + roll(1) % 23;
        let process = 900 + roll(2) % 7;
        let host = [
            "a.com",
            "b.com",
            "c.net",
            "d.org",
            "cdn.e.com",
            "f.io",
            "g.co",
        ][(roll(3) % 7) as usize];
        let url = format!("http://{host}/f{}", roll(4) % 11);
        builder.push(RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta {
                signer: (file % 3 == 0).then(|| {
                    SignerInfo::valid(["Acme", "Globex", "Initech"][(file % 3) as usize], "ca")
                }),
                packer: (file % 5 == 0)
                    .then(|| PackerInfo::new(["UPX", "NSIS"][(file % 2) as usize])),
                ..FileMeta::default()
            },
            machine: MachineId::from_raw(1 + roll(5) % 17),
            process: FileHash::from_raw(process),
            process_meta: FileMeta {
                disk_name: ["chrome.exe", "java.exe", "setup.exe"][(process % 3) as usize]
                    .to_owned(),
                ..FileMeta::default()
            },
            url: url.parse().expect("synthetic url parses"),
            timestamp: Timestamp::from_day((roll(6) % 200) as u32),
            executed: roll(7) % 4 != 0,
        });
    }
    builder.finish()
}

fn label_of(h: FileHash) -> FileLabel {
    match h.raw() % 4 {
        0 => FileLabel::Benign,
        1 => FileLabel::Malicious,
        _ => FileLabel::Unknown,
    }
}

fn type_of(h: FileHash) -> Option<MalwareType> {
    (h.raw() % 4 == 1).then_some(MalwareType::Trojan)
}

/// The property: every public column of the pooled frame equals the
/// sequential frame, at every tested width.
fn check_merge_matches_sequential(seed: u64, threads: usize) {
    let data = dataset(seed);
    let oracle = AnalysisFrame::build(&data, label_of, type_of);
    let pool = Pool::new(threads);
    let merged = AnalysisFrame::build_with(&data, &pool, label_of, type_of);

    assert_eq!(merged.event_count(), oracle.event_count());
    assert_eq!(merged.file_count(), oracle.file_count());
    assert_eq!(merged.process_count(), oracle.process_count());
    assert_eq!(merged.machine_count(), oracle.machine_count());
    assert_eq!(merged.e2ld_count(), oracle.e2ld_count());
    assert_eq!(merged.file_labels(), oracle.file_labels());
    assert_eq!(merged.file_types(), oracle.file_types());
    assert_eq!(merged.file_prevalences(), oracle.file_prevalences());
    assert_eq!(merged.process_labels(), oracle.process_labels());
    assert_eq!(merged.process_types(), oracle.process_types());
    assert_eq!(merged.process_categories(), oracle.process_categories());
    assert_eq!(merged.event_files(), oracle.event_files());
    assert_eq!(merged.event_file_labels(), oracle.event_file_labels());
    assert_eq!(merged.event_e2lds(), oracle.event_e2lds());
    assert_eq!(merged.event_months(), oracle.event_months());
    assert_eq!(merged.url_e2lds(), oracle.url_e2lds());

    // Derived analyses exercise the CSR groupings and intern tables end
    // to end — any merge-order slip shows up here too.
    assert_eq!(merged.domain_popularity(10), oracle.domain_popularity(10));
    assert_eq!(merged.signing_rates_table(), oracle.signing_rates_table());
    assert_eq!(merged.packer_report(), oracle.packer_report());
    assert_eq!(merged.category_behavior(), oracle.category_behavior());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shard_merge_equals_single_shard_frame(seed in any::<u64>(), threads in 1usize..9) {
        check_merge_matches_sequential(seed, threads);
    }
}

#[test]
fn shard_merge_grid_mirror() {
    for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
        for threads in [2usize, 3, 5, 8] {
            check_merge_matches_sequential(seed, threads);
        }
    }
}
