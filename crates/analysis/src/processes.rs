//! Downloading-process behaviour analyses (§V: Tables X–XII, XIV).
//!
//! Each table is an event-column query dispatching into per-row
//! accumulators: distinct processes / machines / files per row are
//! first-sighting [`Stamp`](downlake_query::Stamp)s over the frame's
//! dense ids, the type mix a fixed 11-slot counter, and the
//! file-by-category grid of Table XIV a
//! [`MaskStamp`](downlake_query::MaskStamp) — no hash sets, no
//! per-event hashing.

use crate::frame::{type_index, AnalysisFrame, TYPE_COUNT};
use crate::labels::LabelView;
use crate::stats::percent;
use downlake_query::{scan, MaskStamp, Stamp};
use downlake_telemetry::Dataset;
use downlake_types::{BrowserKind, FileLabel, MalwareType, ProcessCategory};
use serde::{Deserialize, Serialize};

/// One row of Tables X/XI/XII.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ProcessBehaviorRow {
    /// Row label (category / browser / malware type name).
    pub label: String,
    /// Distinct process versions (image hashes).
    pub processes: usize,
    /// Distinct machines on which they initiated downloads.
    pub machines: usize,
    /// Distinct downloaded files that are unknown.
    pub unknown_files: usize,
    /// Distinct downloaded files labeled benign.
    pub benign_files: usize,
    /// Distinct downloaded files labeled malicious.
    pub malicious_files: usize,
    /// % of those machines that downloaded ≥1 malicious file.
    pub infected_pct: f64,
    /// Behaviour-type mix (percent) of the malicious downloads.
    pub type_mix: Vec<(MalwareType, f64)>,
}

/// The five aggregate category rows, in Table X display order.
const CATEGORY_ORDER: [&str; 5] = [
    "Browsers",
    "Windows Processes",
    "Java",
    "Acrobat Reader",
    "All other processes",
];

/// Dense slot of a category in [`CATEGORY_ORDER`].
const fn category_index(category: ProcessCategory) -> usize {
    match category {
        ProcessCategory::Browser(_) => 0,
        ProcessCategory::Windows => 1,
        ProcessCategory::Java => 2,
        ProcessCategory::AcrobatReader => 3,
        ProcessCategory::Other => 4,
    }
}

/// Dense slot of a browser in [`BrowserKind::ALL`] order.
const fn browser_index(kind: BrowserKind) -> usize {
    match kind {
        BrowserKind::Firefox => 0,
        BrowserKind::Chrome => 1,
        BrowserKind::Opera => 2,
        BrowserKind::Safari => 3,
        BrowserKind::InternetExplorer => 4,
    }
}

/// One table row's distinct-entity accumulator: first-sighting stamps
/// over the dense id spaces plus the folded tallies. Each accumulator
/// is private to its row, so every stamp uses a single tag.
struct DenseRowAcc {
    proc: Stamp,
    processes: usize,
    mach: Stamp,
    machines: usize,
    infected_mach: Stamp,
    infected: usize,
    file: Stamp,
    unknown: usize,
    benign: usize,
    malicious: usize,
    type_counts: [u64; TYPE_COUNT],
}

impl DenseRowAcc {
    fn new(frame: &AnalysisFrame) -> Self {
        Self {
            proc: Stamp::new(frame.process_count()),
            processes: 0,
            mach: Stamp::new(frame.machine_count()),
            machines: 0,
            infected_mach: Stamp::new(frame.machine_count()),
            infected: 0,
            file: Stamp::new(frame.file_count()),
            unknown: 0,
            benign: 0,
            malicious: 0,
            type_counts: [0; TYPE_COUNT],
        }
    }

    fn record(
        &mut self,
        process: usize,
        machine: usize,
        file: usize,
        label: FileLabel,
        ty: Option<MalwareType>,
    ) {
        self.processes += usize::from(self.proc.mark(process, 0));
        self.machines += usize::from(self.mach.mark(machine, 0));
        // A file has exactly one label, so one stamp serves all three
        // distinct-file counts; likely-* files touch no file tally.
        match label {
            FileLabel::Unknown => self.unknown += usize::from(self.file.mark(file, 0)),
            FileLabel::Benign => self.benign += usize::from(self.file.mark(file, 0)),
            FileLabel::Malicious => {
                self.infected += usize::from(self.infected_mach.mark(machine, 0));
                if self.file.mark(file, 0) {
                    self.malicious += 1;
                    if let Some(ty) = ty {
                        self.type_counts[type_index(ty)] += 1;
                    }
                }
            }
            _ => {}
        }
    }

    fn into_row(self, label: String) -> ProcessBehaviorRow {
        let malicious_total = self.malicious;
        let mut type_mix: Vec<(MalwareType, f64)> = MalwareType::ALL
            .iter()
            .filter_map(|&ty| {
                let count = self.type_counts[type_index(ty)];
                (count > 0).then(|| (ty, percent(count as usize, malicious_total)))
            })
            .collect();
        type_mix.sort_by(|a, b| b.1.total_cmp(&a.1));
        ProcessBehaviorRow {
            label,
            processes: self.processes,
            machines: self.machines,
            unknown_files: self.unknown,
            benign_files: self.benign,
            malicious_files: self.malicious,
            infected_pct: percent(self.infected, self.machines),
            type_mix,
        }
    }
}

impl AnalysisFrame {
    fn record_event(&self, acc: &mut DenseRowAcc, event: usize) {
        acc.record(
            self.ev_process[event].index(),
            self.ev_machine[event].index(),
            self.ev_file[event].index(),
            self.ev_file_label[event],
            self.ev_file_type[event],
        );
    }

    /// Whether `event`'s downloading process is labeled benign.
    fn benign_process(&self, event: usize) -> bool {
        self.proc_label[self.ev_process[event].index()] == FileLabel::Benign
    }

    /// Table X: download behaviour of *known benign* processes, by
    /// category. Only events whose process hash is labeled benign
    /// participate, exactly as the paper restricts to whitelist-matched
    /// processes.
    pub fn category_behavior(&self) -> Vec<ProcessBehaviorRow> {
        let mut accs: [Option<Box<DenseRowAcc>>; 5] = std::array::from_fn(|_| None);
        scan(0..self.event_count())
            .filter(|&e| self.benign_process(e))
            .for_each(|event| {
                let slot = category_index(self.ev_proc_category[event]);
                let acc = accs[slot].get_or_insert_with(|| Box::new(DenseRowAcc::new(self)));
                self.record_event(acc, event);
            });
        CATEGORY_ORDER
            .iter()
            .zip(accs)
            .filter_map(|(&label, acc)| acc.map(|a| a.into_row(label.to_owned())))
            .collect()
    }

    /// Table XI: download behaviour per browser (benign browser
    /// processes).
    pub fn browser_behavior(&self) -> Vec<ProcessBehaviorRow> {
        let mut accs: [Option<Box<DenseRowAcc>>; 5] = std::array::from_fn(|_| None);
        scan(0..self.event_count())
            .filter_map(|e| self.ev_proc_category[e].browser().map(|kind| (e, kind)))
            .filter(|&(e, _)| self.benign_process(e))
            .for_each(|(event, kind)| {
                let acc = accs[browser_index(kind)]
                    .get_or_insert_with(|| Box::new(DenseRowAcc::new(self)));
                self.record_event(acc, event);
            });
        BrowserKind::ALL
            .iter()
            .zip(accs)
            .filter_map(|(&kind, acc)| acc.map(|a| a.into_row(kind.name().to_owned())))
            .collect()
    }

    /// Table XII: download behaviour of *malicious* processes, by the
    /// process's own behaviour type, plus an `"overall"` row.
    pub fn malicious_process_behavior(&self) -> Vec<ProcessBehaviorRow> {
        let mut accs: [Option<Box<DenseRowAcc>>; TYPE_COUNT] = std::array::from_fn(|_| None);
        let mut overall: Option<Box<DenseRowAcc>> = None;
        scan(0..self.event_count())
            .filter(|&e| self.proc_label[self.ev_process[e].index()] == FileLabel::Malicious)
            .for_each(|event| {
                let process = self.ev_process[event].index();
                let ty = self.proc_type[process].unwrap_or(MalwareType::Undefined);
                let acc =
                    accs[type_index(ty)].get_or_insert_with(|| Box::new(DenseRowAcc::new(self)));
                self.record_event(acc, event);
                let acc = overall.get_or_insert_with(|| Box::new(DenseRowAcc::new(self)));
                self.record_event(acc, event);
            });
        let mut rows: Vec<ProcessBehaviorRow> = MalwareType::ALL
            .into_iter()
            .filter_map(|ty| {
                accs[type_index(ty)]
                    .take()
                    .map(|a| a.into_row(ty.name().to_owned()))
            })
            .collect();
        if let Some(overall) = overall {
            rows.push(overall.into_row("overall".to_owned()));
        }
        rows
    }

    /// Table XIV: how many distinct *unknown* files each benign process
    /// category downloaded, plus the total.
    pub fn unknown_download_categories(&self) -> Vec<(String, usize)> {
        // Categories interleave in event order, so a tag-based stamp
        // would double-count: one mask bit per (file, category) pair —
        // a file arriving via several categories counts once in each.
        let mut seen = MaskStamp::new(self.file_count());
        let mut counts = [0usize; 5];
        scan(0..self.event_count())
            .filter(|&e| self.ev_file_label[e] == FileLabel::Unknown && self.benign_process(e))
            .for_each(|event| {
                let slot = category_index(self.ev_proc_category[event]);
                counts[slot] += usize::from(seen.mark(self.ev_file[event].index(), slot));
            });
        let mut rows: Vec<(String, usize)> = CATEGORY_ORDER
            .iter()
            .zip(counts)
            .map(|(&label, n)| (label.to_owned(), n))
            .collect();
        rows.push(("Total".to_owned(), counts.iter().sum()));
        rows
    }
}

/// Table X (see [`AnalysisFrame::category_behavior`]).
pub fn category_behavior(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<ProcessBehaviorRow> {
    AnalysisFrame::from_label_view(dataset, labels).category_behavior()
}

/// Table XI (see [`AnalysisFrame::browser_behavior`]).
pub fn browser_behavior(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<ProcessBehaviorRow> {
    AnalysisFrame::from_label_view(dataset, labels).browser_behavior()
}

/// Table XII (see [`AnalysisFrame::malicious_process_behavior`]).
pub fn malicious_process_behavior(
    dataset: &Dataset,
    labels: &LabelView<'_>,
) -> Vec<ProcessBehaviorRow> {
    AnalysisFrame::from_label_view(dataset, labels).malicious_process_behavior()
}

/// Table XIV (see [`AnalysisFrame::unknown_download_categories`]).
pub fn unknown_download_categories(
    dataset: &Dataset,
    labels: &LabelView<'_>,
) -> Vec<(String, usize)> {
    AnalysisFrame::from_label_view(dataset, labels).unknown_download_categories()
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, Timestamp, Url};

    /// Machines 1/2 use Chrome (process 100, benign), machine 3 uses a
    /// malicious dropper process (hash 200).
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let push = |b: &mut DatasetBuilder, file: u64, machine: u64, process: u64, pname: &str| {
            b.push(RawEvent {
                file: FileHash::from_raw(file),
                file_meta: FileMeta::default(),
                machine: MachineId::from_raw(machine),
                process: FileHash::from_raw(process),
                process_meta: FileMeta {
                    disk_name: pname.into(),
                    ..FileMeta::default()
                },
                url: "http://x.com/f".parse::<Url>().unwrap(),
                timestamp: Timestamp::from_day(1),
                executed: true,
            });
        };
        push(&mut b, 1, 1, 100, "chrome.exe"); // unknown file
        push(&mut b, 2, 1, 100, "chrome.exe"); // malicious file → machine 1 infected
        push(&mut b, 3, 2, 100, "chrome.exe"); // benign file
        push(&mut b, 4, 3, 200, "payload.exe"); // dropper process downloads banker
        push(&mut b, 5, 3, 101, "svchost.exe"); // windows process, unknown file
        b.finish()
    }

    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                2 | 4 | 200 => FileLabel::Malicious,
                3 | 100 | 101 => FileLabel::Benign,
                _ => FileLabel::Unknown,
            },
            |h| match h.raw() {
                2 => Some(MalwareType::Pup),
                4 => Some(MalwareType::Banker),
                200 => Some(MalwareType::Dropper),
                _ => None,
            },
        )
    }

    #[test]
    fn table10_rows() {
        let ds = dataset();
        let view = labels();
        let rows = category_behavior(&ds, &view);
        let browsers = rows.iter().find(|r| r.label == "Browsers").unwrap();
        assert_eq!(browsers.processes, 1);
        assert_eq!(browsers.machines, 2);
        assert_eq!(browsers.unknown_files, 1);
        assert_eq!(browsers.benign_files, 1);
        assert_eq!(browsers.malicious_files, 1);
        assert!((browsers.infected_pct - 50.0).abs() < 1e-9);
        assert_eq!(browsers.type_mix[0].0, MalwareType::Pup);

        let windows = rows
            .iter()
            .find(|r| r.label == "Windows Processes")
            .unwrap();
        assert_eq!(windows.unknown_files, 1);
        assert_eq!(windows.infected_pct, 0.0);
        // The malicious dropper process (200) appears in no benign row.
        assert!(rows.iter().all(|r| r.label != "All other processes"));
    }

    #[test]
    fn table11_rows() {
        let ds = dataset();
        let view = labels();
        let rows = browser_behavior(&ds, &view);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].label, "Chrome");
        assert_eq!(rows[0].machines, 2);
    }

    #[test]
    fn table12_rows() {
        let ds = dataset();
        let view = labels();
        let rows = malicious_process_behavior(&ds, &view);
        let dropper = rows.iter().find(|r| r.label == "dropper").unwrap();
        assert_eq!(dropper.processes, 1);
        assert_eq!(dropper.machines, 1);
        assert_eq!(dropper.malicious_files, 1);
        assert_eq!(dropper.type_mix[0].0, MalwareType::Banker);
        let overall = rows.iter().find(|r| r.label == "overall").unwrap();
        assert_eq!(overall.malicious_files, 1);
    }

    #[test]
    fn table14_rows() {
        let ds = dataset();
        let view = labels();
        let rows = unknown_download_categories(&ds, &view);
        let browsers = rows.iter().find(|(l, _)| l == "Browsers").unwrap();
        assert_eq!(browsers.1, 1);
        let total = rows.iter().find(|(l, _)| l == "Total").unwrap();
        assert_eq!(total.1, 2);
    }

    #[test]
    fn file_arriving_via_two_categories_counts_in_each() {
        let mut b = DatasetBuilder::new();
        for (process, pname) in [(100u64, "chrome.exe"), (101, "svchost.exe")] {
            b.push(RawEvent {
                file: FileHash::from_raw(1),
                file_meta: FileMeta::default(),
                machine: MachineId::from_raw(1),
                process: FileHash::from_raw(process),
                process_meta: FileMeta {
                    disk_name: pname.into(),
                    ..FileMeta::default()
                },
                url: "http://x.com/f".parse::<Url>().unwrap(),
                timestamp: Timestamp::from_day(1),
                executed: true,
            });
        }
        let ds = b.finish();
        let view = LabelView::new(
            |h| match h.raw() {
                100 | 101 => FileLabel::Benign,
                _ => FileLabel::Unknown,
            },
            |_| None,
        );
        let rows = unknown_download_categories(&ds, &view);
        let get = |name: &str| rows.iter().find(|(l, _)| l == name).unwrap().1;
        assert_eq!(get("Browsers"), 1);
        assert_eq!(get("Windows Processes"), 1);
        assert_eq!(get("Total"), 2);
    }
}
