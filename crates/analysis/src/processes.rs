//! Downloading-process behaviour analyses (§V: Tables X–XII, XIV).

use crate::labels::LabelView;
use crate::stats::percent;
use downlake_telemetry::Dataset;
use downlake_types::{BrowserKind, FileHash, FileLabel, MachineId, MalwareType, ProcessCategory};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One row of Tables X/XI/XII.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ProcessBehaviorRow {
    /// Row label (category / browser / malware type name).
    pub label: String,
    /// Distinct process versions (image hashes).
    pub processes: usize,
    /// Distinct machines on which they initiated downloads.
    pub machines: usize,
    /// Distinct downloaded files that are unknown.
    pub unknown_files: usize,
    /// Distinct downloaded files labeled benign.
    pub benign_files: usize,
    /// Distinct downloaded files labeled malicious.
    pub malicious_files: usize,
    /// % of those machines that downloaded ≥1 malicious file.
    pub infected_pct: f64,
    /// Behaviour-type mix (percent) of the malicious downloads.
    pub type_mix: Vec<(MalwareType, f64)>,
}

#[derive(Default)]
struct RowAccumulator {
    processes: HashSet<FileHash>,
    machines: HashSet<MachineId>,
    infected: HashSet<MachineId>,
    unknown: HashSet<FileHash>,
    benign: HashSet<FileHash>,
    malicious: HashSet<FileHash>,
    types: HashMap<MalwareType, HashSet<FileHash>>,
}

impl RowAccumulator {
    fn record(
        &mut self,
        process: FileHash,
        machine: MachineId,
        file: FileHash,
        label: FileLabel,
        ty: Option<MalwareType>,
    ) {
        self.processes.insert(process);
        self.machines.insert(machine);
        match label {
            FileLabel::Unknown => {
                self.unknown.insert(file);
            }
            FileLabel::Benign => {
                self.benign.insert(file);
            }
            FileLabel::Malicious => {
                self.malicious.insert(file);
                self.infected.insert(machine);
                if let Some(ty) = ty {
                    self.types.entry(ty).or_default().insert(file);
                }
            }
            _ => {}
        }
    }

    fn into_row(self, label: String) -> ProcessBehaviorRow {
        let malicious_total = self.malicious.len();
        let mut type_mix: Vec<(MalwareType, f64)> = MalwareType::ALL
            .iter()
            .filter_map(|&ty| {
                self.types
                    .get(&ty)
                    .map(|files| (ty, percent(files.len(), malicious_total)))
            })
            .collect();
        type_mix.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        ProcessBehaviorRow {
            label,
            processes: self.processes.len(),
            machines: self.machines.len(),
            unknown_files: self.unknown.len(),
            benign_files: self.benign.len(),
            malicious_files: self.malicious.len(),
            infected_pct: percent(self.infected.len(), self.machines.len()),
            type_mix,
        }
    }
}

fn aggregate_label(category: ProcessCategory) -> &'static str {
    category.aggregate_name()
}

/// Table X: download behaviour of *known benign* processes, by category.
/// Only events whose process hash is labeled benign participate, exactly
/// as the paper restricts to whitelist-matched processes.
pub fn category_behavior(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<ProcessBehaviorRow> {
    let mut acc: HashMap<&'static str, RowAccumulator> = HashMap::new();
    for event in dataset.events() {
        let Some(proc_rec) = dataset.processes().get(event.process) else {
            continue;
        };
        if labels.label(event.process) != FileLabel::Benign {
            continue;
        }
        acc.entry(aggregate_label(proc_rec.category))
            .or_default()
            .record(
                event.process,
                event.machine,
                event.file,
                labels.label(event.file),
                labels.malware_type(event.file),
            );
    }
    let order = [
        "Browsers",
        "Windows Processes",
        "Java",
        "Acrobat Reader",
        "All other processes",
    ];
    order
        .iter()
        .filter_map(|&label| acc.remove(label).map(|a| a.into_row(label.to_owned())))
        .collect()
}

/// Table XI: download behaviour per browser (benign browser processes).
pub fn browser_behavior(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<ProcessBehaviorRow> {
    let mut acc: HashMap<BrowserKind, RowAccumulator> = HashMap::new();
    for event in dataset.events() {
        let Some(proc_rec) = dataset.processes().get(event.process) else {
            continue;
        };
        let Some(kind) = proc_rec.category.browser() else {
            continue;
        };
        if labels.label(event.process) != FileLabel::Benign {
            continue;
        }
        acc.entry(kind).or_default().record(
            event.process,
            event.machine,
            event.file,
            labels.label(event.file),
            labels.malware_type(event.file),
        );
    }
    BrowserKind::ALL
        .iter()
        .filter_map(|&kind| {
            acc.remove(&kind)
                .map(|a| a.into_row(kind.name().to_owned()))
        })
        .collect()
}

/// Table XII: download behaviour of *malicious* processes, by the
/// process's own behaviour type, plus an `"overall"` row.
pub fn malicious_process_behavior(
    dataset: &Dataset,
    labels: &LabelView<'_>,
) -> Vec<ProcessBehaviorRow> {
    let mut acc: HashMap<MalwareType, RowAccumulator> = HashMap::new();
    let mut overall = RowAccumulator::default();
    for event in dataset.events() {
        if labels.label(event.process) != FileLabel::Malicious {
            continue;
        }
        let ty = labels
            .malware_type(event.process)
            .unwrap_or(MalwareType::Undefined);
        let file_label = labels.label(event.file);
        let file_type = labels.malware_type(event.file);
        acc.entry(ty).or_default().record(
            event.process,
            event.machine,
            event.file,
            file_label,
            file_type,
        );
        overall.record(event.process, event.machine, event.file, file_label, file_type);
    }
    let mut rows: Vec<ProcessBehaviorRow> = MalwareType::ALL
        .iter()
        .filter_map(|&ty| {
            acc.remove(&ty)
                .map(|a| a.into_row(ty.name().to_owned()))
        })
        .collect();
    if overall.machines.is_empty() {
        return rows;
    }
    rows.push(overall.into_row("overall".to_owned()));
    rows
}

/// Table XIV: how many distinct *unknown* files each benign process
/// category downloaded, plus the total.
pub fn unknown_download_categories(
    dataset: &Dataset,
    labels: &LabelView<'_>,
) -> Vec<(String, usize)> {
    let mut acc: HashMap<&'static str, HashSet<FileHash>> = HashMap::new();
    for event in dataset.events() {
        if labels.label(event.file) != FileLabel::Unknown {
            continue;
        }
        let Some(proc_rec) = dataset.processes().get(event.process) else {
            continue;
        };
        if labels.label(event.process) != FileLabel::Benign {
            continue;
        }
        acc.entry(aggregate_label(proc_rec.category))
            .or_default()
            .insert(event.file);
    }
    let order = [
        "Browsers",
        "Windows Processes",
        "Java",
        "Acrobat Reader",
        "All other processes",
    ];
    let mut rows: Vec<(String, usize)> = Vec::new();
    let mut total = 0usize;
    for label in order {
        let n = acc.get(label).map_or(0, HashSet::len);
        total += n;
        rows.push((label.to_owned(), n));
    }
    rows.push(("Total".to_owned(), total));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileMeta, Timestamp, Url};

    /// Machines 1/2 use Chrome (process 100, benign), machine 3 uses a
    /// malicious dropper process (hash 200).
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let push = |b: &mut DatasetBuilder, file: u64, machine: u64, process: u64, pname: &str| {
            b.push(RawEvent {
                file: FileHash::from_raw(file),
                file_meta: FileMeta::default(),
                machine: MachineId::from_raw(machine),
                process: FileHash::from_raw(process),
                process_meta: FileMeta {
                    disk_name: pname.into(),
                    ..FileMeta::default()
                },
                url: "http://x.com/f".parse::<Url>().unwrap(),
                timestamp: Timestamp::from_day(1),
                executed: true,
            });
        };
        push(&mut b, 1, 1, 100, "chrome.exe"); // unknown file
        push(&mut b, 2, 1, 100, "chrome.exe"); // malicious file → machine 1 infected
        push(&mut b, 3, 2, 100, "chrome.exe"); // benign file
        push(&mut b, 4, 3, 200, "payload.exe"); // dropper process downloads banker
        push(&mut b, 5, 3, 101, "svchost.exe"); // windows process, unknown file
        b.finish()
    }

    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                2 | 4 | 200 => FileLabel::Malicious,
                3 | 100 | 101 => FileLabel::Benign,
                _ => FileLabel::Unknown,
            },
            |h| match h.raw() {
                2 => Some(MalwareType::Pup),
                4 => Some(MalwareType::Banker),
                200 => Some(MalwareType::Dropper),
                _ => None,
            },
        )
    }

    #[test]
    fn table10_rows() {
        let ds = dataset();
        let view = labels();
        let rows = category_behavior(&ds, &view);
        let browsers = rows.iter().find(|r| r.label == "Browsers").unwrap();
        assert_eq!(browsers.processes, 1);
        assert_eq!(browsers.machines, 2);
        assert_eq!(browsers.unknown_files, 1);
        assert_eq!(browsers.benign_files, 1);
        assert_eq!(browsers.malicious_files, 1);
        assert!((browsers.infected_pct - 50.0).abs() < 1e-9);
        assert_eq!(browsers.type_mix[0].0, MalwareType::Pup);

        let windows = rows.iter().find(|r| r.label == "Windows Processes").unwrap();
        assert_eq!(windows.unknown_files, 1);
        assert_eq!(windows.infected_pct, 0.0);
        // The malicious dropper process (200) appears in no benign row.
        assert!(rows.iter().all(|r| r.label != "All other processes"));
    }

    #[test]
    fn table11_rows() {
        let ds = dataset();
        let view = labels();
        let rows = browser_behavior(&ds, &view);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].label, "Chrome");
        assert_eq!(rows[0].machines, 2);
    }

    #[test]
    fn table12_rows() {
        let ds = dataset();
        let view = labels();
        let rows = malicious_process_behavior(&ds, &view);
        let dropper = rows.iter().find(|r| r.label == "dropper").unwrap();
        assert_eq!(dropper.processes, 1);
        assert_eq!(dropper.machines, 1);
        assert_eq!(dropper.malicious_files, 1);
        assert_eq!(dropper.type_mix[0].0, MalwareType::Banker);
        let overall = rows.iter().find(|r| r.label == "overall").unwrap();
        assert_eq!(overall.malicious_files, 1);
    }

    #[test]
    fn table14_rows() {
        let ds = dataset();
        let view = labels();
        let rows = unknown_download_categories(&ds, &view);
        let browsers = rows.iter().find(|(l, _)| l == "Browsers").unwrap();
        assert_eq!(browsers.1, 1);
        let total = rows.iter().find(|(l, _)| l == "Total").unwrap();
        assert_eq!(total.1, 2);
    }
}
