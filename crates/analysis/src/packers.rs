//! Packer analyses (§IV-C's packing paragraphs).
//!
//! Packer names are interned into a dense id space at frame build time;
//! usage per class is one file-column query folding into a pair of
//! dense usage vectors, and the overlap lists come from a second query
//! over the dense packer-id space.

use crate::frame::AnalysisFrame;
use crate::labels::LabelView;
use crate::stats::percent;
use downlake_query::{scan, Dense};
use downlake_telemetry::Dataset;
use downlake_types::FileLabel;
use serde::{Deserialize, Serialize};

/// The packing-overlap report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PackerReport {
    /// % of benign files packed with a recognised packer (paper: 54%).
    pub benign_packed_pct: f64,
    /// % of malicious files packed (paper: 58%).
    pub malicious_packed_pct: f64,
    /// Distinct packers observed across both classes.
    pub total_packers: usize,
    /// Packers used by both classes (paper: 35 of 69).
    pub shared_packers: usize,
    /// Packers observed only on malicious files.
    pub malicious_only: Vec<String>,
    /// Packers observed only on benign files.
    pub benign_only: Vec<String>,
    /// Packers observed on both (sorted).
    pub shared: Vec<String>,
}

impl AnalysisFrame {
    /// Computes packing rates and the packer-overlap structure.
    pub fn packer_report(&self) -> PackerReport {
        let n = self.packers.len();
        // Per-class usage query: `(files, packed)` tallies plus a dense
        // used-flag vector over the interned packer-id space.
        let usage = |label: FileLabel| {
            let mut used: Dense<usize, bool> = Dense::new(n);
            let (files, packed) = scan(0..self.file_count())
                .filter(|&f| self.file_label[f] == label)
                .fold((0usize, 0usize), |(files, packed), f| {
                    let Some(packer) = self.file_packer[f] else {
                        return (files + 1, packed);
                    };
                    *used.get_mut(packer as usize) = true;
                    (files + 1, packed + 1)
                });
            (files, packed, used)
        };
        let (benign_files, benign_packed, benign_used) = usage(FileLabel::Benign);
        let (malicious_files, malicious_packed, malicious_used) = usage(FileLabel::Malicious);

        // Overlap query over the dense id space (id order, then sorted
        // by name — deterministic either way).
        let (mut shared, mut malicious_only, mut benign_only) = scan(0..n).fold(
            (Vec::new(), Vec::new(), Vec::new()),
            |(mut shared, mut mal_only, mut ben_only), packer| {
                let name = || self.packers[packer].clone();
                match (*benign_used.get(packer), *malicious_used.get(packer)) {
                    (true, true) => shared.push(name()),
                    (false, true) => mal_only.push(name()),
                    (true, false) => ben_only.push(name()),
                    (false, false) => {}
                }
                (shared, mal_only, ben_only)
            },
        );
        let total_packers = shared.len() + malicious_only.len() + benign_only.len();
        shared.sort();
        malicious_only.sort();
        benign_only.sort();

        PackerReport {
            benign_packed_pct: percent(benign_packed, benign_files),
            malicious_packed_pct: percent(malicious_packed, malicious_files),
            total_packers,
            shared_packers: shared.len(),
            malicious_only,
            benign_only,
            shared,
        }
    }
}

/// Packing rates and overlap (see [`AnalysisFrame::packer_report`]).
pub fn packer_report(dataset: &Dataset, labels: &LabelView<'_>) -> PackerReport {
    AnalysisFrame::from_label_view(dataset, labels).packer_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, PackerInfo, Timestamp, Url};

    fn event(file: u64, packer: Option<&str>) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta {
                packer: packer.map(PackerInfo::new),
                ..FileMeta::default()
            },
            machine: MachineId::from_raw(file),
            process: FileHash::from_raw(999),
            process_meta: FileMeta::default(),
            url: "http://x.com/f".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(1),
            executed: true,
        }
    }

    #[test]
    fn overlap_and_rates() {
        let mut b = DatasetBuilder::new();
        b.push(event(1, Some("UPX"))); // benign packed
        b.push(event(2, None)); // benign unpacked
        b.push(event(3, Some("UPX"))); // malicious packed (shared packer)
        b.push(event(4, Some("Themida"))); // malicious packed (exclusive)
        b.push(event(5, Some("WixBurn"))); // benign packed (exclusive)
        b.push(event(6, Some("NSIS"))); // unknown → ignored entirely
        let ds = b.finish();
        let view = LabelView::new(
            |h| match h.raw() {
                1 | 2 | 5 => FileLabel::Benign,
                3 | 4 => FileLabel::Malicious,
                _ => FileLabel::Unknown,
            },
            |_| None,
        );
        let report = packer_report(&ds, &view);
        assert!((report.benign_packed_pct - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(report.malicious_packed_pct, 100.0);
        assert_eq!(report.total_packers, 3);
        assert_eq!(report.shared, vec!["UPX"]);
        assert_eq!(report.malicious_only, vec!["Themida"]);
        assert_eq!(report.benign_only, vec!["WixBurn"]);
    }

    #[test]
    fn empty_dataset() {
        let ds = DatasetBuilder::new().finish();
        let view = LabelView::new(|_| FileLabel::Unknown, |_| None);
        let report = packer_report(&ds, &view);
        assert_eq!(report.total_packers, 0);
        assert_eq!(report.benign_packed_pct, 0.0);
    }
}
