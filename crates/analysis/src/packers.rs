//! Packer analyses (§IV-C's packing paragraphs).
//!
//! Packer names are interned into a dense id space at frame build time;
//! usage per class is a pair of boolean vectors, and the overlap lists
//! come from one pass over them.

use crate::frame::AnalysisFrame;
use crate::labels::LabelView;
use crate::stats::percent;
use downlake_telemetry::Dataset;
use downlake_types::FileLabel;
use serde::{Deserialize, Serialize};

/// The packing-overlap report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PackerReport {
    /// % of benign files packed with a recognised packer (paper: 54%).
    pub benign_packed_pct: f64,
    /// % of malicious files packed (paper: 58%).
    pub malicious_packed_pct: f64,
    /// Distinct packers observed across both classes.
    pub total_packers: usize,
    /// Packers used by both classes (paper: 35 of 69).
    pub shared_packers: usize,
    /// Packers observed only on malicious files.
    pub malicious_only: Vec<String>,
    /// Packers observed only on benign files.
    pub benign_only: Vec<String>,
    /// Packers observed on both (sorted).
    pub shared: Vec<String>,
}

impl AnalysisFrame {
    /// Computes packing rates and the packer-overlap structure.
    pub fn packer_report(&self) -> PackerReport {
        let n = self.packers.len();
        let mut benign_used = vec![false; n];
        let mut malicious_used = vec![false; n];
        let mut benign_files = 0usize;
        let mut benign_packed = 0usize;
        let mut malicious_files = 0usize;
        let mut malicious_packed = 0usize;

        for file in 0..self.file_count() {
            match self.file_label[file] {
                FileLabel::Benign => {
                    benign_files += 1;
                    if let Some(packer) = self.file_packer[file] {
                        benign_packed += 1;
                        benign_used[packer as usize] = true;
                    }
                }
                FileLabel::Malicious => {
                    malicious_files += 1;
                    if let Some(packer) = self.file_packer[file] {
                        malicious_packed += 1;
                        malicious_used[packer as usize] = true;
                    }
                }
                _ => {}
            }
        }

        let mut shared = Vec::new();
        let mut malicious_only = Vec::new();
        let mut benign_only = Vec::new();
        let mut total_packers = 0usize;
        for packer in 0..n {
            match (benign_used[packer], malicious_used[packer]) {
                (true, true) => shared.push(self.packers[packer].clone()),
                (false, true) => malicious_only.push(self.packers[packer].clone()),
                (true, false) => benign_only.push(self.packers[packer].clone()),
                (false, false) => continue,
            }
            total_packers += 1;
        }
        shared.sort();
        malicious_only.sort();
        benign_only.sort();

        PackerReport {
            benign_packed_pct: percent(benign_packed, benign_files),
            malicious_packed_pct: percent(malicious_packed, malicious_files),
            total_packers,
            shared_packers: shared.len(),
            malicious_only,
            benign_only,
            shared,
        }
    }
}

/// Packing rates and overlap (see [`AnalysisFrame::packer_report`]).
pub fn packer_report(dataset: &Dataset, labels: &LabelView<'_>) -> PackerReport {
    AnalysisFrame::from_label_view(dataset, labels).packer_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, PackerInfo, Timestamp, Url};

    fn event(file: u64, packer: Option<&str>) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta {
                packer: packer.map(PackerInfo::new),
                ..FileMeta::default()
            },
            machine: MachineId::from_raw(file),
            process: FileHash::from_raw(999),
            process_meta: FileMeta::default(),
            url: "http://x.com/f".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(1),
            executed: true,
        }
    }

    #[test]
    fn overlap_and_rates() {
        let mut b = DatasetBuilder::new();
        b.push(event(1, Some("UPX"))); // benign packed
        b.push(event(2, None)); // benign unpacked
        b.push(event(3, Some("UPX"))); // malicious packed (shared packer)
        b.push(event(4, Some("Themida"))); // malicious packed (exclusive)
        b.push(event(5, Some("WixBurn"))); // benign packed (exclusive)
        b.push(event(6, Some("NSIS"))); // unknown → ignored entirely
        let ds = b.finish();
        let view = LabelView::new(
            |h| match h.raw() {
                1 | 2 | 5 => FileLabel::Benign,
                3 | 4 => FileLabel::Malicious,
                _ => FileLabel::Unknown,
            },
            |_| None,
        );
        let report = packer_report(&ds, &view);
        assert!((report.benign_packed_pct - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(report.malicious_packed_pct, 100.0);
        assert_eq!(report.total_packers, 3);
        assert_eq!(report.shared, vec!["UPX"]);
        assert_eq!(report.malicious_only, vec!["Themida"]);
        assert_eq!(report.benign_only, vec!["WixBurn"]);
        assert_eq!(report, crate::legacy::packer_report(&ds, &view));
    }

    #[test]
    fn empty_dataset() {
        let ds = DatasetBuilder::new().finish();
        let view = LabelView::new(|_| FileLabel::Unknown, |_| None);
        let report = packer_report(&ds, &view);
        assert_eq!(report.total_packers, 0);
        assert_eq!(report.benign_packed_pct, 0.0);
    }
}
