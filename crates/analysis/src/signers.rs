//! Code-signer analyses (§IV-C: Tables VI–IX, Fig. 4).

use crate::labels::LabelView;
use crate::stats::percent;
use downlake_telemetry::Dataset;
use downlake_types::{FileHash, FileLabel, MalwareType};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One row of Table VI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SigningRateRow {
    /// Class name (`"dropper"`, …, `"benign"`, `"unknown"`, `"malicious"`).
    pub class: String,
    /// Distinct files of the class.
    pub files: usize,
    /// % of them carrying a valid signature.
    pub signed_pct: f64,
    /// Distinct files of the class downloaded via browsers.
    pub browser_files: usize,
    /// % of *those* carrying a valid signature.
    pub browser_signed_pct: f64,
}

/// One row of Table VII.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignerOverlapRow {
    /// Behaviour type.
    pub class: String,
    /// Distinct signers of files of this type.
    pub signers: usize,
    /// Of those, signers that also signed benign files.
    pub common_with_benign: usize,
}

/// One point of Fig. 4's scatter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignerScatterPoint {
    /// Signer subject.
    pub signer: String,
    /// Benign files signed.
    pub benign_files: u64,
    /// Malicious files signed.
    pub malicious_files: u64,
}

/// Tables VIII/IX content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TopSignersReport {
    /// Per behaviour type: `(type name, top signers, top common-with-
    /// benign, top exclusive-to-malware)`, counts are files signed.
    pub per_type: Vec<(String, Vec<(String, u64)>, Vec<(String, u64)>, Vec<(String, u64)>)>,
    /// Top signers exclusive to benign files.
    pub benign_exclusive: Vec<(String, u64)>,
    /// Top signers exclusive to malicious files (all types pooled).
    pub malicious_exclusive: Vec<(String, u64)>,
    /// Fig. 4: all signers that signed both classes.
    pub scatter: Vec<SignerScatterPoint>,
}

/// Which files were downloaded by a browser at least once.
fn browser_files(dataset: &Dataset) -> HashSet<FileHash> {
    let mut set = HashSet::new();
    for event in dataset.events() {
        if dataset
            .processes()
            .get(event.process)
            .is_some_and(|p| p.category.is_browser())
        {
            set.insert(event.file);
        }
    }
    set
}

/// Table VI: signing rates per class, overall and via browsers.
pub fn signing_rates_table(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<SigningRateRow> {
    let via_browser = browser_files(dataset);
    // (files, signed, browser files, browser signed) per class key.
    let mut acc: HashMap<String, (usize, usize, usize, usize)> = HashMap::new();
    let mut bump = |key: &str, signed: bool, browser: bool| {
        let entry = acc.entry(key.to_owned()).or_default();
        entry.0 += 1;
        if signed {
            entry.1 += 1;
        }
        if browser {
            entry.2 += 1;
            if signed {
                entry.3 += 1;
            }
        }
    };
    for record in dataset.files().iter() {
        let signed = record.meta.is_validly_signed();
        let browser = via_browser.contains(&record.hash);
        match labels.label(record.hash) {
            FileLabel::Benign => bump("benign", signed, browser),
            FileLabel::Unknown => bump("unknown", signed, browser),
            FileLabel::Malicious => {
                bump("malicious", signed, browser);
                if let Some(ty) = labels.malware_type(record.hash) {
                    bump(ty.name(), signed, browser);
                }
            }
            _ => {}
        }
    }
    let mut rows: Vec<SigningRateRow> = Vec::new();
    let order: Vec<String> = MalwareType::ALL
        .iter()
        .map(|t| t.name().to_owned())
        .chain(["benign".to_owned(), "unknown".to_owned(), "malicious".to_owned()])
        .collect();
    for class in order {
        if let Some(&(files, signed, bfiles, bsigned)) = acc.get(&class) {
            rows.push(SigningRateRow {
                class,
                files,
                signed_pct: percent(signed, files),
                browser_files: bfiles,
                browser_signed_pct: percent(bsigned, bfiles),
            });
        }
    }
    rows
}

/// Signer → (benign files, malicious files, per-type files) index.
struct SignerIndex {
    benign: HashMap<String, u64>,
    malicious: HashMap<String, u64>,
    per_type: HashMap<MalwareType, HashMap<String, u64>>,
}

fn signer_index(dataset: &Dataset, labels: &LabelView<'_>) -> SignerIndex {
    let mut index = SignerIndex {
        benign: HashMap::new(),
        malicious: HashMap::new(),
        per_type: HashMap::new(),
    };
    for record in dataset.files().iter() {
        let Some(subject) = record.meta.valid_signer_subject() else {
            continue;
        };
        match labels.label(record.hash) {
            FileLabel::Benign => {
                *index.benign.entry(subject.to_owned()).or_insert(0) += 1;
            }
            FileLabel::Malicious => {
                *index.malicious.entry(subject.to_owned()).or_insert(0) += 1;
                if let Some(ty) = labels.malware_type(record.hash) {
                    *index
                        .per_type
                        .entry(ty)
                        .or_default()
                        .entry(subject.to_owned())
                        .or_insert(0) += 1;
                }
            }
            _ => {}
        }
    }
    index
}

/// Table VII: signers per malicious type and the overlap with benign.
pub fn signer_overlap(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<SignerOverlapRow> {
    let index = signer_index(dataset, labels);
    let benign: HashSet<&String> = index.benign.keys().collect();
    let mut rows = Vec::new();
    for ty in MalwareType::ALL {
        let Some(signers) = index.per_type.get(&ty) else {
            continue;
        };
        let common = signers.keys().filter(|s| benign.contains(s)).count();
        rows.push(SignerOverlapRow {
            class: ty.name().to_owned(),
            signers: signers.len(),
            common_with_benign: common,
        });
    }
    let common_total = index
        .malicious
        .keys()
        .filter(|s| benign.contains(s))
        .count();
    rows.push(SignerOverlapRow {
        class: "total".to_owned(),
        signers: index.malicious.len(),
        common_with_benign: common_total,
    });
    rows
}

/// Tables VIII/IX and Fig. 4.
pub fn top_signers(dataset: &Dataset, labels: &LabelView<'_>, k: usize) -> TopSignersReport {
    let index = signer_index(dataset, labels);
    let benign_set: HashSet<&String> = index.benign.keys().collect();
    let malicious_set: HashSet<&String> = index.malicious.keys().collect();

    let top = |m: &HashMap<String, u64>, filter: &dyn Fn(&String) -> bool| -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = m
            .iter()
            .filter(|(s, _)| filter(s))
            .map(|(s, &c)| (s.clone(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    };

    let mut per_type = Vec::new();
    for ty in MalwareType::ALL {
        let Some(signers) = index.per_type.get(&ty) else {
            continue;
        };
        per_type.push((
            ty.name().to_owned(),
            top(signers, &|_| true),
            top(signers, &|s| benign_set.contains(s)),
            top(signers, &|s| !benign_set.contains(s)),
        ));
    }

    let scatter: Vec<SignerScatterPoint> = {
        let mut pts: Vec<SignerScatterPoint> = index
            .malicious
            .iter()
            .filter_map(|(s, &mal)| {
                index.benign.get(s).map(|&ben| SignerScatterPoint {
                    signer: s.clone(),
                    benign_files: ben,
                    malicious_files: mal,
                })
            })
            .collect();
        pts.sort_by(|a, b| {
            (b.benign_files + b.malicious_files)
                .cmp(&(a.benign_files + a.malicious_files))
                .then_with(|| a.signer.cmp(&b.signer))
        });
        pts
    };

    TopSignersReport {
        per_type,
        benign_exclusive: top(&index.benign, &|s| !malicious_set.contains(s)),
        malicious_exclusive: top(&index.malicious, &|s| !benign_set.contains(s)),
        scatter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileMeta, MachineId, SignerInfo, Timestamp, Url};

    fn event(file: u64, signer: Option<&str>, process_name: &str) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta {
                disk_name: "f.exe".into(),
                signer: signer.map(|s| SignerInfo::valid(s, "ca")),
                ..FileMeta::default()
            },
            machine: MachineId::from_raw(file),
            process: FileHash::from_raw(1000 + process_name.len() as u64),
            process_meta: FileMeta {
                disk_name: process_name.into(),
                ..FileMeta::default()
            },
            url: "http://x.com/f".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(1),
            executed: true,
        }
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.push(event(1, Some("Somoto Ltd."), "chrome.exe")); // malicious dropper, browser
        b.push(event(2, Some("Binstall"), "svchost.exe")); // malicious pup
        b.push(event(3, Some("Binstall"), "chrome.exe")); // benign
        b.push(event(4, Some("TeamViewer"), "chrome.exe")); // benign
        b.push(event(5, None, "svchost.exe")); // malicious banker, unsigned
        b.push(event(6, None, "chrome.exe")); // unknown unsigned
        b.finish()
    }

    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                1 | 2 | 5 => FileLabel::Malicious,
                3 | 4 => FileLabel::Benign,
                _ => FileLabel::Unknown,
            },
            |h| match h.raw() {
                1 => Some(MalwareType::Dropper),
                2 => Some(MalwareType::Pup),
                5 => Some(MalwareType::Banker),
                _ => None,
            },
        )
    }

    #[test]
    fn signing_rates_per_class() {
        let ds = dataset();
        let view = labels();
        let rows = signing_rates_table(&ds, &view);
        let get = |name: &str| rows.iter().find(|r| r.class == name).unwrap().clone();
        assert_eq!(get("dropper").files, 1);
        assert_eq!(get("dropper").signed_pct, 100.0);
        assert_eq!(get("banker").signed_pct, 0.0);
        assert_eq!(get("benign").files, 2);
        assert_eq!(get("benign").signed_pct, 100.0);
        let mal = get("malicious");
        assert_eq!(mal.files, 3);
        assert!((mal.signed_pct - 200.0 / 3.0).abs() < 1e-9);
        // Browser subset: dropper file 1 was downloaded via Chrome.
        assert_eq!(get("dropper").browser_files, 1);
        assert_eq!(get("dropper").browser_signed_pct, 100.0);
    }

    #[test]
    fn overlap_table() {
        let ds = dataset();
        let view = labels();
        let rows = signer_overlap(&ds, &view);
        let pup = rows.iter().find(|r| r.class == "pup").unwrap();
        assert_eq!(pup.signers, 1);
        assert_eq!(pup.common_with_benign, 1, "Binstall signs both");
        let dropper = rows.iter().find(|r| r.class == "dropper").unwrap();
        assert_eq!(dropper.common_with_benign, 0);
        let total = rows.iter().find(|r| r.class == "total").unwrap();
        assert_eq!(total.signers, 2);
        assert_eq!(total.common_with_benign, 1);
    }

    #[test]
    fn top_signers_and_scatter() {
        let ds = dataset();
        let view = labels();
        let report = top_signers(&ds, &view, 3);
        assert_eq!(report.benign_exclusive, vec![("TeamViewer".to_owned(), 1)]);
        assert_eq!(
            report.malicious_exclusive,
            vec![("Somoto Ltd.".to_owned(), 1)]
        );
        assert_eq!(report.scatter.len(), 1);
        assert_eq!(report.scatter[0].signer, "Binstall");
        assert_eq!(report.scatter[0].benign_files, 1);
        assert_eq!(report.scatter[0].malicious_files, 1);
        // Per-type tables include dropper with Somoto at the top.
        let dropper_row = report
            .per_type
            .iter()
            .find(|(name, ..)| name == "dropper")
            .unwrap();
        assert_eq!(dropper_row.1[0].0, "Somoto Ltd.");
    }
}
