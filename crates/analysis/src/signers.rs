//! Code-signer analyses (§IV-C: Tables VI–IX, Fig. 4).
//!
//! Signer subjects are interned into a dense id space at
//! [`AnalysisFrame`] build time, so every pass here counts into plain
//! `Vec`s indexed by signer id — no string-keyed maps, no per-file
//! subject clones.

use crate::frame::{type_index, AnalysisFrame, TYPE_COUNT};
use crate::labels::LabelView;
use crate::stats::percent;
use downlake_telemetry::Dataset;
use downlake_types::{FileLabel, MalwareType};
use serde::{Deserialize, Serialize};

/// One row of Table VI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SigningRateRow {
    /// Class name (`"dropper"`, …, `"benign"`, `"unknown"`, `"malicious"`).
    pub class: String,
    /// Distinct files of the class.
    pub files: usize,
    /// % of them carrying a valid signature.
    pub signed_pct: f64,
    /// Distinct files of the class downloaded via browsers.
    pub browser_files: usize,
    /// % of *those* carrying a valid signature.
    pub browser_signed_pct: f64,
}

/// One row of Table VII.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignerOverlapRow {
    /// Behaviour type.
    pub class: String,
    /// Distinct signers of files of this type.
    pub signers: usize,
    /// Of those, signers that also signed benign files.
    pub common_with_benign: usize,
}

/// One point of Fig. 4's scatter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignerScatterPoint {
    /// Signer subject.
    pub signer: String,
    /// Benign files signed.
    pub benign_files: u64,
    /// Malicious files signed.
    pub malicious_files: u64,
}

/// A ranked list of `(signer subject, files signed)` pairs.
pub type SignerCounts = Vec<(String, u64)>;

/// Tables VIII/IX content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TopSignersReport {
    /// Per behaviour type: `(type name, top signers, top common-with-
    /// benign, top exclusive-to-malware)`, counts are files signed.
    pub per_type: Vec<(String, SignerCounts, SignerCounts, SignerCounts)>,
    /// Top signers exclusive to benign files.
    pub benign_exclusive: Vec<(String, u64)>,
    /// Top signers exclusive to malicious files (all types pooled).
    pub malicious_exclusive: Vec<(String, u64)>,
    /// Fig. 4: all signers that signed both classes.
    pub scatter: Vec<SignerScatterPoint>,
}

/// Per-signer file counts in dense signer-id space.
struct DenseSignerIndex {
    benign: Vec<u64>,
    malicious: Vec<u64>,
    per_type: [Option<Vec<u64>>; TYPE_COUNT],
}

fn dense_signer_index(frame: &AnalysisFrame) -> DenseSignerIndex {
    let n = frame.signers.len();
    let mut index = DenseSignerIndex {
        benign: vec![0; n],
        malicious: vec![0; n],
        per_type: std::array::from_fn(|_| None),
    };
    for file in 0..frame.file_count() {
        let Some(signer) = frame.file_signer[file] else {
            continue;
        };
        let signer = signer as usize;
        match frame.file_label[file] {
            FileLabel::Benign => index.benign[signer] += 1,
            FileLabel::Malicious => {
                index.malicious[signer] += 1;
                if let Some(ty) = frame.file_type[file] {
                    index.per_type[type_index(ty)].get_or_insert_with(|| vec![0; n])[signer] += 1;
                }
            }
            _ => {}
        }
    }
    index
}

/// Top-`k` signers by file count (count descending, subject ascending —
/// a total order, so ties resolve identically to the legacy map path).
fn top_signers_by_count(
    names: &[String],
    counts: &[u64],
    k: usize,
    filter: impl Fn(usize) -> bool,
) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(s, &c)| c > 0 && filter(s))
        .map(|(s, &c)| (names[s].clone(), c))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

impl AnalysisFrame {
    /// Table VI: signing rates per class, overall and via browsers.
    pub fn signing_rates_table(&self) -> Vec<SigningRateRow> {
        // Class slots: the 11 behaviour types, then benign/unknown/malicious.
        const BENIGN: usize = TYPE_COUNT;
        const UNKNOWN: usize = TYPE_COUNT + 1;
        const MALICIOUS: usize = TYPE_COUNT + 2;
        let mut acc = [(0usize, 0usize, 0usize, 0usize); TYPE_COUNT + 3];
        let mut bump = |slot: usize, signed: bool, browser: bool| {
            let entry = &mut acc[slot];
            entry.0 += 1;
            if signed {
                entry.1 += 1;
            }
            if browser {
                entry.2 += 1;
                if signed {
                    entry.3 += 1;
                }
            }
        };
        for file in 0..self.file_count() {
            let signed = self.file_signer[file].is_some();
            let browser = self.file_browser[file];
            match self.file_label[file] {
                FileLabel::Benign => bump(BENIGN, signed, browser),
                FileLabel::Unknown => bump(UNKNOWN, signed, browser),
                FileLabel::Malicious => {
                    bump(MALICIOUS, signed, browser);
                    if let Some(ty) = self.file_type[file] {
                        bump(type_index(ty), signed, browser);
                    }
                }
                _ => {}
            }
        }
        let order = MalwareType::ALL
            .iter()
            .map(|t| (type_index(*t), t.name()))
            .chain([
                (BENIGN, "benign"),
                (UNKNOWN, "unknown"),
                (MALICIOUS, "malicious"),
            ]);
        let mut rows = Vec::new();
        for (slot, class) in order {
            let (files, signed, bfiles, bsigned) = acc[slot];
            if files == 0 {
                continue;
            }
            rows.push(SigningRateRow {
                class: class.to_owned(),
                files,
                signed_pct: percent(signed, files),
                browser_files: bfiles,
                browser_signed_pct: percent(bsigned, bfiles),
            });
        }
        rows
    }

    /// Table VII: signers per malicious type and the overlap with benign.
    pub fn signer_overlap(&self) -> Vec<SignerOverlapRow> {
        let index = dense_signer_index(self);
        let mut rows = Vec::new();
        for ty in MalwareType::ALL {
            let Some(counts) = &index.per_type[type_index(ty)] else {
                continue;
            };
            let mut signers = 0usize;
            let mut common = 0usize;
            for (s, &c) in counts.iter().enumerate() {
                if c > 0 {
                    signers += 1;
                    if index.benign[s] > 0 {
                        common += 1;
                    }
                }
            }
            rows.push(SignerOverlapRow {
                class: ty.name().to_owned(),
                signers,
                common_with_benign: common,
            });
        }
        let mut total = 0usize;
        let mut common_total = 0usize;
        for (s, &c) in index.malicious.iter().enumerate() {
            if c > 0 {
                total += 1;
                if index.benign[s] > 0 {
                    common_total += 1;
                }
            }
        }
        rows.push(SignerOverlapRow {
            class: "total".to_owned(),
            signers: total,
            common_with_benign: common_total,
        });
        rows
    }

    /// Tables VIII/IX and Fig. 4.
    pub fn top_signers(&self, k: usize) -> TopSignersReport {
        let index = dense_signer_index(self);

        let mut per_type = Vec::new();
        for ty in MalwareType::ALL {
            let Some(counts) = &index.per_type[type_index(ty)] else {
                continue;
            };
            per_type.push((
                ty.name().to_owned(),
                top_signers_by_count(&self.signers, counts, k, |_| true),
                top_signers_by_count(&self.signers, counts, k, |s| index.benign[s] > 0),
                top_signers_by_count(&self.signers, counts, k, |s| index.benign[s] == 0),
            ));
        }

        let mut scatter: Vec<SignerScatterPoint> = index
            .malicious
            .iter()
            .enumerate()
            .filter(|&(s, &mal)| mal > 0 && index.benign[s] > 0)
            .map(|(s, &mal)| SignerScatterPoint {
                signer: self.signers[s].clone(),
                benign_files: index.benign[s],
                malicious_files: mal,
            })
            .collect();
        scatter.sort_by(|a, b| {
            (b.benign_files + b.malicious_files)
                .cmp(&(a.benign_files + a.malicious_files))
                .then_with(|| a.signer.cmp(&b.signer))
        });

        TopSignersReport {
            benign_exclusive: top_signers_by_count(&self.signers, &index.benign, k, |s| {
                index.malicious[s] == 0
            }),
            malicious_exclusive: top_signers_by_count(&self.signers, &index.malicious, k, |s| {
                index.benign[s] == 0
            }),
            per_type,
            scatter,
        }
    }
}

/// Table VI (see [`AnalysisFrame::signing_rates_table`]).
pub fn signing_rates_table(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<SigningRateRow> {
    AnalysisFrame::from_label_view(dataset, labels).signing_rates_table()
}

/// Table VII (see [`AnalysisFrame::signer_overlap`]).
pub fn signer_overlap(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<SignerOverlapRow> {
    AnalysisFrame::from_label_view(dataset, labels).signer_overlap()
}

/// Tables VIII/IX and Fig. 4 (see [`AnalysisFrame::top_signers`]).
pub fn top_signers(dataset: &Dataset, labels: &LabelView<'_>, k: usize) -> TopSignersReport {
    AnalysisFrame::from_label_view(dataset, labels).top_signers(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, SignerInfo, Timestamp, Url};

    fn event(file: u64, signer: Option<&str>, process_name: &str) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta {
                disk_name: "f.exe".into(),
                signer: signer.map(|s| SignerInfo::valid(s, "ca")),
                ..FileMeta::default()
            },
            machine: MachineId::from_raw(file),
            process: FileHash::from_raw(1000 + process_name.len() as u64),
            process_meta: FileMeta {
                disk_name: process_name.into(),
                ..FileMeta::default()
            },
            url: "http://x.com/f".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(1),
            executed: true,
        }
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.push(event(1, Some("Somoto Ltd."), "chrome.exe")); // malicious dropper, browser
        b.push(event(2, Some("Binstall"), "svchost.exe")); // malicious pup
        b.push(event(3, Some("Binstall"), "chrome.exe")); // benign
        b.push(event(4, Some("TeamViewer"), "chrome.exe")); // benign
        b.push(event(5, None, "svchost.exe")); // malicious banker, unsigned
        b.push(event(6, None, "chrome.exe")); // unknown unsigned
        b.finish()
    }

    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                1 | 2 | 5 => FileLabel::Malicious,
                3 | 4 => FileLabel::Benign,
                _ => FileLabel::Unknown,
            },
            |h| match h.raw() {
                1 => Some(MalwareType::Dropper),
                2 => Some(MalwareType::Pup),
                5 => Some(MalwareType::Banker),
                _ => None,
            },
        )
    }

    #[test]
    fn signing_rates_per_class() {
        let ds = dataset();
        let view = labels();
        let rows = signing_rates_table(&ds, &view);
        let get = |name: &str| rows.iter().find(|r| r.class == name).unwrap().clone();
        assert_eq!(get("dropper").files, 1);
        assert_eq!(get("dropper").signed_pct, 100.0);
        assert_eq!(get("banker").signed_pct, 0.0);
        assert_eq!(get("benign").files, 2);
        assert_eq!(get("benign").signed_pct, 100.0);
        let mal = get("malicious");
        assert_eq!(mal.files, 3);
        assert!((mal.signed_pct - 200.0 / 3.0).abs() < 1e-9);
        // Browser subset: dropper file 1 was downloaded via Chrome.
        assert_eq!(get("dropper").browser_files, 1);
        assert_eq!(get("dropper").browser_signed_pct, 100.0);
    }

    #[test]
    fn overlap_table() {
        let ds = dataset();
        let view = labels();
        let rows = signer_overlap(&ds, &view);
        let pup = rows.iter().find(|r| r.class == "pup").unwrap();
        assert_eq!(pup.signers, 1);
        assert_eq!(pup.common_with_benign, 1, "Binstall signs both");
        let dropper = rows.iter().find(|r| r.class == "dropper").unwrap();
        assert_eq!(dropper.common_with_benign, 0);
        let total = rows.iter().find(|r| r.class == "total").unwrap();
        assert_eq!(total.signers, 2);
        assert_eq!(total.common_with_benign, 1);
    }

    #[test]
    fn top_signers_and_scatter() {
        let ds = dataset();
        let view = labels();
        let report = top_signers(&ds, &view, 3);
        assert_eq!(report.benign_exclusive, vec![("TeamViewer".to_owned(), 1)]);
        assert_eq!(
            report.malicious_exclusive,
            vec![("Somoto Ltd.".to_owned(), 1)]
        );
        assert_eq!(report.scatter.len(), 1);
        assert_eq!(report.scatter[0].signer, "Binstall");
        assert_eq!(report.scatter[0].benign_files, 1);
        assert_eq!(report.scatter[0].malicious_files, 1);
        // Per-type tables include dropper with Somoto at the top.
        let dropper_row = report
            .per_type
            .iter()
            .find(|(name, ..)| name == "dropper")
            .unwrap();
        assert_eq!(dropper_row.1[0].0, "Somoto Ltd.");
    }

    #[test]
    fn frame_and_legacy_paths_agree() {
        let ds = dataset();
        let view = labels();
        assert_eq!(
            signing_rates_table(&ds, &view),
            crate::legacy::signing_rates_table(&ds, &view)
        );
        assert_eq!(
            signer_overlap(&ds, &view),
            crate::legacy::signer_overlap(&ds, &view)
        );
        assert_eq!(
            top_signers(&ds, &view, 3),
            crate::legacy::top_signers(&ds, &view, 3)
        );
    }
}
