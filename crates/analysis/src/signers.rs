//! Code-signer analyses (§IV-C: Tables VI–IX, Fig. 4).
//!
//! Signer subjects are interned into a dense id space at
//! [`AnalysisFrame`] build time, so every pass here is a file-column
//! query aggregating into [`Dense`](downlake_query::Dense) signer
//! counters — no string-keyed maps, no per-file subject clones. Rankings
//! share the query layer's [`top_k_by`](downlake_query::top_k_by) total
//! order (count descending, subject ascending).

use crate::frame::{type_index, AnalysisFrame, TYPE_COUNT};
use crate::labels::LabelView;
use crate::stats::percent;
use downlake_query::{scan, top_k_by, Dense};
use downlake_telemetry::Dataset;
use downlake_types::{FileLabel, MalwareType};
use serde::{Deserialize, Serialize};

/// One row of Table VI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SigningRateRow {
    /// Class name (`"dropper"`, …, `"benign"`, `"unknown"`, `"malicious"`).
    pub class: String,
    /// Distinct files of the class.
    pub files: usize,
    /// % of them carrying a valid signature.
    pub signed_pct: f64,
    /// Distinct files of the class downloaded via browsers.
    pub browser_files: usize,
    /// % of *those* carrying a valid signature.
    pub browser_signed_pct: f64,
}

/// One row of Table VII.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignerOverlapRow {
    /// Behaviour type.
    pub class: String,
    /// Distinct signers of files of this type.
    pub signers: usize,
    /// Of those, signers that also signed benign files.
    pub common_with_benign: usize,
}

/// One point of Fig. 4's scatter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignerScatterPoint {
    /// Signer subject.
    pub signer: String,
    /// Benign files signed.
    pub benign_files: u64,
    /// Malicious files signed.
    pub malicious_files: u64,
}

/// A ranked list of `(signer subject, files signed)` pairs.
pub type SignerCounts = Vec<(String, u64)>;

/// Tables VIII/IX content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TopSignersReport {
    /// Per behaviour type: `(type name, top signers, top common-with-
    /// benign, top exclusive-to-malware)`, counts are files signed.
    pub per_type: Vec<(String, SignerCounts, SignerCounts, SignerCounts)>,
    /// Top signers exclusive to benign files.
    pub benign_exclusive: Vec<(String, u64)>,
    /// Top signers exclusive to malicious files (all types pooled).
    pub malicious_exclusive: Vec<(String, u64)>,
    /// Fig. 4: all signers that signed both classes.
    pub scatter: Vec<SignerScatterPoint>,
}

/// Per-signer file counts in dense signer-id space.
struct DenseSignerIndex {
    benign: Dense<usize, u64>,
    malicious: Dense<usize, u64>,
    per_type: [Option<Dense<usize, u64>>; TYPE_COUNT],
}

/// One file-column query routing each signed file's count into its
/// class counter (per-type counters materialise lazily, so a type is
/// present iff some signed malicious file carries it).
fn dense_signer_index(frame: &AnalysisFrame) -> DenseSignerIndex {
    let n = frame.signers.len();
    let mut index = DenseSignerIndex {
        benign: Dense::new(n),
        malicious: Dense::new(n),
        per_type: std::array::from_fn(|_| None),
    };
    scan(0..frame.file_count())
        .filter_map(|f| frame.file_signer[f].map(|s| (f, s as usize)))
        .for_each(|(f, s)| match frame.file_label[f] {
            FileLabel::Benign => index.benign.add(s, 1),
            FileLabel::Malicious => {
                index.malicious.add(s, 1);
                if let Some(ty) = frame.file_type[f] {
                    index.per_type[type_index(ty)]
                        .get_or_insert_with(|| Dense::new(n))
                        .add(s, 1);
                }
            }
            _ => {}
        });
    index
}

/// Top-`k` signers by file count (count descending, subject ascending —
/// the query layer's total order, so ties resolve identically on every
/// run).
fn top_signers_by_count(
    names: &[String],
    counts: &Dense<usize, u64>,
    k: usize,
    filter: impl Fn(usize) -> bool,
) -> Vec<(String, u64)> {
    top_k_by(counts.as_slice(), k, |s| names[s].as_str(), filter)
        .into_iter()
        .map(|(s, c)| (names[s].clone(), c))
        .collect()
}

impl AnalysisFrame {
    /// Table VI: signing rates per class, overall and via browsers.
    pub fn signing_rates_table(&self) -> Vec<SigningRateRow> {
        // Class slots: the 11 behaviour types, then benign/unknown/malicious.
        const BENIGN: usize = TYPE_COUNT;
        const UNKNOWN: usize = TYPE_COUNT + 1;
        const MALICIOUS: usize = TYPE_COUNT + 2;
        // `(files, signed, browser files, browser signed)` per slot; a
        // malicious file folds into both its type slot and the pooled one.
        let acc = scan(0..self.file_count()).fold(
            [(0usize, 0usize, 0usize, 0usize); TYPE_COUNT + 3],
            |mut acc, file| {
                let signed = self.file_signer[file].is_some();
                let browser = self.file_browser[file];
                let mut bump = |slot: usize| {
                    let entry = &mut acc[slot];
                    entry.0 += 1;
                    entry.1 += usize::from(signed);
                    entry.2 += usize::from(browser);
                    entry.3 += usize::from(browser && signed);
                };
                match self.file_label[file] {
                    FileLabel::Benign => bump(BENIGN),
                    FileLabel::Unknown => bump(UNKNOWN),
                    FileLabel::Malicious => {
                        bump(MALICIOUS);
                        if let Some(ty) = self.file_type[file] {
                            bump(type_index(ty));
                        }
                    }
                    _ => {}
                }
                acc
            },
        );
        let order = MalwareType::ALL
            .iter()
            .map(|t| (type_index(*t), t.name()))
            .chain([
                (BENIGN, "benign"),
                (UNKNOWN, "unknown"),
                (MALICIOUS, "malicious"),
            ]);
        order
            .filter_map(|(slot, class)| {
                let (files, signed, bfiles, bsigned) = acc[slot];
                (files > 0).then(|| SigningRateRow {
                    class: class.to_owned(),
                    files,
                    signed_pct: percent(signed, files),
                    browser_files: bfiles,
                    browser_signed_pct: percent(bsigned, bfiles),
                })
            })
            .collect()
    }

    /// Table VII: signers per malicious type and the overlap with benign.
    pub fn signer_overlap(&self) -> Vec<SignerOverlapRow> {
        let index = dense_signer_index(self);
        let overlap = |counts: &Dense<usize, u64>| {
            scan(counts.iter()).filter(|&(_, &c)| c > 0).fold(
                (0usize, 0usize),
                |(signers, common), (s, _)| {
                    (signers + 1, common + usize::from(*index.benign.get(s) > 0))
                },
            )
        };
        let mut rows: Vec<SignerOverlapRow> = MalwareType::ALL
            .into_iter()
            .filter_map(|ty| {
                let counts = index.per_type[type_index(ty)].as_ref()?;
                let (signers, common_with_benign) = overlap(counts);
                Some(SignerOverlapRow {
                    class: ty.name().to_owned(),
                    signers,
                    common_with_benign,
                })
            })
            .collect();
        let (signers, common_with_benign) = overlap(&index.malicious);
        rows.push(SignerOverlapRow {
            class: "total".to_owned(),
            signers,
            common_with_benign,
        });
        rows
    }

    /// Tables VIII/IX and Fig. 4.
    pub fn top_signers(&self, k: usize) -> TopSignersReport {
        let index = dense_signer_index(self);

        let per_type = MalwareType::ALL
            .into_iter()
            .filter_map(|ty| {
                let counts = index.per_type[type_index(ty)].as_ref()?;
                Some((
                    ty.name().to_owned(),
                    top_signers_by_count(&self.signers, counts, k, |_| true),
                    top_signers_by_count(&self.signers, counts, k, |s| *index.benign.get(s) > 0),
                    top_signers_by_count(&self.signers, counts, k, |s| *index.benign.get(s) == 0),
                ))
            })
            .collect();

        let mut scatter: Vec<SignerScatterPoint> = scan(index.malicious.iter())
            .filter(|&(s, &mal)| mal > 0 && *index.benign.get(s) > 0)
            .map(|(s, &mal)| SignerScatterPoint {
                signer: self.signers[s].clone(),
                benign_files: *index.benign.get(s),
                malicious_files: mal,
            })
            .collect();
        scatter.sort_by(|a, b| {
            (b.benign_files + b.malicious_files)
                .cmp(&(a.benign_files + a.malicious_files))
                .then_with(|| a.signer.cmp(&b.signer))
        });

        TopSignersReport {
            benign_exclusive: top_signers_by_count(&self.signers, &index.benign, k, |s| {
                *index.malicious.get(s) == 0
            }),
            malicious_exclusive: top_signers_by_count(&self.signers, &index.malicious, k, |s| {
                *index.benign.get(s) == 0
            }),
            per_type,
            scatter,
        }
    }
}

/// Table VI (see [`AnalysisFrame::signing_rates_table`]).
pub fn signing_rates_table(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<SigningRateRow> {
    AnalysisFrame::from_label_view(dataset, labels).signing_rates_table()
}

/// Table VII (see [`AnalysisFrame::signer_overlap`]).
pub fn signer_overlap(dataset: &Dataset, labels: &LabelView<'_>) -> Vec<SignerOverlapRow> {
    AnalysisFrame::from_label_view(dataset, labels).signer_overlap()
}

/// Tables VIII/IX and Fig. 4 (see [`AnalysisFrame::top_signers`]).
pub fn top_signers(dataset: &Dataset, labels: &LabelView<'_>, k: usize) -> TopSignersReport {
    AnalysisFrame::from_label_view(dataset, labels).top_signers(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, SignerInfo, Timestamp, Url};

    fn event(file: u64, signer: Option<&str>, process_name: &str) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta {
                disk_name: "f.exe".into(),
                signer: signer.map(|s| SignerInfo::valid(s, "ca")),
                ..FileMeta::default()
            },
            machine: MachineId::from_raw(file),
            process: FileHash::from_raw(1000 + process_name.len() as u64),
            process_meta: FileMeta {
                disk_name: process_name.into(),
                ..FileMeta::default()
            },
            url: "http://x.com/f".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(1),
            executed: true,
        }
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.push(event(1, Some("Somoto Ltd."), "chrome.exe")); // malicious dropper, browser
        b.push(event(2, Some("Binstall"), "svchost.exe")); // malicious pup
        b.push(event(3, Some("Binstall"), "chrome.exe")); // benign
        b.push(event(4, Some("TeamViewer"), "chrome.exe")); // benign
        b.push(event(5, None, "svchost.exe")); // malicious banker, unsigned
        b.push(event(6, None, "chrome.exe")); // unknown unsigned
        b.finish()
    }

    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                1 | 2 | 5 => FileLabel::Malicious,
                3 | 4 => FileLabel::Benign,
                _ => FileLabel::Unknown,
            },
            |h| match h.raw() {
                1 => Some(MalwareType::Dropper),
                2 => Some(MalwareType::Pup),
                5 => Some(MalwareType::Banker),
                _ => None,
            },
        )
    }

    #[test]
    fn signing_rates_per_class() {
        let ds = dataset();
        let view = labels();
        let rows = signing_rates_table(&ds, &view);
        let get = |name: &str| rows.iter().find(|r| r.class == name).unwrap().clone();
        assert_eq!(get("dropper").files, 1);
        assert_eq!(get("dropper").signed_pct, 100.0);
        assert_eq!(get("banker").signed_pct, 0.0);
        assert_eq!(get("benign").files, 2);
        assert_eq!(get("benign").signed_pct, 100.0);
        let mal = get("malicious");
        assert_eq!(mal.files, 3);
        assert!((mal.signed_pct - 200.0 / 3.0).abs() < 1e-9);
        // Browser subset: dropper file 1 was downloaded via Chrome.
        assert_eq!(get("dropper").browser_files, 1);
        assert_eq!(get("dropper").browser_signed_pct, 100.0);
    }

    #[test]
    fn overlap_table() {
        let ds = dataset();
        let view = labels();
        let rows = signer_overlap(&ds, &view);
        let pup = rows.iter().find(|r| r.class == "pup").unwrap();
        assert_eq!(pup.signers, 1);
        assert_eq!(pup.common_with_benign, 1, "Binstall signs both");
        let dropper = rows.iter().find(|r| r.class == "dropper").unwrap();
        assert_eq!(dropper.common_with_benign, 0);
        let total = rows.iter().find(|r| r.class == "total").unwrap();
        assert_eq!(total.signers, 2);
        assert_eq!(total.common_with_benign, 1);
    }

    #[test]
    fn top_signers_and_scatter() {
        let ds = dataset();
        let view = labels();
        let report = top_signers(&ds, &view, 3);
        assert_eq!(report.benign_exclusive, vec![("TeamViewer".to_owned(), 1)]);
        assert_eq!(
            report.malicious_exclusive,
            vec![("Somoto Ltd.".to_owned(), 1)]
        );
        assert_eq!(report.scatter.len(), 1);
        assert_eq!(report.scatter[0].signer, "Binstall");
        assert_eq!(report.scatter[0].benign_files, 1);
        assert_eq!(report.scatter[0].malicious_files, 1);
        // Per-type tables include dropper with Somoto at the top.
        let dropper_row = report
            .per_type
            .iter()
            .find(|(name, ..)| name == "dropper")
            .unwrap();
        assert_eq!(dropper_row.1[0].0, "Somoto Ltd.");
    }
}
