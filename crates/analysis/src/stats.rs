//! Small statistics toolkit: ECDFs, top-k tables, share helpers.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// An empirical cumulative distribution function over `f64` samples.
///
/// ```
/// use downlake_analysis::stats::Ecdf;
/// let cdf = Ecdf::from_samples(vec![1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.75);
/// assert_eq!(cdf.eval(100.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF (NaNs are dropped).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`; 0 for an empty ECDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// `(x, P(X ≤ x))` points suitable for plotting, thinned to at most
    /// `max_points` evenly spaced sample positions.
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n / max_points).max(1);
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(x, _)| x) != Some(self.sorted[n - 1]) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

/// Counts occurrences of keys and extracts the heaviest `k`.
///
/// ```
/// use downlake_analysis::stats::Counter;
/// let mut c = Counter::new();
/// c.add("a");
/// c.add("b");
/// c.add("a");
/// assert_eq!(c.top(1), vec![("a", 2)]);
/// ```
#[derive(Debug, Clone)]
pub struct Counter<K> {
    counts: HashMap<K, u64>,
}

impl<K: Eq + Hash + Clone + Ord> Counter<K> {
    /// An empty counter.
    pub fn new() -> Self {
        Self {
            counts: HashMap::new(),
        }
    }

    /// Increments a key by one.
    pub fn add(&mut self, key: K) {
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Increments a key by `n`.
    pub fn add_n(&mut self, key: K, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
    }

    /// The count of one key.
    pub fn count(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The `k` heaviest keys, by descending count then ascending key
    /// (deterministic).
    pub fn top(&self, k: usize) -> Vec<(K, u64)> {
        let mut entries: Vec<(K, u64)> = self
            .counts
            .iter()
            .map(|(key, &n)| (key.clone(), n))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// Iterates over all `(key, count)` pairs in ascending key order, so
    /// anything rendered from a `Counter` is deterministic.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        let mut entries: Vec<(&K, u64)> = self.counts.iter().map(|(k, &v)| (k, v)).collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries.into_iter()
    }
}

impl<K: Eq + Hash + Clone + Ord> Default for Counter<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone + Ord> FromIterator<K> for Counter<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut c = Counter::new();
        for key in iter {
            c.add(key);
        }
        c
    }
}

/// `part / whole` as a percentage; 0 when `whole == 0`.
pub fn percent(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_eval_and_quantiles() {
        let cdf = Ecdf::from_samples(vec![5.0, 1.0, 3.0, 3.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(3.0), 0.75);
        assert_eq!(cdf.eval(5.0), 1.0);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
    }

    #[test]
    fn ecdf_handles_empty_and_nan() {
        let cdf = Ecdf::from_samples(vec![f64::NAN]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert!(cdf.points(10).is_empty());
    }

    #[test]
    fn ecdf_points_end_at_one() {
        let cdf = Ecdf::from_samples((1..=100).map(|i| i as f64).collect());
        let pts = cdf.points(10);
        assert!(pts.len() <= 12);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn counter_top_is_deterministic() {
        let mut c = Counter::new();
        for key in ["b", "a", "c", "a", "b"] {
            c.add(key);
        }
        assert_eq!(c.top(3), vec![("a", 2), ("b", 2), ("c", 1)]);
        assert_eq!(c.total(), 5);
        assert_eq!(c.distinct(), 3);
        assert_eq!(c.count(&"z"), 0);
    }

    #[test]
    fn percent_guards_zero() {
        assert_eq!(percent(1, 0), 0.0);
        assert!((percent(1, 4) - 25.0).abs() < 1e-12);
    }
}
