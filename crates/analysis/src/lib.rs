//! Measurement analyses for `downlake`: everything §III–§VI of the paper
//! computes over the download dataset, as reusable, label-source-agnostic
//! functions.
//!
//! Analyses are methods on a columnar [`AnalysisFrame`] — dense-id event
//! and entity columns resolved once per study — and every table/figure
//! pass is a `downlake-query` relational query: column scans, CSR
//! adjacency joins, stamp-deduplicated distinct counts, and dense
//! group-by accumulators. The historical free functions
//! (`domain_popularity(dataset, labels, ..)` and friends)
//! remain as thin wrappers that build a frame from a [`LabelView`] —
//! closures mapping file hashes to their ground-truth label and (for
//! malicious files) behaviour type — so the crate still works with any
//! labeling source: the `downlake-groundtruth` oracle, rule-extended
//! labels, or hand-built fixtures in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod domains;
mod escalation;
mod frame;
mod labels;
mod monthly;
mod packers;
mod prevalence;
mod processes;
mod signers;
pub mod stats;

pub use frame::AnalysisFrame;

pub use domains::{
    domain_popularity, files_per_domain, rank_distribution, top_domains_by_downloads,
    type_domain_tables, DomainCount, RankSource,
};
pub use escalation::{escalation_cdf, EscalationKind, EscalationReport};
pub use labels::LabelView;
pub use monthly::{monthly_summary, ClassShares, MonthSummary};
pub use packers::{packer_report, PackerReport};
pub use prevalence::{prevalence_report, PrevalenceReport};
pub use processes::{
    browser_behavior, category_behavior, malicious_process_behavior, unknown_download_categories,
    ProcessBehaviorRow,
};
pub use signers::{
    signer_overlap, signing_rates_table, top_signers, SignerOverlapRow, SignerScatterPoint,
    SigningRateRow, TopSignersReport,
};
