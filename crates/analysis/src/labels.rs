//! Label-source abstraction.

use downlake_types::{FileHash, FileLabel, MalwareType};
use std::fmt;

/// Closures mapping file hashes to ground-truth labels and behaviour
/// types. Keeps the analyses independent of where labels come from.
/// The closures must be `Sync` so frame construction can call them from
/// worker threads.
pub struct LabelView<'a> {
    label: Box<dyn Fn(FileHash) -> FileLabel + Sync + 'a>,
    malware_type: Box<dyn Fn(FileHash) -> Option<MalwareType> + Sync + 'a>,
}

impl<'a> LabelView<'a> {
    /// Creates a view from a label closure and a type closure.
    pub fn new(
        label: impl Fn(FileHash) -> FileLabel + Sync + 'a,
        malware_type: impl Fn(FileHash) -> Option<MalwareType> + Sync + 'a,
    ) -> Self {
        Self {
            label: Box::new(label),
            malware_type: Box::new(malware_type),
        }
    }

    /// The ground-truth label of a file.
    pub fn label(&self, file: FileHash) -> FileLabel {
        (self.label)(file)
    }

    /// The behaviour type, for files labeled malicious.
    pub fn malware_type(&self, file: FileHash) -> Option<MalwareType> {
        (self.malware_type)(file)
    }
}

impl fmt::Debug for LabelView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LabelView").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_delegates_to_closures() {
        let view = LabelView::new(
            |h| {
                if h.raw() % 2 == 0 {
                    FileLabel::Malicious
                } else {
                    FileLabel::Unknown
                }
            },
            |_| Some(MalwareType::Dropper),
        );
        assert_eq!(view.label(FileHash::from_raw(2)), FileLabel::Malicious);
        assert_eq!(view.label(FileHash::from_raw(3)), FileLabel::Unknown);
        assert_eq!(
            view.malware_type(FileHash::from_raw(2)),
            Some(MalwareType::Dropper)
        );
    }
}
