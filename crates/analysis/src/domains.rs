//! Download-domain analyses (§IV-B: Tables III–V, XIII; Figs. 3 and 6).
//!
//! All passes are relational queries over [`AnalysisFrame`] columns: the
//! machine → events and file → events CSR joins are
//! [`Adjacency`](downlake_query::Adjacency) operators, distinct
//! `(group, e2LD)` pairs are `distinct_by` projections, and per-e2LD
//! tallies land in dense [`Dense`](downlake_query::Dense) accumulators —
//! never per-event strings or hash sets. Table III also has a chunked
//! variant whose per-chunk accumulators merge commutatively, so it is
//! byte-identical at every pool width.

use crate::frame::{type_index, AnalysisFrame, TYPE_COUNT};
use crate::labels::LabelView;
use crate::stats::Ecdf;
use downlake_exec::Pool;
use downlake_query::{scan, top_k_by, Dense, Stamp};
use downlake_telemetry::Dataset;
use downlake_types::{E2ldId, FileLabel, MalwareType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One row of a domain table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainCount {
    /// The e2LD.
    pub domain: String,
    /// The metric (machines, files, or downloads — per table).
    pub count: u64,
}

/// Boxed rank-lookup closure backing a [`RankSource`].
type RankFn<'a> = Box<dyn Fn(&str) -> Option<u32> + 'a>;

/// Alexa-rank lookup abstraction (keeps this crate decoupled from the
/// ground-truth crate's `UrlLabeler`).
pub struct RankSource<'a>(RankFn<'a>);

impl<'a> RankSource<'a> {
    /// Wraps a rank lookup closure (`None` = unranked).
    pub fn new(f: impl Fn(&str) -> Option<u32> + 'a) -> Self {
        Self(Box::new(f))
    }

    /// The rank of an e2LD.
    pub fn rank(&self, e2ld: &str) -> Option<u32> {
        (self.0)(e2ld)
    }
}

impl fmt::Debug for RankSource<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RankSource").finish_non_exhaustive()
    }
}

/// Per-chunk accumulator of the Table III query: three dense counters
/// plus their private stamps (stamps stay chunk-local, counters merge).
struct PopularityAcc {
    overall: Dense<E2ldId, u64>,
    benign: Dense<E2ldId, u64>,
    malicious: Dense<E2ldId, u64>,
    s_overall: Stamp,
    s_benign: Stamp,
    s_malicious: Stamp,
}

impl PopularityAcc {
    fn new(n: usize) -> Self {
        Self {
            overall: Dense::new(n),
            benign: Dense::new(n),
            malicious: Dense::new(n),
            s_overall: Stamp::new(n),
            s_benign: Stamp::new(n),
            s_malicious: Stamp::new(n),
        }
    }
}

impl AnalysisFrame {
    /// Table III: domains with the highest *download popularity* —
    /// distinct machines that downloaded (a) any file, (b) a benign
    /// file, (c) a malicious file from each domain. Returns the three
    /// top-`k` tables.
    pub fn domain_popularity(&self, k: usize) -> [Vec<DomainCount>; 3] {
        self.domain_popularity_with(&Pool::sequential(), k)
    }

    /// [`AnalysisFrame::domain_popularity`] with chunked execution over
    /// `pool`: contiguous machine-id chunks fold privately and merge in
    /// chunk order. A machine's events live entirely inside one chunk
    /// and the dense counters merge slot-wise (commutative, associative
    /// `+`), so every pool width produces byte-identical tables.
    pub fn domain_popularity_with(&self, pool: &Pool, k: usize) -> [Vec<DomainCount>; 3] {
        let n = self.e2ld_count();
        // Machine-major join: each machine's events are contiguous in
        // the CSR, so one stamp tag per machine dedupes (machine, e2LD)
        // pairs.
        let acc = self.machines().fold_groups_with(
            pool,
            || PopularityAcc::new(n),
            |acc, machine, rows| {
                let tag = machine.raw();
                scan(rows.iter().map(|&e| e as usize))
                    .distinct_by(&mut acc.s_overall, tag, |&e| self.ev_e2ld[e].index())
                    .for_each(|e| acc.overall.add(self.ev_e2ld[e], 1));
                scan(rows.iter().map(|&e| e as usize))
                    .filter(|&e| self.ev_file_label[e] == FileLabel::Benign)
                    .distinct_by(&mut acc.s_benign, tag, |&e| self.ev_e2ld[e].index())
                    .for_each(|e| acc.benign.add(self.ev_e2ld[e], 1));
                scan(rows.iter().map(|&e| e as usize))
                    .filter(|&e| self.ev_file_label[e] == FileLabel::Malicious)
                    .distinct_by(&mut acc.s_malicious, tag, |&e| self.ev_e2ld[e].index())
                    .for_each(|e| acc.malicious.add(self.ev_e2ld[e], 1));
            },
            |acc, partial| {
                acc.overall.merge(partial.overall);
                acc.benign.merge(partial.benign);
                acc.malicious.merge(partial.malicious);
            },
        );
        [acc.overall, acc.benign, acc.malicious].map(|counts| self.top_domain_counts(&counts, k))
    }

    /// Table IV: distinct benign / malicious files served per domain.
    pub fn files_per_domain(&self, k: usize) -> [Vec<DomainCount>; 2] {
        let n = self.e2ld_count();
        let mut stamp = Stamp::new(n);
        // File-major join with one stamp tag per file; a file's label is
        // fixed, so each (file, e2LD) pair increments exactly one class
        // and the shared stamp never sees a tag twice.
        let mut count_class = |label: FileLabel| {
            let mut counts: Dense<E2ldId, u64> = Dense::new(n);
            for (file, rows) in self
                .files()
                .groups()
                .filter(|&(f, _)| self.file_label[f.index()] == label)
            {
                scan(rows.iter().map(|&e| self.ev_e2ld[e as usize]))
                    .distinct_by(&mut stamp, file.raw(), |d| d.index())
                    .for_each(|d| counts.add(d, 1));
            }
            counts
        };
        [
            count_class(FileLabel::Benign),
            count_class(FileLabel::Malicious),
        ]
        .map(|counts| self.top_domain_counts(&counts, k))
    }

    /// Table V: per malicious behaviour type, the domains serving the
    /// most distinct files of that type.
    pub fn type_domain_tables(&self, k: usize) -> HashMap<MalwareType, Vec<DomainCount>> {
        let n = self.e2ld_count();
        let mut per_type: [Option<Dense<E2ldId, u64>>; TYPE_COUNT] = std::array::from_fn(|_| None);
        let mut stamp = Stamp::new(n);
        for (file, rows) in self.files().groups() {
            if self.file_label[file.index()] != FileLabel::Malicious {
                continue;
            }
            let Some(ty) = self.file_type[file.index()] else {
                continue;
            };
            let counts = per_type[type_index(ty)].get_or_insert_with(|| Dense::new(n));
            scan(rows.iter().map(|&e| self.ev_e2ld[e as usize]))
                .distinct_by(&mut stamp, file.raw(), |d| d.index())
                .for_each(|d| counts.add(d, 1));
        }
        MalwareType::ALL
            .into_iter()
            .filter_map(|ty| {
                per_type[type_index(ty)]
                    .take()
                    .map(|counts| (ty, self.top_domain_counts(&counts, k)))
            })
            .collect()
    }

    /// Table XIII: domains serving the most *download events* of a given
    /// class (the paper uses it for unknowns).
    pub fn top_domains_by_downloads(&self, class: FileLabel, k: usize) -> Vec<DomainCount> {
        let counts = scan(self.ev_file_label.iter().copied().enumerate())
            .filter(|&(_, label)| label == class)
            .map(|(e, _)| self.ev_e2ld[e])
            .group_count(self.e2ld_count());
        self.top_domain_counts(&counts, k)
    }

    /// Figs. 3/6: the ECDF of Alexa ranks over the distinct domains
    /// hosting files of `class`. Returns the ECDF over *ranked* domains
    /// plus the count of unranked ones.
    pub fn rank_distribution(&self, ranks: &RankSource<'_>, class: FileLabel) -> (Ecdf, usize) {
        let mut seen: Dense<E2ldId, bool> = Dense::new(self.e2ld_count());
        scan(self.ev_file_label.iter().copied().enumerate())
            .filter(|&(_, label)| label == class)
            .for_each(|(e, _)| *seen.get_mut(self.ev_e2ld[e]) = true);
        // Dense-id order keeps the sample order (and thus the ECDF)
        // deterministic.
        let (samples, unranked) = scan(seen.iter()).filter(|&(_, &hit)| hit).fold(
            (Vec::new(), 0usize),
            |(mut samples, unranked), (d, _)| match ranks.rank(&self.e2lds[d.index()]) {
                Some(r) => {
                    samples.push(r as f64);
                    (samples, unranked)
                }
                None => (samples, unranked + 1),
            },
        );
        (Ecdf::from_samples(samples), unranked)
    }

    /// Turns a dense per-e2LD counter into the top-`k` table rows
    /// (count descending, domain ascending — a total order, so the
    /// result is identical on every run and at every pool width).
    fn top_domain_counts(&self, counts: &Dense<E2ldId, u64>, k: usize) -> Vec<DomainCount> {
        top_k_by(counts.as_slice(), k, |d| self.e2lds[d].as_str(), |_| true)
            .into_iter()
            .map(|(d, count)| DomainCount {
                domain: self.e2lds[d].clone(),
                count,
            })
            .collect()
    }
}

/// Table III (see [`AnalysisFrame::domain_popularity`]); builds a
/// one-shot frame from the label view.
pub fn domain_popularity(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    k: usize,
) -> [Vec<DomainCount>; 3] {
    AnalysisFrame::from_label_view(dataset, labels).domain_popularity(k)
}

/// Table IV (see [`AnalysisFrame::files_per_domain`]).
pub fn files_per_domain(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    k: usize,
) -> [Vec<DomainCount>; 2] {
    AnalysisFrame::from_label_view(dataset, labels).files_per_domain(k)
}

/// Table V (see [`AnalysisFrame::type_domain_tables`]).
pub fn type_domain_tables(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    k: usize,
) -> HashMap<MalwareType, Vec<DomainCount>> {
    AnalysisFrame::from_label_view(dataset, labels).type_domain_tables(k)
}

/// Table XIII (see [`AnalysisFrame::top_domains_by_downloads`]).
pub fn top_domains_by_downloads(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    class: FileLabel,
    k: usize,
) -> Vec<DomainCount> {
    AnalysisFrame::from_label_view(dataset, labels).top_domains_by_downloads(class, k)
}

/// Figs. 3/6 (see [`AnalysisFrame::rank_distribution`]).
pub fn rank_distribution(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    ranks: &RankSource<'_>,
    class: FileLabel,
) -> (Ecdf, usize) {
    AnalysisFrame::from_label_view(dataset, labels).rank_distribution(ranks, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, Timestamp, Url};

    fn event(file: u64, machine: u64, url: &str) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta::default(),
            machine: MachineId::from_raw(machine),
            process: FileHash::from_raw(999),
            process_meta: FileMeta::default(),
            url: url.parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(1),
            executed: true,
        }
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        // softonic serves benign file 1 (machines 1,2) and malicious 2 (machine 3).
        b.push(event(1, 1, "http://dl.softonic.com/a"));
        b.push(event(1, 2, "http://dl.softonic.com/a"));
        b.push(event(2, 3, "http://softonic.com/b"));
        // wipmsc serves malicious file 3 twice on one machine.
        b.push(event(3, 4, "http://wipmsc.ru/c"));
        b.push(event(3, 4, "http://wipmsc.ru/c"));
        // unknown file 9 from inbox.com.
        b.push(event(9, 5, "http://inbox.com/d"));
        b.finish()
    }

    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                1 => FileLabel::Benign,
                2 | 3 => FileLabel::Malicious,
                _ => FileLabel::Unknown,
            },
            |h| match h.raw() {
                2 => Some(MalwareType::Dropper),
                3 => Some(MalwareType::Bot),
                _ => None,
            },
        )
    }

    #[test]
    fn popularity_counts_distinct_machines() {
        let ds = dataset();
        let view = labels();
        let [overall, benign, malicious] = domain_popularity(&ds, &view, 10);
        assert_eq!(overall[0].domain, "softonic.com");
        assert_eq!(overall[0].count, 3);
        assert_eq!(benign[0].count, 2);
        // wipmsc counted once despite two events on machine 4.
        let wipmsc = malicious.iter().find(|d| d.domain == "wipmsc.ru").unwrap();
        assert_eq!(wipmsc.count, 1);
    }

    #[test]
    fn chunked_popularity_is_width_invariant() {
        let ds = dataset();
        let view = labels();
        let frame = AnalysisFrame::from_label_view(&ds, &view);
        let sequential = frame.domain_popularity(10);
        for threads in [1, 2, 4] {
            let chunked = frame.domain_popularity_with(&Pool::new(threads), 10);
            assert_eq!(chunked, sequential, "threads={threads}");
        }
    }

    #[test]
    fn files_per_domain_counts_distinct_files() {
        let ds = dataset();
        let view = labels();
        let [benign, malicious] = files_per_domain(&ds, &view, 10);
        assert_eq!(benign[0].domain, "softonic.com");
        assert_eq!(benign[0].count, 1);
        // softonic and wipmsc each served one malicious file.
        assert_eq!(malicious.len(), 2);
    }

    #[test]
    fn per_type_tables() {
        let ds = dataset();
        let view = labels();
        let tables = type_domain_tables(&ds, &view, 5);
        assert_eq!(tables[&MalwareType::Dropper][0].domain, "softonic.com");
        assert_eq!(tables[&MalwareType::Bot][0].domain, "wipmsc.ru");
    }

    #[test]
    fn downloads_table_counts_events() {
        let ds = dataset();
        let view = labels();
        let rows = top_domains_by_downloads(&ds, &view, FileLabel::Malicious, 5);
        let wipmsc = rows.iter().find(|d| d.domain == "wipmsc.ru").unwrap();
        assert_eq!(wipmsc.count, 2, "downloads count events, not machines");
        let unknowns = top_domains_by_downloads(&ds, &view, FileLabel::Unknown, 5);
        assert_eq!(unknowns[0].domain, "inbox.com");
    }

    #[test]
    fn rank_distribution_splits_ranked_and_unranked() {
        let ds = dataset();
        let view = labels();
        let ranks = RankSource::new(|d| match d {
            "softonic.com" => Some(170),
            _ => None,
        });
        let (cdf, unranked) = rank_distribution(&ds, &view, &ranks, FileLabel::Malicious);
        assert_eq!(cdf.len(), 1);
        assert_eq!(unranked, 1); // wipmsc.ru
        assert_eq!(cdf.eval(170.0), 1.0);
    }
}
