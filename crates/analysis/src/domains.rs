//! Download-domain analyses (§IV-B: Tables III–V, XIII; Figs. 3 and 6).
//!
//! All passes run over [`AnalysisFrame`] columns: distinct-machine and
//! distinct-file counts per e2LD use dense counter vectors indexed by
//! [`downlake_types::E2ldId`] plus stamp arrays, never per-event strings
//! or hash sets.

use crate::frame::{type_index, AnalysisFrame, Stamp, TYPE_COUNT};
use crate::labels::LabelView;
use crate::stats::Ecdf;
use downlake_telemetry::Dataset;
use downlake_types::{FileLabel, MalwareType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One row of a domain table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainCount {
    /// The e2LD.
    pub domain: String,
    /// The metric (machines, files, or downloads — per table).
    pub count: u64,
}

/// Boxed rank-lookup closure backing a [`RankSource`].
type RankFn<'a> = Box<dyn Fn(&str) -> Option<u32> + 'a>;

/// Alexa-rank lookup abstraction (keeps this crate decoupled from the
/// ground-truth crate's `UrlLabeler`).
pub struct RankSource<'a>(RankFn<'a>);

impl<'a> RankSource<'a> {
    /// Wraps a rank lookup closure (`None` = unranked).
    pub fn new(f: impl Fn(&str) -> Option<u32> + 'a) -> Self {
        Self(Box::new(f))
    }

    /// The rank of an e2LD.
    pub fn rank(&self, e2ld: &str) -> Option<u32> {
        (self.0)(e2ld)
    }
}

impl fmt::Debug for RankSource<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RankSource").finish_non_exhaustive()
    }
}

impl AnalysisFrame {
    /// Table III: domains with the highest *download popularity* —
    /// distinct machines that downloaded (a) any file, (b) a benign
    /// file, (c) a malicious file from each domain. Returns the three
    /// top-`k` tables.
    pub fn domain_popularity(&self, k: usize) -> [Vec<DomainCount>; 3] {
        let n = self.e2ld_count();
        let mut overall = vec![0u64; n];
        let mut benign = vec![0u64; n];
        let mut malicious = vec![0u64; n];
        let mut s_overall = Stamp::new(n);
        let mut s_benign = Stamp::new(n);
        let mut s_malicious = Stamp::new(n);
        // Machine-major scan: each machine's events are contiguous in the
        // CSR, so one stamp tag per machine dedupes (machine, e2LD) pairs.
        for machine in 0..self.machine_count {
            let tag = machine as u32;
            for &e in self.machine_events(machine) {
                let e = e as usize;
                let d = self.ev_e2ld[e].index();
                if s_overall.mark(d, tag) {
                    overall[d] += 1;
                }
                match self.ev_file_label[e] {
                    FileLabel::Benign if s_benign.mark(d, tag) => benign[d] += 1,
                    FileLabel::Malicious if s_malicious.mark(d, tag) => malicious[d] += 1,
                    _ => {}
                }
            }
        }
        [overall, benign, malicious].map(|counts| self.top_domain_counts(&counts, k))
    }

    /// Table IV: distinct benign / malicious files served per domain.
    pub fn files_per_domain(&self, k: usize) -> [Vec<DomainCount>; 2] {
        let n = self.e2ld_count();
        let mut benign = vec![0u64; n];
        let mut malicious = vec![0u64; n];
        let mut stamp = Stamp::new(n);
        // File-major scan with one stamp tag per file; a file's label is
        // fixed, so each (file, e2LD) pair increments exactly one class.
        for file in 0..self.file_count() {
            let counts = match self.file_label[file] {
                FileLabel::Benign => &mut benign,
                FileLabel::Malicious => &mut malicious,
                _ => continue,
            };
            let tag = file as u32;
            for &e in self.file_events(file) {
                let d = self.ev_e2ld[e as usize].index();
                if stamp.mark(d, tag) {
                    counts[d] += 1;
                }
            }
        }
        [benign, malicious].map(|counts| self.top_domain_counts(&counts, k))
    }

    /// Table V: per malicious behaviour type, the domains serving the
    /// most distinct files of that type.
    pub fn type_domain_tables(&self, k: usize) -> HashMap<MalwareType, Vec<DomainCount>> {
        let n = self.e2ld_count();
        let mut per_type: [Option<Vec<u64>>; TYPE_COUNT] = std::array::from_fn(|_| None);
        let mut stamp = Stamp::new(n);
        for file in 0..self.file_count() {
            if self.file_label[file] != FileLabel::Malicious {
                continue;
            }
            let Some(ty) = self.file_type[file] else {
                continue;
            };
            let counts = per_type[type_index(ty)].get_or_insert_with(|| vec![0u64; n]);
            let tag = file as u32;
            for &e in self.file_events(file) {
                let d = self.ev_e2ld[e as usize].index();
                if stamp.mark(d, tag) {
                    counts[d] += 1;
                }
            }
        }
        MalwareType::ALL
            .into_iter()
            .filter_map(|ty| {
                per_type[type_index(ty)]
                    .take()
                    .map(|counts| (ty, self.top_domain_counts(&counts, k)))
            })
            .collect()
    }

    /// Table XIII: domains serving the most *download events* of a given
    /// class (the paper uses it for unknowns).
    pub fn top_domains_by_downloads(&self, class: FileLabel, k: usize) -> Vec<DomainCount> {
        let mut counts = vec![0u64; self.e2ld_count()];
        for (e, &label) in self.ev_file_label.iter().enumerate() {
            if label == class {
                counts[self.ev_e2ld[e].index()] += 1;
            }
        }
        self.top_domain_counts(&counts, k)
    }

    /// Figs. 3/6: the ECDF of Alexa ranks over the distinct domains
    /// hosting files of `class`. Returns the ECDF over *ranked* domains
    /// plus the count of unranked ones.
    pub fn rank_distribution(&self, ranks: &RankSource<'_>, class: FileLabel) -> (Ecdf, usize) {
        let mut seen = vec![false; self.e2ld_count()];
        for (e, &label) in self.ev_file_label.iter().enumerate() {
            if label == class {
                seen[self.ev_e2ld[e].index()] = true;
            }
        }
        let mut samples = Vec::new();
        let mut unranked = 0usize;
        for (d, &hit) in seen.iter().enumerate() {
            if !hit {
                continue;
            }
            match ranks.rank(&self.e2lds[d]) {
                Some(r) => samples.push(r as f64),
                None => unranked += 1,
            }
        }
        (Ecdf::from_samples(samples), unranked)
    }

    /// Turns a dense per-e2LD counter into the top-`k` table rows
    /// (count descending, domain ascending — a total order, so the
    /// result is identical to the legacy hash-map path).
    fn top_domain_counts(&self, counts: &[u64], k: usize) -> Vec<DomainCount> {
        let mut rows: Vec<DomainCount> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(d, &count)| DomainCount {
                domain: self.e2lds[d].clone(),
                count,
            })
            .collect();
        rows.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.domain.cmp(&b.domain)));
        rows.truncate(k);
        rows
    }
}

/// Table III (see [`AnalysisFrame::domain_popularity`]); builds a
/// one-shot frame from the label view.
pub fn domain_popularity(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    k: usize,
) -> [Vec<DomainCount>; 3] {
    AnalysisFrame::from_label_view(dataset, labels).domain_popularity(k)
}

/// Table IV (see [`AnalysisFrame::files_per_domain`]).
pub fn files_per_domain(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    k: usize,
) -> [Vec<DomainCount>; 2] {
    AnalysisFrame::from_label_view(dataset, labels).files_per_domain(k)
}

/// Table V (see [`AnalysisFrame::type_domain_tables`]).
pub fn type_domain_tables(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    k: usize,
) -> HashMap<MalwareType, Vec<DomainCount>> {
    AnalysisFrame::from_label_view(dataset, labels).type_domain_tables(k)
}

/// Table XIII (see [`AnalysisFrame::top_domains_by_downloads`]).
pub fn top_domains_by_downloads(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    class: FileLabel,
    k: usize,
) -> Vec<DomainCount> {
    AnalysisFrame::from_label_view(dataset, labels).top_domains_by_downloads(class, k)
}

/// Figs. 3/6 (see [`AnalysisFrame::rank_distribution`]).
pub fn rank_distribution(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    ranks: &RankSource<'_>,
    class: FileLabel,
) -> (Ecdf, usize) {
    AnalysisFrame::from_label_view(dataset, labels).rank_distribution(ranks, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, Timestamp, Url};

    fn event(file: u64, machine: u64, url: &str) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta::default(),
            machine: MachineId::from_raw(machine),
            process: FileHash::from_raw(999),
            process_meta: FileMeta::default(),
            url: url.parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(1),
            executed: true,
        }
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        // softonic serves benign file 1 (machines 1,2) and malicious 2 (machine 3).
        b.push(event(1, 1, "http://dl.softonic.com/a"));
        b.push(event(1, 2, "http://dl.softonic.com/a"));
        b.push(event(2, 3, "http://softonic.com/b"));
        // wipmsc serves malicious file 3 twice on one machine.
        b.push(event(3, 4, "http://wipmsc.ru/c"));
        b.push(event(3, 4, "http://wipmsc.ru/c"));
        // unknown file 9 from inbox.com.
        b.push(event(9, 5, "http://inbox.com/d"));
        b.finish()
    }

    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                1 => FileLabel::Benign,
                2 | 3 => FileLabel::Malicious,
                _ => FileLabel::Unknown,
            },
            |h| match h.raw() {
                2 => Some(MalwareType::Dropper),
                3 => Some(MalwareType::Bot),
                _ => None,
            },
        )
    }

    #[test]
    fn popularity_counts_distinct_machines() {
        let ds = dataset();
        let view = labels();
        let [overall, benign, malicious] = domain_popularity(&ds, &view, 10);
        assert_eq!(overall[0].domain, "softonic.com");
        assert_eq!(overall[0].count, 3);
        assert_eq!(benign[0].count, 2);
        // wipmsc counted once despite two events on machine 4.
        let wipmsc = malicious.iter().find(|d| d.domain == "wipmsc.ru").unwrap();
        assert_eq!(wipmsc.count, 1);
    }

    #[test]
    fn files_per_domain_counts_distinct_files() {
        let ds = dataset();
        let view = labels();
        let [benign, malicious] = files_per_domain(&ds, &view, 10);
        assert_eq!(benign[0].domain, "softonic.com");
        assert_eq!(benign[0].count, 1);
        // softonic and wipmsc each served one malicious file.
        assert_eq!(malicious.len(), 2);
    }

    #[test]
    fn per_type_tables() {
        let ds = dataset();
        let view = labels();
        let tables = type_domain_tables(&ds, &view, 5);
        assert_eq!(tables[&MalwareType::Dropper][0].domain, "softonic.com");
        assert_eq!(tables[&MalwareType::Bot][0].domain, "wipmsc.ru");
    }

    #[test]
    fn downloads_table_counts_events() {
        let ds = dataset();
        let view = labels();
        let rows = top_domains_by_downloads(&ds, &view, FileLabel::Malicious, 5);
        let wipmsc = rows.iter().find(|d| d.domain == "wipmsc.ru").unwrap();
        assert_eq!(wipmsc.count, 2, "downloads count events, not machines");
        let unknowns = top_domains_by_downloads(&ds, &view, FileLabel::Unknown, 5);
        assert_eq!(unknowns[0].domain, "inbox.com");
    }

    #[test]
    fn rank_distribution_splits_ranked_and_unranked() {
        let ds = dataset();
        let view = labels();
        let ranks = RankSource::new(|d| match d {
            "softonic.com" => Some(170),
            _ => None,
        });
        let (cdf, unranked) = rank_distribution(&ds, &view, &ranks, FileLabel::Malicious);
        assert_eq!(cdf.len(), 1);
        assert_eq!(unranked, 1); // wipmsc.ru
        assert_eq!(cdf.eval(170.0), 1.0);
    }

    #[test]
    fn frame_and_legacy_paths_agree() {
        let ds = dataset();
        let view = labels();
        assert_eq!(
            domain_popularity(&ds, &view, 10),
            crate::legacy::domain_popularity(&ds, &view, 10)
        );
        assert_eq!(
            files_per_domain(&ds, &view, 10),
            crate::legacy::files_per_domain(&ds, &view, 10)
        );
        assert_eq!(
            type_domain_tables(&ds, &view, 5),
            crate::legacy::type_domain_tables(&ds, &view, 5)
        );
    }
}
