//! Download-domain analyses (§IV-B: Tables III–V, XIII; Figs. 3 and 6).

use crate::labels::LabelView;
use crate::stats::{Counter, Ecdf};
use downlake_telemetry::Dataset;
use downlake_types::{FileLabel, MalwareType};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One row of a domain table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainCount {
    /// The e2LD.
    pub domain: String,
    /// The metric (machines, files, or downloads — per table).
    pub count: u64,
}

/// Alexa-rank lookup abstraction (keeps this crate decoupled from the
/// ground-truth crate's `UrlLabeler`).
pub struct RankSource<'a>(Box<dyn Fn(&str) -> Option<u32> + 'a>);

impl<'a> RankSource<'a> {
    /// Wraps a rank lookup closure (`None` = unranked).
    pub fn new(f: impl Fn(&str) -> Option<u32> + 'a) -> Self {
        Self(Box::new(f))
    }

    /// The rank of an e2LD.
    pub fn rank(&self, e2ld: &str) -> Option<u32> {
        (self.0)(e2ld)
    }
}

impl fmt::Debug for RankSource<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RankSource").finish_non_exhaustive()
    }
}

/// Table III: domains with the highest *download popularity* — distinct
/// machines that downloaded (a) any file, (b) a benign file, (c) a
/// malicious file from each domain. Returns the three top-`k` tables.
pub fn domain_popularity(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    k: usize,
) -> [Vec<DomainCount>; 3] {
    let mut overall: HashMap<String, HashSet<u64>> = HashMap::new();
    let mut benign: HashMap<String, HashSet<u64>> = HashMap::new();
    let mut malicious: HashMap<String, HashSet<u64>> = HashMap::new();
    for event in dataset.events() {
        let e2ld = dataset.url_of(event).e2ld();
        let machine = event.machine.raw();
        overall.entry(e2ld.to_owned()).or_default().insert(machine);
        match labels.label(event.file) {
            FileLabel::Benign => {
                benign.entry(e2ld.to_owned()).or_default().insert(machine);
            }
            FileLabel::Malicious => {
                malicious.entry(e2ld.to_owned()).or_default().insert(machine);
            }
            _ => {}
        }
    }
    [overall, benign, malicious].map(|m| top_by_set_size(m, k))
}

/// Table IV: distinct benign / malicious files served per domain.
pub fn files_per_domain(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    k: usize,
) -> [Vec<DomainCount>; 2] {
    let mut benign: HashMap<String, HashSet<u64>> = HashMap::new();
    let mut malicious: HashMap<String, HashSet<u64>> = HashMap::new();
    for event in dataset.events() {
        let e2ld = dataset.url_of(event).e2ld();
        match labels.label(event.file) {
            FileLabel::Benign => {
                benign
                    .entry(e2ld.to_owned())
                    .or_default()
                    .insert(event.file.raw());
            }
            FileLabel::Malicious => {
                malicious
                    .entry(e2ld.to_owned())
                    .or_default()
                    .insert(event.file.raw());
            }
            _ => {}
        }
    }
    [benign, malicious].map(|m| top_by_set_size(m, k))
}

/// Table V: per malicious behaviour type, the domains serving the most
/// distinct files of that type.
pub fn type_domain_tables(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    k: usize,
) -> HashMap<MalwareType, Vec<DomainCount>> {
    let mut per_type: HashMap<MalwareType, HashMap<String, HashSet<u64>>> = HashMap::new();
    for event in dataset.events() {
        if labels.label(event.file) != FileLabel::Malicious {
            continue;
        }
        let Some(ty) = labels.malware_type(event.file) else {
            continue;
        };
        let e2ld = dataset.url_of(event).e2ld();
        per_type
            .entry(ty)
            .or_default()
            .entry(e2ld.to_owned())
            .or_default()
            .insert(event.file.raw());
    }
    per_type
        .into_iter()
        .map(|(ty, m)| (ty, top_by_set_size(m, k)))
        .collect()
}

/// Table XIII: domains serving the most *download events* of a given
/// class (the paper uses it for unknowns).
pub fn top_domains_by_downloads(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    class: FileLabel,
    k: usize,
) -> Vec<DomainCount> {
    let mut counter: Counter<String> = Counter::new();
    for event in dataset.events() {
        if labels.label(event.file) == class {
            counter.add(dataset.url_of(event).e2ld().to_owned());
        }
    }
    counter
        .top(k)
        .into_iter()
        .map(|(domain, count)| DomainCount { domain, count })
        .collect()
}

/// Figs. 3/6: the ECDF of Alexa ranks over the distinct domains hosting
/// files of `class`. Returns the ECDF over *ranked* domains plus the
/// count of unranked ones.
pub fn rank_distribution(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    ranks: &RankSource<'_>,
    class: FileLabel,
) -> (Ecdf, usize) {
    let mut domains: HashSet<String> = HashSet::new();
    for event in dataset.events() {
        if labels.label(event.file) == class {
            domains.insert(dataset.url_of(event).e2ld().to_owned());
        }
    }
    let mut samples = Vec::new();
    let mut unranked = 0usize;
    for d in &domains {
        match ranks.rank(d) {
            Some(r) => samples.push(r as f64),
            None => unranked += 1,
        }
    }
    (Ecdf::from_samples(samples), unranked)
}

fn top_by_set_size(map: HashMap<String, HashSet<u64>>, k: usize) -> Vec<DomainCount> {
    let mut rows: Vec<DomainCount> = map
        .into_iter()
        .map(|(domain, set)| DomainCount {
            domain,
            count: set.len() as u64,
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.domain.cmp(&b.domain)));
    rows.truncate(k);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, Timestamp, Url};

    fn event(file: u64, machine: u64, url: &str) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta::default(),
            machine: MachineId::from_raw(machine),
            process: FileHash::from_raw(999),
            process_meta: FileMeta::default(),
            url: url.parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(1),
            executed: true,
        }
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        // softonic serves benign file 1 (machines 1,2) and malicious 2 (machine 3).
        b.push(event(1, 1, "http://dl.softonic.com/a"));
        b.push(event(1, 2, "http://dl.softonic.com/a"));
        b.push(event(2, 3, "http://softonic.com/b"));
        // wipmsc serves malicious file 3 twice on one machine.
        b.push(event(3, 4, "http://wipmsc.ru/c"));
        b.push(event(3, 4, "http://wipmsc.ru/c"));
        // unknown file 9 from inbox.com.
        b.push(event(9, 5, "http://inbox.com/d"));
        b.finish()
    }

    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                1 => FileLabel::Benign,
                2 | 3 => FileLabel::Malicious,
                _ => FileLabel::Unknown,
            },
            |h| match h.raw() {
                2 => Some(MalwareType::Dropper),
                3 => Some(MalwareType::Bot),
                _ => None,
            },
        )
    }

    #[test]
    fn popularity_counts_distinct_machines() {
        let ds = dataset();
        let view = labels();
        let [overall, benign, malicious] = domain_popularity(&ds, &view, 10);
        assert_eq!(overall[0].domain, "softonic.com");
        assert_eq!(overall[0].count, 3);
        assert_eq!(benign[0].count, 2);
        // wipmsc counted once despite two events on machine 4.
        let wipmsc = malicious.iter().find(|d| d.domain == "wipmsc.ru").unwrap();
        assert_eq!(wipmsc.count, 1);
    }

    #[test]
    fn files_per_domain_counts_distinct_files() {
        let ds = dataset();
        let view = labels();
        let [benign, malicious] = files_per_domain(&ds, &view, 10);
        assert_eq!(benign[0].domain, "softonic.com");
        assert_eq!(benign[0].count, 1);
        // softonic and wipmsc each served one malicious file.
        assert_eq!(malicious.len(), 2);
    }

    #[test]
    fn per_type_tables() {
        let ds = dataset();
        let view = labels();
        let tables = type_domain_tables(&ds, &view, 5);
        assert_eq!(tables[&MalwareType::Dropper][0].domain, "softonic.com");
        assert_eq!(tables[&MalwareType::Bot][0].domain, "wipmsc.ru");
    }

    #[test]
    fn downloads_table_counts_events() {
        let ds = dataset();
        let view = labels();
        let rows = top_domains_by_downloads(&ds, &view, FileLabel::Malicious, 5);
        let wipmsc = rows.iter().find(|d| d.domain == "wipmsc.ru").unwrap();
        assert_eq!(wipmsc.count, 2, "downloads count events, not machines");
        let unknowns = top_domains_by_downloads(&ds, &view, FileLabel::Unknown, 5);
        assert_eq!(unknowns[0].domain, "inbox.com");
    }

    #[test]
    fn rank_distribution_splits_ranked_and_unranked() {
        let ds = dataset();
        let view = labels();
        let ranks = RankSource::new(|d| match d {
            "softonic.com" => Some(170),
            _ => None,
        });
        let (cdf, unranked) = rank_distribution(&ds, &view, &ranks, FileLabel::Malicious);
        assert_eq!(cdf.len(), 1);
        assert_eq!(unranked, 1); // wipmsc.ru
        assert_eq!(cdf.eval(170.0), 1.0);
    }
}
