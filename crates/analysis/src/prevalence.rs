//! File-prevalence analysis (§IV-A, Fig. 2).
//!
//! Prevalence is a precomputed per-file frame column, so the report is a
//! family of filtered column queries — one histogram / fold per output —
//! plus a `distinct_by` event query for the machines-touching-unknown
//! share.

use crate::frame::AnalysisFrame;
use crate::labels::LabelView;
use crate::stats::percent;
use downlake_query::{scan, Col, Query, Stamp};
use downlake_telemetry::Dataset;
use downlake_types::{FileId, FileLabel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The prevalence distribution of one file class plus the head/tail
/// shape numbers the paper quotes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PrevalenceReport {
    /// `prevalence → number of files` for all files.
    pub all: BTreeMap<usize, usize>,
    /// Same, per label class.
    pub benign: BTreeMap<usize, usize>,
    /// Same, for malicious files.
    pub malicious: BTreeMap<usize, usize>,
    /// Same, for unknown files.
    pub unknown: BTreeMap<usize, usize>,
    /// Share of all files with prevalence exactly 1 (paper: ~90%).
    pub prevalence_one_share: f64,
    /// Share of files whose prevalence reached the σ cap.
    pub capped_share: f64,
    /// Share of monitored machines that downloaded ≥1 unknown file
    /// (paper: 69%).
    pub machines_touching_unknown: f64,
    /// Mean prevalence per class `(all, benign, malicious, unknown)`.
    pub means: (f64, f64, f64, f64),
}

/// Histogram plus mean of one prevalence sub-population.
fn shape(rows: Query<impl Iterator<Item = usize>>) -> (BTreeMap<usize, usize>, f64) {
    let (hist, sum, n) = rows.fold(
        (BTreeMap::new(), 0usize, 0usize),
        |(mut hist, sum, n), p| {
            *hist.entry(p).or_insert(0) += 1;
            (hist, sum + p, n + 1)
        },
    );
    let mean = if n == 0 { 0.0 } else { sum as f64 / n as f64 };
    (hist, mean)
}

impl AnalysisFrame {
    /// Computes the prevalence distributions of Fig. 2.
    pub fn prevalence_report(&self, sigma: usize) -> PrevalenceReport {
        let prevalence: Col<'_, FileId, u32> = Col::new(&self.file_prevalence);
        let labels: Col<'_, FileId, FileLabel> = Col::new(&self.file_label);

        // Files that never appeared in a reported event (prevalence 0)
        // are outside the measurement; likely-* files only join `all`.
        let seen = || {
            prevalence
                .scan()
                .filter(|&(_, p)| p > 0)
                .map(|(f, p)| (f, p as usize))
        };
        let class = move |label: FileLabel| {
            seen()
                .filter(move |&(f, _)| labels.get(f) == label)
                .map(|(_, p)| p)
        };

        let total_files = seen().count();
        let ones = seen().filter(|&(_, p)| p == 1).count();
        let capped = seen().filter(|&(_, p)| p >= sigma).count();

        let (all, all_mean) = shape(seen().map(|(_, p)| p));
        let (benign, benign_mean) = shape(class(FileLabel::Benign));
        let (malicious, malicious_mean) = shape(class(FileLabel::Malicious));
        let (unknown, unknown_mean) = shape(class(FileLabel::Unknown));

        // Distinct machines that downloaded at least one unknown file.
        let mut touched = Stamp::new(self.machine_count());
        let touching = scan(self.ev_file_label.iter().copied().enumerate())
            .filter(|&(_, label)| label == FileLabel::Unknown)
            .distinct_by(&mut touched, 0, |&(e, _)| self.ev_machine[e].index())
            .count();

        PrevalenceReport {
            all,
            benign,
            malicious,
            unknown,
            prevalence_one_share: percent(ones, total_files),
            capped_share: percent(capped, total_files),
            machines_touching_unknown: percent(touching, self.machine_count()),
            means: (all_mean, benign_mean, malicious_mean, unknown_mean),
        }
    }
}

/// Fig. 2 (see [`AnalysisFrame::prevalence_report`]).
pub fn prevalence_report(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    sigma: usize,
) -> PrevalenceReport {
    AnalysisFrame::from_label_view(dataset, labels).prevalence_report(sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, Timestamp, Url};

    fn event(file: u64, machine: u64) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta::default(),
            machine: MachineId::from_raw(machine),
            process: FileHash::from_raw(999),
            process_meta: FileMeta {
                disk_name: "chrome.exe".into(),
                ..FileMeta::default()
            },
            url: "http://x.com/f".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(1),
            executed: true,
        }
    }

    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                1 => FileLabel::Benign,
                2 => FileLabel::Malicious,
                _ => FileLabel::Unknown,
            },
            |_| None,
        )
    }

    #[test]
    fn distribution_counts_by_class() {
        let mut b = DatasetBuilder::new();
        // file 1 (benign): 3 machines; file 2 (malicious): 1; files 3,4
        // (unknown): 1 machine each.
        for m in 0..3 {
            b.push(event(1, m));
        }
        b.push(event(2, 0));
        b.push(event(3, 1));
        b.push(event(4, 2));
        let ds = b.finish();
        let view = labels();
        let report = prevalence_report(&ds, &view, 20);

        assert_eq!(report.all[&1], 3);
        assert_eq!(report.all[&3], 1);
        assert_eq!(report.benign[&3], 1);
        assert_eq!(report.malicious[&1], 1);
        assert_eq!(report.unknown[&1], 2);
        // 3 of 4 files have prevalence 1.
        assert!((report.prevalence_one_share - 75.0).abs() < 1e-9);
        // Machines 1 and 2 downloaded unknown files; machine 0 did not.
        assert!((report.machines_touching_unknown - 200.0 / 3.0).abs() < 1e-9);
        assert!(
            report.means.1 > report.means.3,
            "benign mean above unknown mean"
        );
    }

    #[test]
    fn capped_share_counts_sigma_reached() {
        let mut b = DatasetBuilder::new();
        for m in 0..5 {
            b.push(event(7, m));
        }
        b.push(event(8, 0));
        let ds = b.finish();
        let view = labels();
        let report = prevalence_report(&ds, &view, 5);
        assert!((report.capped_share - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_yields_zeroes() {
        let ds = DatasetBuilder::new().finish();
        let view = labels();
        let report = prevalence_report(&ds, &view, 20);
        assert!(report.all.is_empty());
        assert_eq!(report.prevalence_one_share, 0.0);
        assert_eq!(report.machines_touching_unknown, 0.0);
    }
}
