//! File-prevalence analysis (§IV-A, Fig. 2).
//!
//! Prevalence is a precomputed per-file frame column, so the report is a
//! single scan over the file columns plus a boolean-vector pass over the
//! event columns for the machines-touching-unknown share.

use crate::frame::AnalysisFrame;
use crate::labels::LabelView;
use crate::stats::percent;
use downlake_telemetry::Dataset;
use downlake_types::FileLabel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The prevalence distribution of one file class plus the head/tail
/// shape numbers the paper quotes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PrevalenceReport {
    /// `prevalence → number of files` for all files.
    pub all: BTreeMap<usize, usize>,
    /// Same, per label class.
    pub benign: BTreeMap<usize, usize>,
    /// Same, for malicious files.
    pub malicious: BTreeMap<usize, usize>,
    /// Same, for unknown files.
    pub unknown: BTreeMap<usize, usize>,
    /// Share of all files with prevalence exactly 1 (paper: ~90%).
    pub prevalence_one_share: f64,
    /// Share of files whose prevalence reached the σ cap.
    pub capped_share: f64,
    /// Share of monitored machines that downloaded ≥1 unknown file
    /// (paper: 69%).
    pub machines_touching_unknown: f64,
    /// Mean prevalence per class `(all, benign, malicious, unknown)`.
    pub means: (f64, f64, f64, f64),
}

impl AnalysisFrame {
    /// Computes the prevalence distributions of Fig. 2.
    pub fn prevalence_report(&self, sigma: usize) -> PrevalenceReport {
        let mut report = PrevalenceReport::default();
        let mut ones = 0usize;
        let mut capped = 0usize;
        let mut total_files = 0usize;
        let mut sums = (0usize, 0usize, 0usize, 0usize);
        let mut counts = (0usize, 0usize, 0usize, 0usize);

        for file in 0..self.file_count() {
            let prevalence = self.file_prevalence[file] as usize;
            if prevalence == 0 {
                continue; // file never appeared in a reported event
            }
            total_files += 1;
            if prevalence == 1 {
                ones += 1;
            }
            if prevalence >= sigma {
                capped += 1;
            }
            *report.all.entry(prevalence).or_insert(0) += 1;
            sums.0 += prevalence;
            counts.0 += 1;
            match self.file_label[file] {
                FileLabel::Benign => {
                    *report.benign.entry(prevalence).or_insert(0) += 1;
                    sums.1 += prevalence;
                    counts.1 += 1;
                }
                FileLabel::Malicious => {
                    *report.malicious.entry(prevalence).or_insert(0) += 1;
                    sums.2 += prevalence;
                    counts.2 += 1;
                }
                FileLabel::Unknown => {
                    *report.unknown.entry(prevalence).or_insert(0) += 1;
                    sums.3 += prevalence;
                    counts.3 += 1;
                }
                // Likely-* files are excluded from the measurement (§III).
                FileLabel::LikelyBenign | FileLabel::LikelyMalicious => {}
            }
        }

        let mut touched = vec![false; self.machine_count()];
        let mut touched_count = 0usize;
        for (e, &label) in self.ev_file_label.iter().enumerate() {
            if label == FileLabel::Unknown {
                let machine = self.ev_machine[e].index();
                if !touched[machine] {
                    touched[machine] = true;
                    touched_count += 1;
                }
            }
        }

        report.prevalence_one_share = percent(ones, total_files);
        report.capped_share = percent(capped, total_files);
        report.machines_touching_unknown = percent(touched_count, self.machine_count());
        let mean = |s: usize, c: usize| if c == 0 { 0.0 } else { s as f64 / c as f64 };
        report.means = (
            mean(sums.0, counts.0),
            mean(sums.1, counts.1),
            mean(sums.2, counts.2),
            mean(sums.3, counts.3),
        );
        report
    }
}

/// Fig. 2 (see [`AnalysisFrame::prevalence_report`]).
pub fn prevalence_report(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    sigma: usize,
) -> PrevalenceReport {
    AnalysisFrame::from_label_view(dataset, labels).prevalence_report(sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, Timestamp, Url};

    fn event(file: u64, machine: u64) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta::default(),
            machine: MachineId::from_raw(machine),
            process: FileHash::from_raw(999),
            process_meta: FileMeta {
                disk_name: "chrome.exe".into(),
                ..FileMeta::default()
            },
            url: "http://x.com/f".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(1),
            executed: true,
        }
    }

    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                1 => FileLabel::Benign,
                2 => FileLabel::Malicious,
                _ => FileLabel::Unknown,
            },
            |_| None,
        )
    }

    #[test]
    fn distribution_counts_by_class() {
        let mut b = DatasetBuilder::new();
        // file 1 (benign): 3 machines; file 2 (malicious): 1; files 3,4
        // (unknown): 1 machine each.
        for m in 0..3 {
            b.push(event(1, m));
        }
        b.push(event(2, 0));
        b.push(event(3, 1));
        b.push(event(4, 2));
        let ds = b.finish();
        let view = labels();
        let report = prevalence_report(&ds, &view, 20);

        assert_eq!(report.all[&1], 3);
        assert_eq!(report.all[&3], 1);
        assert_eq!(report.benign[&3], 1);
        assert_eq!(report.malicious[&1], 1);
        assert_eq!(report.unknown[&1], 2);
        // 3 of 4 files have prevalence 1.
        assert!((report.prevalence_one_share - 75.0).abs() < 1e-9);
        // Machines 1 and 2 downloaded unknown files; machine 0 did not.
        assert!((report.machines_touching_unknown - 200.0 / 3.0).abs() < 1e-9);
        assert!(
            report.means.1 > report.means.3,
            "benign mean above unknown mean"
        );
        assert_eq!(report, crate::legacy::prevalence_report(&ds, &view, 20));
    }

    #[test]
    fn capped_share_counts_sigma_reached() {
        let mut b = DatasetBuilder::new();
        for m in 0..5 {
            b.push(event(7, m));
        }
        b.push(event(8, 0));
        let ds = b.finish();
        let view = labels();
        let report = prevalence_report(&ds, &view, 5);
        assert!((report.capped_share - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_yields_zeroes() {
        let ds = DatasetBuilder::new().finish();
        let view = labels();
        let report = prevalence_report(&ds, &view, 20);
        assert!(report.all.is_empty());
        assert_eq!(report.prevalence_one_share, 0.0);
        assert_eq!(report.machines_touching_unknown, 0.0);
    }
}
