//! Infection-escalation timing (§V-B, Fig. 5).
//!
//! For each machine, measure the day delta between executing a seed file
//! of a given kind (benign / adware / PUP / dropper) and the machine's
//! next download of *other* malware — where "other malware" excludes
//! adware, PUPs, and undefined, exactly as the paper does so the four
//! curves are comparable.
//!
//! The pass is a machine-major [`Adjacency`](downlake_query::Adjacency)
//! join: per machine, a seed-finding fold over the time-ordered CSR
//! slice, then one filtered `first()` query per seed slot. Seeds live
//! in a fixed 4-slot array and target checks read the per-event
//! label/type columns directly.

use crate::frame::AnalysisFrame;
use crate::labels::LabelView;
use crate::stats::Ecdf;
use downlake_query::scan;
use downlake_telemetry::Dataset;
use downlake_types::{FileId, FileLabel, MalwareType, Timestamp};
use serde::{Deserialize, Serialize};

/// The four seed kinds of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EscalationKind {
    /// Benign baseline: machines with no prior malicious download.
    Benign,
    /// Adware seed.
    Adware,
    /// PUP seed.
    Pup,
    /// Dropper seed.
    Dropper,
}

impl EscalationKind {
    /// All kinds, display order.
    pub const ALL: [EscalationKind; 4] = [
        EscalationKind::Benign,
        EscalationKind::Adware,
        EscalationKind::Pup,
        EscalationKind::Dropper,
    ];

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            EscalationKind::Benign => "benign",
            EscalationKind::Adware => "adware",
            EscalationKind::Pup => "pup",
            EscalationKind::Dropper => "dropper",
        }
    }
}

/// The Fig. 5 data: one day-delta ECDF per seed kind.
#[derive(Debug, Default)]
pub struct EscalationReport {
    /// `(kind, ECDF of day deltas, number of machines contributing)`.
    pub curves: Vec<(EscalationKind, Ecdf, usize)>,
}

impl EscalationReport {
    /// The curve for one kind.
    pub fn curve(&self, kind: EscalationKind) -> Option<&Ecdf> {
        self.curves
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|(_, cdf, _)| cdf)
    }
}

impl AnalysisFrame {
    /// Whether an event downloaded "other malware" for escalation.
    fn is_target_malware(&self, event: usize) -> bool {
        self.ev_file_label[event] == FileLabel::Malicious
            && !matches!(
                self.ev_file_type[event],
                Some(MalwareType::Adware)
                    | Some(MalwareType::Pup)
                    | Some(MalwareType::Undefined)
                    | None
            )
    }

    /// Computes the Fig. 5 curves.
    pub fn escalation_cdf(&self) -> EscalationReport {
        // Sample vectors in `EscalationKind::ALL` slot order.
        let mut samples: [Vec<f64>; 4] = std::array::from_fn(|_| Vec::new());

        // Machine-major join; each machine's CSR slice is time-ordered.
        for (_, events) in self.machines().groups() {
            // Seed times: first adware, first pup, first dropper download;
            // benign baseline = first benign download on a machine with no
            // earlier malicious download. The seed file is remembered so
            // the seed event itself is not counted as the escalation
            // target.
            let init: ([Option<(Timestamp, FileId)>; 4], bool) = ([None; 4], false);
            let (seeds, _) = scan(events.iter().map(|&e| e as usize)).fold(
                init,
                |(mut seeds, mut seen_malicious), e| {
                    match self.ev_file_label[e] {
                        FileLabel::Malicious => {
                            let slot = match self.ev_file_type[e] {
                                Some(MalwareType::Adware) => Some(1),
                                Some(MalwareType::Pup) => Some(2),
                                Some(MalwareType::Dropper) => Some(3),
                                _ => None,
                            };
                            if let Some(slot) = slot {
                                if seeds[slot].is_none() {
                                    seeds[slot] = Some((self.ev_timestamp[e], self.ev_file[e]));
                                }
                            }
                            seen_malicious = true;
                        }
                        // downlake-lint: allow(P1) — slot 0 is the benign-seed lane of the fixed [_; 4] seed array
                        FileLabel::Benign if !seen_malicious && seeds[0].is_none() => {
                            // downlake-lint: allow(P1) — constant index into fixed [_; 4] seed array
                            seeds[0] = Some((self.ev_timestamp[e], self.ev_file[e]));
                        }
                        _ => {}
                    }
                    (seeds, seen_malicious)
                },
            );

            // For each seed: the first *other malware* download at or
            // after the seed time (same-day escalations are day 0), never
            // counting the seed download itself.
            for (slot, seed) in seeds.iter().enumerate() {
                let Some((seed_time, seed_file)) = *seed else {
                    continue;
                };
                let delta = scan(events.iter().map(|&e| e as usize))
                    .filter(|&e| {
                        self.ev_timestamp[e] >= seed_time
                            && !(self.ev_timestamp[e] == seed_time && self.ev_file[e] == seed_file)
                            && self.is_target_malware(e)
                    })
                    .map(|e| (self.ev_timestamp[e] - seed_time).whole_days() as f64)
                    .first();
                if let Some(days) = delta {
                    samples[slot].push(days);
                }
            }
        }

        EscalationReport {
            curves: EscalationKind::ALL
                .iter()
                .zip(samples)
                .map(|(&kind, data)| {
                    let n = data.len();
                    (kind, Ecdf::from_samples(data), n)
                })
                .collect(),
        }
    }
}

/// Fig. 5 (see [`AnalysisFrame::escalation_cdf`]).
pub fn escalation_cdf(dataset: &Dataset, labels: &LabelView<'_>) -> EscalationReport {
    AnalysisFrame::from_label_view(dataset, labels).escalation_cdf()
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, Url};

    fn event(file: u64, machine: u64, day: u32) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta::default(),
            machine: MachineId::from_raw(machine),
            process: FileHash::from_raw(999),
            process_meta: FileMeta::default(),
            url: "http://x.com/f".parse::<Url>().unwrap(),
            timestamp: downlake_types::Timestamp::from_day(day),
            executed: true,
        }
    }

    /// files: 10=adware, 11=pup, 12=dropper, 13=banker, 14=benign.
    fn labels() -> LabelView<'static> {
        LabelView::new(
            |h| match h.raw() {
                10..=13 => FileLabel::Malicious,
                14 => FileLabel::Benign,
                _ => FileLabel::Unknown,
            },
            |h| match h.raw() {
                10 => Some(MalwareType::Adware),
                11 => Some(MalwareType::Pup),
                12 => Some(MalwareType::Dropper),
                13 => Some(MalwareType::Banker),
                _ => None,
            },
        )
    }

    #[test]
    fn deltas_per_seed_kind() {
        let mut b = DatasetBuilder::new();
        // Machine 1: adware day 10, banker day 12 → adware delta 2.
        b.push(event(10, 1, 10));
        b.push(event(13, 1, 12));
        // Machine 2: dropper day 5, banker day 5 → dropper delta 0.
        b.push(event(12, 2, 5));
        b.push(event(13, 2, 5));
        // Machine 3: benign day 1, banker day 31 → benign delta 30.
        b.push(event(14, 3, 1));
        b.push(event(13, 3, 31));
        let ds = b.finish();
        let view = labels();
        let report = escalation_cdf(&ds, &view);

        let adware = report.curve(EscalationKind::Adware).unwrap();
        assert_eq!(adware.len(), 1);
        assert_eq!(adware.eval(2.0), 1.0);
        assert_eq!(adware.eval(1.0), 0.0);

        let dropper = report.curve(EscalationKind::Dropper).unwrap();
        assert_eq!(dropper.eval(0.0), 1.0);

        let benign = report.curve(EscalationKind::Benign).unwrap();
        assert_eq!(benign.eval(29.0), 0.0);
        assert_eq!(benign.eval(30.0), 1.0);
    }

    #[test]
    fn adware_to_adware_does_not_count() {
        let mut b = DatasetBuilder::new();
        b.push(event(10, 1, 10));
        b.push(event(11, 1, 12)); // pup follows adware: not "other malware"
        let ds = b.finish();
        let view = labels();
        let report = escalation_cdf(&ds, &view);
        assert!(report.curve(EscalationKind::Adware).unwrap().is_empty());
    }

    #[test]
    fn benign_baseline_requires_clean_history() {
        let mut b = DatasetBuilder::new();
        // Banker precedes the benign download → machine excluded from
        // the benign baseline.
        b.push(event(13, 1, 2));
        b.push(event(14, 1, 3));
        b.push(event(13, 1, 9));
        let ds = b.finish();
        let view = labels();
        let report = escalation_cdf(&ds, &view);
        assert!(report.curve(EscalationKind::Benign).unwrap().is_empty());
    }

    #[test]
    fn dropper_seed_ignores_its_own_seed_event() {
        // Droppers are themselves "other malware" targets, but the seed
        // download must not count: the real target is the banker one day
        // later.
        let mut b = DatasetBuilder::new();
        b.push(event(12, 1, 4));
        b.push(event(13, 1, 5));
        let ds = b.finish();
        let view = labels();
        let report = escalation_cdf(&ds, &view);
        let dropper = report.curve(EscalationKind::Dropper).unwrap();
        assert_eq!(dropper.eval(0.0), 0.0, "seed itself must not count");
        assert_eq!(dropper.eval(1.0), 1.0);
    }
}
