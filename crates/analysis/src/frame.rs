//! The columnar [`AnalysisFrame`]: dense-id event columns shared across
//! every table/figure pass.
//!
//! Every analysis in this crate used to re-derive the same facts per
//! event — resolving URLs to e2LD strings, calling boxed label closures,
//! and accumulating into string-keyed hash maps. The frame resolves each
//! fact **once**, into flat `Vec` columns indexed by the dense ids the
//! telemetry layer assigns ([`FileId`], [`ProcessId`], [`MachineIdx`],
//! [`E2ldId`]):
//!
//! - *per-event* columns parallel to `Dataset::events()` — file /
//!   process / machine / URL / e2LD ids, timestamp, study month, and the
//!   gathered file label, malware type, and process category;
//! - *per-file* columns — label, type, prevalence, interned signer and
//!   packer ids, and whether a browser ever downloaded the file;
//! - *per-process* columns — label, type, category;
//! - CSR adjacency (machine → events, file → events) rebuilt over the
//!   dense ids so per-entity scans are contiguous slices.
//!
//! Label and type closures are invoked once per *distinct* file and
//! process at build time, never per event, and no analysis pass over the
//! frame allocates a `String` per event. Each analysis module implements
//! its passes as relational queries over the frame's columns and CSR
//! adjacencies, using the `downlake-query` operators
//! ([`downlake_query::Query`], [`downlake_query::Adjacency`],
//! [`downlake_query::Stamp`]); the query operators themselves are pinned
//! against naive loop oracles by `downlake-query`'s property tests.

use crate::labels::LabelView;
use downlake_exec::{partition, Pool};
use downlake_query::{Adjacency, RangePartition};
use downlake_telemetry::Dataset;
use downlake_types::{
    E2ldId, FileHash, FileId, FileLabel, MachineIdx, MalwareType, Month, ProcessCategory,
    ProcessId, Timestamp, UrlId, MONTHS_IN_STUDY,
};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// Number of malware behaviour types (rows of the paper's Table II).
pub(crate) const TYPE_COUNT: usize = 11;

/// Dense index of a malware type, in [`MalwareType::ALL`] (Table II)
/// order.
pub(crate) const fn type_index(ty: MalwareType) -> usize {
    match ty {
        MalwareType::Dropper => 0,
        MalwareType::Pup => 1,
        MalwareType::Adware => 2,
        MalwareType::Trojan => 3,
        MalwareType::Banker => 4,
        MalwareType::Bot => 5,
        MalwareType::FakeAv => 6,
        MalwareType::Ransomware => 7,
        MalwareType::Worm => 8,
        MalwareType::Spyware => 9,
        MalwareType::Undefined => 10,
    }
}

/// The columnar analysis frame. Built once per study (see
/// [`AnalysisFrame::build`]); owns all of its columns, so it can live
/// alongside the `Dataset` it was derived from without borrowing it.
pub struct AnalysisFrame {
    // Per-event columns, parallel to `Dataset::events()`.
    pub(crate) ev_file: Vec<FileId>,
    pub(crate) ev_process: Vec<ProcessId>,
    pub(crate) ev_machine: Vec<MachineIdx>,
    pub(crate) ev_url: Vec<UrlId>,
    pub(crate) ev_e2ld: Vec<E2ldId>,
    pub(crate) ev_timestamp: Vec<Timestamp>,
    /// Study-month index per event (`u8::MAX` = outside the study window).
    pub(crate) ev_month: Vec<u8>,
    pub(crate) ev_file_label: Vec<FileLabel>,
    pub(crate) ev_file_type: Vec<Option<MalwareType>>,
    pub(crate) ev_proc_category: Vec<ProcessCategory>,

    // Per-file columns, indexed by `FileId`.
    pub(crate) file_label: Vec<FileLabel>,
    pub(crate) file_type: Vec<Option<MalwareType>>,
    pub(crate) file_prevalence: Vec<u32>,
    /// Interned valid-signer subject, if the file is validly signed.
    pub(crate) file_signer: Vec<Option<u32>>,
    /// Interned packer name, if the file is packed.
    pub(crate) file_packer: Vec<Option<u32>>,
    /// Whether a browser-category process ever downloaded the file.
    pub(crate) file_browser: Vec<bool>,

    // Per-process columns, indexed by `ProcessId`.
    pub(crate) proc_label: Vec<FileLabel>,
    pub(crate) proc_type: Vec<Option<MalwareType>>,
    pub(crate) proc_category: Vec<ProcessCategory>,

    // Per-URL column, indexed by `UrlId`.
    pub(crate) url_e2ld: Vec<E2ldId>,

    // Interned string tables, indexed by the dense ids above.
    pub(crate) e2lds: Vec<String>,
    pub(crate) signers: Vec<String>,
    pub(crate) packers: Vec<String>,

    // CSR adjacency over dense ids: time-ordered event indexes per row.
    pub(crate) machine_offsets: Vec<u32>,
    pub(crate) machine_event_idx: Vec<u32>,
    pub(crate) file_offsets: Vec<u32>,
    pub(crate) file_event_idx: Vec<u32>,

    /// Event-index range of each study month.
    pub(crate) month_bounds: RangePartition,
    pub(crate) machine_count: usize,
}

impl fmt::Debug for AnalysisFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisFrame")
            .field("events", &self.ev_file.len())
            .field("files", &self.file_label.len())
            .field("processes", &self.proc_label.len())
            .field("machines", &self.machine_count)
            .field("e2lds", &self.e2lds.len())
            .field("signers", &self.signers.len())
            .field("packers", &self.packers.len())
            .finish()
    }
}

/// Per-file column partial built over one chunk of the file id range.
/// Signer/packer ids are local to the chunk's own string tables and are
/// remapped to the global first-seen order at merge time.
struct FilePartial {
    label: Vec<FileLabel>,
    ty: Vec<Option<MalwareType>>,
    prevalence: Vec<u32>,
    signer: Vec<Option<u32>>,
    packer: Vec<Option<u32>>,
    signers: Vec<String>,
    packers: Vec<String>,
}

impl AnalysisFrame {
    /// Builds the frame from a dataset and a labeling, sequentially.
    ///
    /// `label_of` / `type_of` are called once per distinct file and per
    /// distinct process image — never per event. This is exactly
    /// [`AnalysisFrame::build_with`] on the inline single-threaded pool,
    /// kept as the oracle path.
    pub fn build(
        dataset: &Dataset,
        label_of: impl Fn(FileHash) -> FileLabel + Sync,
        type_of: impl Fn(FileHash) -> Option<MalwareType> + Sync,
    ) -> Self {
        Self::build_with(dataset, &Pool::sequential(), label_of, type_of)
    }

    /// Builds the frame with column and CSR chunks as pool jobs.
    ///
    /// The frame is byte-identical for every pool width: chunks are
    /// contiguous id ranges, chunk outputs are concatenated in chunk
    /// order, and chunk-local intern tables are remapped to the global
    /// first-seen order — which equals the sequential one because chunks
    /// are merged in range order.
    pub fn build_with(
        dataset: &Dataset,
        pool: &Pool,
        label_of: impl Fn(FileHash) -> FileLabel + Sync,
        type_of: impl Fn(FileHash) -> Option<MalwareType> + Sync,
    ) -> Self {
        Self::build_chunked(dataset, pool, pool.threads().max(1), label_of, type_of)
    }

    /// [`AnalysisFrame::build_with`] with an explicit chunk count,
    /// decoupled from the pool width.
    ///
    /// The lake-backed pipeline passes the world's on-disk shard count
    /// here so a study built from cached segments chunks its columns
    /// the same way regardless of the host's thread count. Any
    /// `chunks >= 1` yields a byte-identical frame (the same invariance
    /// `build_with` relies on); the knob only shapes the work units.
    pub fn build_chunked(
        dataset: &Dataset,
        pool: &Pool,
        chunks: usize,
        label_of: impl Fn(FileHash) -> FileLabel + Sync,
        type_of: impl Fn(FileHash) -> Option<MalwareType> + Sync,
    ) -> Self {
        let n_events = dataset.events().len();
        let n_files = dataset.files().len();
        let n_processes = dataset.processes().len();
        let jobs = chunks.max(1);

        // Per-URL e2LD column and the e2LD string table, copied from the
        // interning the telemetry layer already did.
        let urls = dataset.urls();
        let url_e2ld: Vec<E2ldId> = (0..urls.len())
            .map(|i| urls.e2ld_of(UrlId::from_raw(i as u32)))
            .collect();
        let e2lds: Vec<String> = urls.e2lds().map(str::to_owned).collect();

        // Per-file columns: one closure call and one metadata inspection
        // per distinct file, chunked over contiguous file id ranges.
        // Signer subjects and packer names are interned per chunk and
        // remapped below.
        let file_chunks = partition(n_files, jobs);
        let file_partials = pool.map(&file_chunks, |_, range| {
            let records = &dataset.files().records()[range.clone()];
            let mut partial = FilePartial {
                label: Vec::with_capacity(records.len()),
                ty: Vec::with_capacity(records.len()),
                prevalence: Vec::with_capacity(records.len()),
                signer: Vec::with_capacity(records.len()),
                packer: Vec::with_capacity(records.len()),
                signers: Vec::new(),
                packers: Vec::new(),
            };
            let mut signer_ids: HashMap<String, u32> = HashMap::new();
            let mut packer_ids: HashMap<String, u32> = HashMap::new();
            for (offset, record) in records.iter().enumerate() {
                let i = range.start + offset;
                partial.label.push(label_of(record.hash));
                partial.ty.push(type_of(record.hash));
                partial
                    .prevalence
                    .push(dataset.prevalence_of(FileId::from_raw(i as u32)) as u32);
                partial
                    .signer
                    .push(record.meta.valid_signer_subject().map(|subject| {
                        *signer_ids.entry(subject.to_owned()).or_insert_with(|| {
                            partial.signers.push(subject.to_owned());
                            (partial.signers.len() - 1) as u32
                        })
                    }));
                partial.packer.push(record.meta.packer.as_ref().map(|p| {
                    *packer_ids.entry(p.name.clone()).or_insert_with(|| {
                        partial.packers.push(p.name.clone());
                        (partial.packers.len() - 1) as u32
                    })
                }));
            }
            partial
        });

        // Merge the per-file partials in chunk (= file id) order. Interned
        // strings dedup against the growing global tables, so the final
        // id assignment is the global first-seen order.
        let mut file_label = Vec::with_capacity(n_files);
        let mut file_type = Vec::with_capacity(n_files);
        let mut file_prevalence = Vec::with_capacity(n_files);
        let mut file_signer = Vec::with_capacity(n_files);
        let mut file_packer = Vec::with_capacity(n_files);
        let mut signers: Vec<String> = Vec::new();
        let mut signer_ids: HashMap<String, u32> = HashMap::new();
        let mut packers: Vec<String> = Vec::new();
        let mut packer_ids: HashMap<String, u32> = HashMap::new();
        for partial in file_partials {
            let signer_remap: Vec<u32> = partial
                .signers
                .into_iter()
                .map(|subject| {
                    *signer_ids.entry(subject.clone()).or_insert_with(|| {
                        signers.push(subject);
                        (signers.len() - 1) as u32
                    })
                })
                .collect();
            let packer_remap: Vec<u32> = partial
                .packers
                .into_iter()
                .map(|name| {
                    *packer_ids.entry(name.clone()).or_insert_with(|| {
                        packers.push(name);
                        (packers.len() - 1) as u32
                    })
                })
                .collect();
            file_label.extend(partial.label);
            file_type.extend(partial.ty);
            file_prevalence.extend(partial.prevalence);
            file_signer.extend(
                partial
                    .signer
                    .into_iter()
                    .map(|s| s.map(|local| signer_remap[local as usize])),
            );
            file_packer.extend(
                partial
                    .packer
                    .into_iter()
                    .map(|p| p.map(|local| packer_remap[local as usize])),
            );
        }

        // Per-process columns, chunked the same way.
        let proc_chunks = partition(n_processes, jobs);
        let proc_partials = pool.map(&proc_chunks, |_, range| {
            let records = &dataset.processes().records()[range.clone()];
            let mut label = Vec::with_capacity(records.len());
            let mut ty = Vec::with_capacity(records.len());
            let mut category = Vec::with_capacity(records.len());
            for record in records {
                label.push(label_of(record.hash));
                ty.push(type_of(record.hash));
                category.push(record.category);
            }
            (label, ty, category)
        });
        let mut proc_label = Vec::with_capacity(n_processes);
        let mut proc_type = Vec::with_capacity(n_processes);
        let mut proc_category = Vec::with_capacity(n_processes);
        for (label, ty, category) in proc_partials {
            proc_label.extend(label);
            proc_type.extend(ty);
            proc_category.extend(category);
        }

        // Per-event columns: copies of the dataset's dense id columns plus
        // gathers of the per-entity columns above, chunked over contiguous
        // event ranges and concatenated in range order.
        let ev_file = dataset.event_files().to_vec();
        let ev_process = dataset.event_processes().to_vec();
        let ev_machine = dataset.event_machines().to_vec();
        let mut ev_url = Vec::with_capacity(n_events);
        let mut ev_timestamp = Vec::with_capacity(n_events);
        for event in dataset.events() {
            ev_url.push(event.url);
            ev_timestamp.push(event.timestamp);
        }
        let event_chunks = partition(n_events, jobs);
        let gather_partials = pool.map(&event_chunks, |_, range| {
            let ev_e2ld: Vec<E2ldId> = ev_url[range.clone()]
                .iter()
                .map(|&u| url_e2ld[u.index()])
                .collect();
            let files = &ev_file[range.clone()];
            let ev_file_label: Vec<FileLabel> =
                files.iter().map(|&f| file_label[f.index()]).collect();
            let ev_file_type: Vec<Option<MalwareType>> =
                files.iter().map(|&f| file_type[f.index()]).collect();
            let ev_proc_category: Vec<ProcessCategory> = ev_process[range.clone()]
                .iter()
                .map(|&p| proc_category[p.index()])
                .collect();
            (ev_e2ld, ev_file_label, ev_file_type, ev_proc_category)
        });
        let mut ev_e2ld = Vec::with_capacity(n_events);
        let mut ev_file_label = Vec::with_capacity(n_events);
        let mut ev_file_type = Vec::with_capacity(n_events);
        let mut ev_proc_category = Vec::with_capacity(n_events);
        for (e2ld, label, ty, category) in gather_partials {
            ev_e2ld.extend(e2ld);
            ev_file_label.extend(label);
            ev_file_type.extend(ty);
            ev_proc_category.extend(category);
        }

        // Browser exposure per file (cheap OR-accumulation; sequential).
        let mut file_browser = vec![false; n_files];
        for (i, &f) in ev_file.iter().enumerate() {
            if ev_proc_category[i].is_browser() {
                file_browser[f.index()] = true;
            }
        }

        // CSR adjacency from per-chunk counting-sort partials, merged in
        // chunk order so each row keeps time order.
        let machine_keys: Vec<u32> = ev_machine.iter().map(|m| m.raw()).collect();
        let (machine_offsets, machine_event_idx) =
            csr_group_with(pool, dataset.machine_count(), &machine_keys, &event_chunks);
        let file_keys: Vec<u32> = ev_file.iter().map(|f| f.raw()).collect();
        let (file_offsets, file_event_idx) =
            csr_group_with(pool, n_files, &file_keys, &event_chunks);

        // One shared month partition: the per-event month column and
        // every per-month pass (monthly summary, prevalence) derive from
        // this single queried intermediate, so they cannot drift.
        let mut bounds = Vec::with_capacity(MONTHS_IN_STUDY);
        for month in Month::ALL {
            let range = dataset.month(month).event_range();
            bounds.push(range.start as u32..range.end as u32);
        }
        let month_bounds = RangePartition::new(bounds);
        let ev_month = month_bounds.dense_column(n_events, u8::MAX);

        Self {
            ev_file,
            ev_process,
            ev_machine,
            ev_url,
            ev_e2ld,
            ev_timestamp,
            ev_month,
            ev_file_label,
            ev_file_type,
            ev_proc_category,
            file_label,
            file_type,
            file_prevalence,
            file_signer,
            file_packer,
            file_browser,
            proc_label,
            proc_type,
            proc_category,
            url_e2ld,
            e2lds,
            signers,
            packers,
            machine_offsets,
            machine_event_idx,
            file_offsets,
            file_event_idx,
            month_bounds,
            machine_count: dataset.machine_count(),
        }
    }

    /// [`AnalysisFrame::build_with`] plus metric observation.
    ///
    /// Records the frame's row counts and final intern-table sizes into
    /// `registry`'s deterministic plane — they are properties of the
    /// finished frame, which is byte-identical at every pool width — and
    /// the whole build's duration (read from `clock`) as a
    /// `frame.build` span in the timing plane. The frame itself is
    /// byte-identical to the unobserved path.
    pub fn build_observed(
        dataset: &Dataset,
        pool: &Pool,
        registry: &downlake_obs::Registry,
        clock: &dyn downlake_obs::Clock,
        label_of: impl Fn(FileHash) -> FileLabel + Sync,
        type_of: impl Fn(FileHash) -> Option<MalwareType> + Sync,
    ) -> Self {
        let chunks = pool.threads().max(1);
        Self::build_observed_chunked(dataset, pool, chunks, registry, clock, label_of, type_of)
    }

    /// [`AnalysisFrame::build_observed`] with an explicit chunk count
    /// (see [`AnalysisFrame::build_chunked`]).
    pub fn build_observed_chunked(
        dataset: &Dataset,
        pool: &Pool,
        chunks: usize,
        registry: &downlake_obs::Registry,
        clock: &dyn downlake_obs::Clock,
        label_of: impl Fn(FileHash) -> FileLabel + Sync,
        type_of: impl Fn(FileHash) -> Option<MalwareType> + Sync,
    ) -> Self {
        let frame = {
            let _span = registry.span("frame.build", clock);
            Self::build_chunked(dataset, pool, chunks, label_of, type_of)
        };
        registry.counter_add("frame.events", frame.ev_file.len() as u64);
        registry.counter_add("frame.files", frame.file_label.len() as u64);
        registry.counter_add("frame.processes", frame.proc_label.len() as u64);
        registry.counter_add("frame.urls", frame.url_e2ld.len() as u64);
        registry.gauge_max("frame.intern.e2lds", frame.e2lds.len() as u64);
        registry.gauge_max("frame.intern.signers", frame.signers.len() as u64);
        registry.gauge_max("frame.intern.packers", frame.packers.len() as u64);
        frame
    }

    /// Builds the frame through a [`LabelView`]'s closures.
    pub fn from_label_view(dataset: &Dataset, labels: &LabelView<'_>) -> Self {
        Self::build(dataset, |h| labels.label(h), |h| labels.malware_type(h))
    }

    /// Builds the frame through a [`LabelView`]'s closures on a pool.
    pub fn from_label_view_with(dataset: &Dataset, pool: &Pool, labels: &LabelView<'_>) -> Self {
        Self::build_with(
            dataset,
            pool,
            |h| labels.label(h),
            |h| labels.malware_type(h),
        )
    }

    /// Number of events.
    pub fn event_count(&self) -> usize {
        self.ev_file.len()
    }

    /// Number of distinct files.
    pub fn file_count(&self) -> usize {
        self.file_label.len()
    }

    /// Number of distinct process images.
    pub fn process_count(&self) -> usize {
        self.proc_label.len()
    }

    /// Number of distinct machines.
    pub fn machine_count(&self) -> usize {
        self.machine_count
    }

    /// Number of distinct e2LDs.
    pub fn e2ld_count(&self) -> usize {
        self.e2lds.len()
    }

    /// Per-file labels, indexed by [`FileId`].
    pub fn file_labels(&self) -> &[FileLabel] {
        &self.file_label
    }

    /// Per-file malware types, indexed by [`FileId`].
    pub fn file_types(&self) -> &[Option<MalwareType>] {
        &self.file_type
    }

    /// Per-file prevalence, indexed by [`FileId`].
    pub fn file_prevalences(&self) -> &[u32] {
        &self.file_prevalence
    }

    /// Per-process labels, indexed by [`ProcessId`].
    pub fn process_labels(&self) -> &[FileLabel] {
        &self.proc_label
    }

    /// Per-process malware types, indexed by [`ProcessId`].
    pub fn process_types(&self) -> &[Option<MalwareType>] {
        &self.proc_type
    }

    /// Per-process categories, indexed by [`ProcessId`].
    pub fn process_categories(&self) -> &[ProcessCategory] {
        &self.proc_category
    }

    /// Per-event file labels, parallel to the event order.
    pub fn event_file_labels(&self) -> &[FileLabel] {
        &self.ev_file_label
    }

    /// Per-event dense file ids, parallel to the event order.
    pub fn event_files(&self) -> &[FileId] {
        &self.ev_file
    }

    /// Per-event e2LD ids, parallel to the event order.
    pub fn event_e2lds(&self) -> &[E2ldId] {
        &self.ev_e2ld
    }

    /// Per-event month indexes (`u8::MAX` when the event's timestamp
    /// falls outside the study window), parallel to the event order.
    pub fn event_months(&self) -> &[u8] {
        &self.ev_month
    }

    /// Per-URL e2LD ids, indexed by [`UrlId`].
    pub fn url_e2lds(&self) -> &[E2ldId] {
        &self.url_e2ld
    }

    /// Resolves an e2LD id to its domain string.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this frame's dataset.
    pub fn e2ld_str(&self, id: E2ldId) -> &str {
        &self.e2lds[id.index()]
    }

    /// The machine → events CSR join, groups in dense-id (and therefore
    /// deterministic) order, each group's rows in time order.
    pub(crate) fn machines(&self) -> Adjacency<'_, MachineIdx> {
        Adjacency::new(&self.machine_offsets, &self.machine_event_idx)
    }

    /// The file → events CSR join, groups in dense-id order, each
    /// group's rows in time order.
    pub(crate) fn files(&self) -> Adjacency<'_, FileId> {
        Adjacency::new(&self.file_offsets, &self.file_event_idx)
    }

    /// The shared study-month partition of the event row space.
    pub(crate) fn months(&self) -> &RangePartition {
        &self.month_bounds
    }
}

/// Parallel [`csr_group`]: each chunk counting-sorts its own event range
/// into a mini-CSR, then the partials are merged row by row in chunk
/// order. Chunks are contiguous and visited in order, so every row's
/// positions come out ascending — exactly the sequential result.
fn csr_group_with(
    pool: &Pool,
    rows: usize,
    keys: &[u32],
    chunks: &[Range<usize>],
) -> (Vec<u32>, Vec<u32>) {
    if chunks.len() <= 1 {
        return csr_group(rows, keys.iter().copied());
    }
    let partials = pool.map(chunks, |_, range| {
        let mut offsets = vec![0u32; rows + 1];
        for &key in &keys[range.clone()] {
            offsets[key as usize + 1] += 1;
        }
        for row in 1..offsets.len() {
            offsets[row] += offsets[row - 1];
        }
        let mut cursor = offsets.clone();
        let mut values = vec![0u32; range.len()];
        for (position, &key) in keys[range.clone()].iter().enumerate() {
            let slot = &mut cursor[key as usize];
            values[*slot as usize] = (range.start + position) as u32;
            *slot += 1;
        }
        (offsets, values)
    });
    // Global row sizes = sum of the partial row sizes.
    let mut offsets = vec![0u32; rows + 1];
    for (partial_offsets, _) in &partials {
        for row in 0..rows {
            offsets[row + 1] += partial_offsets[row + 1] - partial_offsets[row];
        }
    }
    for row in 1..offsets.len() {
        offsets[row] += offsets[row - 1];
    }
    // Fill each row by concatenating the partials' row segments in chunk
    // order; segments carry global positions already.
    let mut values = vec![0u32; keys.len()];
    let mut cursor: Vec<u32> = offsets[..rows].to_vec();
    for (partial_offsets, partial_values) in &partials {
        for row in 0..rows {
            let lo = partial_offsets[row] as usize;
            let hi = partial_offsets[row + 1] as usize;
            if lo == hi {
                continue;
            }
            let dst = cursor[row] as usize;
            values[dst..dst + (hi - lo)].copy_from_slice(&partial_values[lo..hi]);
            cursor[row] += (hi - lo) as u32;
        }
    }
    (offsets, values)
}

/// Groups positions `0..keys.len()` by key via counting sort; within a
/// row, positions keep iteration (time) order.
fn csr_group(rows: usize, keys: impl Iterator<Item = u32> + Clone) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = vec![0u32; rows + 1];
    let mut len = 0usize;
    for key in keys.clone() {
        offsets[key as usize + 1] += 1;
        len += 1;
    }
    for row in 1..offsets.len() {
        offsets[row] += offsets[row - 1];
    }
    let mut cursor = offsets.clone();
    let mut values = vec![0u32; len];
    for (position, key) in keys.enumerate() {
        let slot = &mut cursor[key as usize];
        values[*slot as usize] = position as u32;
        *slot += 1;
    }
    (offsets, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileMeta, MachineId, SignerInfo, Url};

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let push = |b: &mut DatasetBuilder, file: u64, machine: u64, day: u32, url: &str| {
            b.push(RawEvent {
                file: FileHash::from_raw(file),
                file_meta: FileMeta {
                    signer: (file == 1).then(|| SignerInfo::valid("Acme", "ca")),
                    ..FileMeta::default()
                },
                machine: MachineId::from_raw(machine),
                process: FileHash::from_raw(900),
                process_meta: FileMeta {
                    disk_name: "chrome.exe".into(),
                    ..FileMeta::default()
                },
                url: url.parse::<Url>().unwrap(),
                timestamp: Timestamp::from_day(day),
                executed: true,
            });
        };
        push(&mut b, 1, 1, 2, "http://a.com/x");
        push(&mut b, 1, 2, 3, "http://a.com/x");
        push(&mut b, 2, 1, 40, "http://b.com/y");
        b.finish()
    }

    fn frame() -> AnalysisFrame {
        AnalysisFrame::build(
            &dataset(),
            |h| match h.raw() {
                1 => FileLabel::Benign,
                2 => FileLabel::Malicious,
                900 => FileLabel::Benign,
                _ => FileLabel::Unknown,
            },
            |h| (h.raw() == 2).then_some(MalwareType::Trojan),
        )
    }

    #[test]
    fn columns_are_parallel_and_resolved() {
        let f = frame();
        assert_eq!(f.event_count(), 3);
        assert_eq!(f.file_count(), 2);
        assert_eq!(f.process_count(), 1);
        assert_eq!(f.machine_count(), 2);
        assert_eq!(f.e2ld_count(), 2);
        assert_eq!(
            f.ev_file_label,
            vec![FileLabel::Benign, FileLabel::Benign, FileLabel::Malicious]
        );
        assert_eq!(f.ev_month, vec![0, 0, 1]);
        assert_eq!(f.e2ld_str(f.ev_e2ld[0]), "a.com");
        assert_eq!(f.e2ld_str(f.ev_e2ld[2]), "b.com");
        assert_eq!(f.file_prevalences(), &[2, 1]);
        assert_eq!(f.file_types()[1], Some(MalwareType::Trojan));
        assert!(f.ev_proc_category[0].is_browser());
        assert!(f.file_browser.iter().all(|&b| b));
    }

    #[test]
    fn signers_and_packers_are_interned() {
        let f = frame();
        assert_eq!(f.signers, vec!["Acme".to_owned()]);
        assert_eq!(f.file_signer, vec![Some(0), None]);
        assert!(f.packers.is_empty());
        assert_eq!(f.file_packer, vec![None, None]);
    }

    #[test]
    fn csr_rows_are_time_ordered() {
        let f = frame();
        // Machine 1 (dense 0) has events 0 and 2; machine 2 has event 1.
        assert_eq!(f.machines().rows(MachineIdx::from_raw(0)), &[0, 2]);
        assert_eq!(f.machines().rows(MachineIdx::from_raw(1)), &[1]);
        assert_eq!(f.files().rows(FileId::from_raw(0)), &[0, 1]);
        assert_eq!(f.files().rows(FileId::from_raw(1)), &[2]);
    }

    #[test]
    fn type_index_is_a_bijection_over_all() {
        let mut seen = [false; TYPE_COUNT];
        for ty in MalwareType::ALL {
            let i = type_index(ty);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn build_observed_records_frame_shape_without_perturbing_it() {
        use downlake_obs::{Registry, TestClock};
        let ds = dataset();
        let label = |h: FileHash| match h.raw() {
            1 | 900 => FileLabel::Benign,
            2 => FileLabel::Malicious,
            _ => FileLabel::Unknown,
        };
        let ty = |h: FileHash| (h.raw() == 2).then_some(MalwareType::Trojan);
        let observe = |threads: usize| {
            let registry = Registry::new();
            let clock = TestClock::with_tick(1);
            let f = AnalysisFrame::build_observed(
                &ds,
                &Pool::new(threads),
                &registry,
                &clock,
                label,
                ty,
            );
            (f, registry.snapshot())
        };
        let (f1, r1) = observe(1);
        let (f4, r4) = observe(4);
        let oracle = frame();
        // Observation must not perturb the frame at any width.
        for f in [&f1, &f4] {
            assert_eq!(f.ev_file_label, oracle.ev_file_label);
            assert_eq!(f.file_label, oracle.file_label);
            assert_eq!(f.signers, oracle.signers);
            assert_eq!(f.machine_event_idx, oracle.machine_event_idx);
        }
        assert_eq!(r1.counters, r4.counters);
        assert_eq!(r1.gauges, r4.gauges);
        assert_eq!(r1.counters["frame.events"], 3);
        assert_eq!(r1.counters["frame.files"], 2);
        assert_eq!(r1.gauges["frame.intern.signers"], 1);
        assert_eq!(r1.timings["frame.build"].count(), 1);
    }

    #[test]
    fn build_with_matches_sequential_build_at_any_width() {
        let ds = dataset();
        let label = |h: FileHash| match h.raw() {
            1 => FileLabel::Benign,
            2 => FileLabel::Malicious,
            900 => FileLabel::Benign,
            _ => FileLabel::Unknown,
        };
        let ty = |h: FileHash| (h.raw() == 2).then_some(MalwareType::Trojan);
        let oracle = AnalysisFrame::build(&ds, label, ty);
        for threads in [2, 3, 8] {
            let f = AnalysisFrame::build_with(&ds, &Pool::new(threads), label, ty);
            assert_eq!(f.ev_file_label, oracle.ev_file_label, "threads={threads}");
            assert_eq!(f.ev_e2ld, oracle.ev_e2ld);
            assert_eq!(f.ev_proc_category, oracle.ev_proc_category);
            assert_eq!(f.file_label, oracle.file_label);
            assert_eq!(f.file_signer, oracle.file_signer);
            assert_eq!(f.signers, oracle.signers);
            assert_eq!(f.machine_offsets, oracle.machine_offsets);
            assert_eq!(f.machine_event_idx, oracle.machine_event_idx);
            assert_eq!(f.file_offsets, oracle.file_offsets);
            assert_eq!(f.file_event_idx, oracle.file_event_idx);
        }
    }

    #[test]
    fn build_chunked_is_chunk_count_invariant() {
        let ds = dataset();
        let label = |h: FileHash| match h.raw() {
            1 | 900 => FileLabel::Benign,
            2 => FileLabel::Malicious,
            _ => FileLabel::Unknown,
        };
        let ty = |h: FileHash| (h.raw() == 2).then_some(MalwareType::Trojan);
        let oracle = AnalysisFrame::build(&ds, label, ty);
        // Chunk counts decoupled from the pool width — including more
        // chunks than rows — must reproduce the sequential frame.
        for chunks in [1, 2, 5, 16] {
            let f = AnalysisFrame::build_chunked(&ds, &Pool::new(2), chunks, label, ty);
            assert_eq!(f.ev_file_label, oracle.ev_file_label, "chunks={chunks}");
            assert_eq!(f.file_label, oracle.file_label);
            assert_eq!(f.file_signer, oracle.file_signer);
            assert_eq!(f.signers, oracle.signers);
            assert_eq!(f.machine_offsets, oracle.machine_offsets);
            assert_eq!(f.machine_event_idx, oracle.machine_event_idx);
            assert_eq!(f.file_event_idx, oracle.file_event_idx);
        }
    }

    #[test]
    fn parallel_csr_matches_sequential_on_awkward_chunking() {
        // 11 keys over 4 rows, cut into 3 uneven chunks.
        let keys = [2u32, 0, 1, 2, 2, 0, 3, 1, 0, 2, 0];
        let (seq_offsets, seq_values) = csr_group(4, keys.iter().copied());
        let chunks = partition(keys.len(), 3);
        let (par_offsets, par_values) = csr_group_with(&Pool::new(2), 4, &keys, &chunks);
        assert_eq!(par_offsets, seq_offsets);
        assert_eq!(par_values, seq_values);
    }
}
