//! Monthly collection summary (Table I).
//!
//! One query per entity stream per month: each month's event range comes
//! from the frame's shared [`RangePartition`](downlake_query::RangePartition),
//! and distinct machines / files / processes / URLs are `distinct_by`
//! projections with one stamp tag per month — group-major, no hash sets.
//! Label shares fold at each entity's first sighting.

use crate::frame::AnalysisFrame;
use crate::labels::LabelView;
use crate::stats::percent;
use downlake_query::{scan, Stamp};
use downlake_telemetry::Dataset;
use downlake_types::{FileLabel, Month, UrlLabel};
use serde::{Deserialize, Serialize};

/// Percentage shares of the labeled classes within one population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ClassShares {
    /// % benign.
    pub benign: f64,
    /// % likely benign.
    pub likely_benign: f64,
    /// % malicious.
    pub malicious: f64,
    /// % likely malicious.
    pub likely_malicious: f64,
}

impl ClassShares {
    /// % that stays unknown.
    pub fn unknown(&self) -> f64 {
        100.0 - self.benign - self.likely_benign - self.malicious - self.likely_malicious
    }
}

/// Per-class first-sighting tallies, folded into [`ClassShares`].
#[derive(Debug, Clone, Copy, Default)]
struct ClassCounts {
    benign: usize,
    likely_benign: usize,
    malicious: usize,
    likely_malicious: usize,
}

impl ClassCounts {
    fn bump(&mut self, label: FileLabel) {
        match label {
            FileLabel::Benign => self.benign += 1,
            FileLabel::LikelyBenign => self.likely_benign += 1,
            FileLabel::Malicious => self.malicious += 1,
            FileLabel::LikelyMalicious => self.likely_malicious += 1,
            FileLabel::Unknown => {}
        }
    }

    fn shares(self, total: usize) -> ClassShares {
        ClassShares {
            benign: percent(self.benign, total),
            likely_benign: percent(self.likely_benign, total),
            malicious: percent(self.malicious, total),
            likely_malicious: percent(self.likely_malicious, total),
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthSummary {
    /// The month.
    pub month: Month,
    /// Distinct active machines.
    pub machines: usize,
    /// Download events.
    pub events: usize,
    /// Distinct downloading processes.
    pub processes: usize,
    /// Label shares over those processes.
    pub process_shares: ClassShares,
    /// Distinct downloaded files.
    pub files: usize,
    /// Label shares over those files.
    pub file_shares: ClassShares,
    /// Distinct download URLs.
    pub urls: usize,
    /// % of URLs labeled benign.
    pub url_benign: f64,
    /// % of URLs labeled malicious.
    pub url_malicious: f64,
}

impl AnalysisFrame {
    /// Computes Table I: one summary per study month.
    ///
    /// `url_label` maps an e2LD to its URL label; it is called once per
    /// distinct URL per month.
    pub fn monthly_summary(&self, url_label: impl Fn(&str) -> UrlLabel) -> Vec<MonthSummary> {
        let mut mach_stamp = Stamp::new(self.machine_count());
        let mut file_stamp = Stamp::new(self.file_count());
        let mut proc_stamp = Stamp::new(self.process_count());
        let mut url_stamp = Stamp::new(self.url_e2ld.len());
        self.months()
            .groups()
            .map(|(m, rows)| {
                let month = Month::ALL[m];
                let tag = m as u32;

                let machines = scan(rows.clone())
                    .distinct_by(&mut mach_stamp, tag, |&e| self.ev_machine[e].index())
                    .count();

                let (files, file_counts) = scan(rows.clone())
                    .map(|e| self.ev_file[e].index())
                    .distinct_by(&mut file_stamp, tag, |&f| f)
                    .fold((0usize, ClassCounts::default()), |(n, mut c), f| {
                        c.bump(self.file_label[f]);
                        (n + 1, c)
                    });

                let (processes, process_counts) = scan(rows.clone())
                    .map(|e| self.ev_process[e].index())
                    .distinct_by(&mut proc_stamp, tag, |&p| p)
                    .fold((0usize, ClassCounts::default()), |(n, mut c), p| {
                        c.bump(self.proc_label[p]);
                        (n + 1, c)
                    });

                let (urls, url_benign, url_malicious) = scan(rows.clone())
                    .map(|e| self.ev_url[e].index())
                    .distinct_by(&mut url_stamp, tag, |&u| u)
                    .fold(
                        (0usize, 0usize, 0usize),
                        |(n, ben, mal), u| match url_label(&self.e2lds[self.url_e2ld[u].index()]) {
                            UrlLabel::Benign => (n + 1, ben + 1, mal),
                            UrlLabel::Malicious => (n + 1, ben, mal + 1),
                            UrlLabel::Unknown => (n + 1, ben, mal),
                        },
                    );

                MonthSummary {
                    month,
                    machines,
                    events: rows.len(),
                    processes,
                    process_shares: process_counts.shares(processes),
                    files,
                    file_shares: file_counts.shares(files),
                    urls,
                    url_benign: percent(url_benign, urls),
                    url_malicious: percent(url_malicious, urls),
                }
            })
            .collect()
    }
}

/// Table I (see [`AnalysisFrame::monthly_summary`]).
pub fn monthly_summary(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    url_label: impl Fn(&str) -> UrlLabel,
) -> Vec<MonthSummary> {
    AnalysisFrame::from_label_view(dataset, labels).monthly_summary(url_label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, Timestamp, Url};

    fn event(file: u64, machine: u64, day: u32, url: &str) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta::default(),
            machine: MachineId::from_raw(machine),
            process: FileHash::from_raw(500 + file % 2),
            process_meta: FileMeta {
                disk_name: "chrome.exe".into(),
                ..FileMeta::default()
            },
            url: url.parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(day),
            executed: true,
        }
    }

    #[test]
    fn per_month_rows() {
        let mut b = DatasetBuilder::new();
        b.push(event(1, 1, 5, "http://good.com/a")); // January
        b.push(event(2, 2, 6, "http://bad.ru/b")); // January
        b.push(event(3, 1, 40, "http://good.com/c")); // February
        let ds = b.finish();
        let view = LabelView::new(
            |h| match h.raw() {
                1 => FileLabel::Benign,
                2 => FileLabel::Malicious,
                500 | 501 => FileLabel::Benign,
                _ => FileLabel::Unknown,
            },
            |_| None,
        );
        let rows = monthly_summary(&ds, &view, |e2ld| match e2ld {
            "good.com" => UrlLabel::Benign,
            "bad.ru" => UrlLabel::Malicious,
            _ => UrlLabel::Unknown,
        });
        assert_eq!(rows.len(), 7);
        let jan = &rows[0];
        assert_eq!(jan.month, Month::January);
        assert_eq!(jan.machines, 2);
        assert_eq!(jan.events, 2);
        assert_eq!(jan.files, 2);
        assert!((jan.file_shares.benign - 50.0).abs() < 1e-9);
        assert!((jan.file_shares.malicious - 50.0).abs() < 1e-9);
        assert!((jan.file_shares.unknown() - 0.0).abs() < 1e-9);
        assert!((jan.url_benign - 50.0).abs() < 1e-9);
        assert!((jan.url_malicious - 50.0).abs() < 1e-9);
        assert_eq!(jan.process_shares.benign, 100.0);

        let feb = &rows[1];
        assert_eq!(feb.events, 1);
        assert!((feb.file_shares.unknown() - 100.0).abs() < 1e-9);
        let march = &rows[2];
        assert_eq!(march.events, 0);
    }

    #[test]
    fn entities_recount_across_months_but_not_within() {
        let mut b = DatasetBuilder::new();
        b.push(event(1, 1, 5, "http://good.com/a")); // January
        b.push(event(1, 1, 6, "http://good.com/a")); // January again
        b.push(event(1, 1, 40, "http://good.com/a")); // February
        let ds = b.finish();
        let view = LabelView::new(|_| FileLabel::Unknown, |_| None);
        let rows = monthly_summary(&ds, &view, |_| UrlLabel::Unknown);
        assert_eq!((rows[0].machines, rows[0].files, rows[0].urls), (1, 1, 1));
        assert_eq!(rows[0].events, 2);
        assert_eq!((rows[1].machines, rows[1].files, rows[1].urls), (1, 1, 1));
    }
}
