//! Monthly collection summary (Table I).
//!
//! Distinct machines / files / processes / URLs per month are counted
//! with stamp arrays over the frame's dense ids (one tag per month), and
//! label shares are bumped at each entity's first sighting — one pass
//! over each month's event range, no hash sets.

use crate::frame::{AnalysisFrame, Stamp};
use crate::labels::LabelView;
use crate::stats::percent;
use downlake_telemetry::Dataset;
use downlake_types::{FileLabel, Month, UrlLabel};
use serde::{Deserialize, Serialize};

/// Percentage shares of the labeled classes within one population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ClassShares {
    /// % benign.
    pub benign: f64,
    /// % likely benign.
    pub likely_benign: f64,
    /// % malicious.
    pub malicious: f64,
    /// % likely malicious.
    pub likely_malicious: f64,
}

impl ClassShares {
    pub(crate) fn from_counts(counts: [usize; 4], total: usize) -> Self {
        Self {
            benign: percent(counts[0], total),
            likely_benign: percent(counts[1], total),
            malicious: percent(counts[2], total),
            likely_malicious: percent(counts[3], total),
        }
    }

    /// % that stays unknown.
    pub fn unknown(&self) -> f64 {
        100.0 - self.benign - self.likely_benign - self.malicious - self.likely_malicious
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthSummary {
    /// The month.
    pub month: Month,
    /// Distinct active machines.
    pub machines: usize,
    /// Download events.
    pub events: usize,
    /// Distinct downloading processes.
    pub processes: usize,
    /// Label shares over those processes.
    pub process_shares: ClassShares,
    /// Distinct downloaded files.
    pub files: usize,
    /// Label shares over those files.
    pub file_shares: ClassShares,
    /// Distinct download URLs.
    pub urls: usize,
    /// % of URLs labeled benign.
    pub url_benign: f64,
    /// % of URLs labeled malicious.
    pub url_malicious: f64,
}

impl AnalysisFrame {
    /// Computes Table I: one summary per study month.
    ///
    /// `url_label` maps an e2LD to its URL label; it is called once per
    /// distinct URL per month.
    pub fn monthly_summary(&self, url_label: impl Fn(&str) -> UrlLabel) -> Vec<MonthSummary> {
        let mut mach_stamp = Stamp::new(self.machine_count());
        let mut file_stamp = Stamp::new(self.file_count());
        let mut proc_stamp = Stamp::new(self.process_count());
        let mut url_stamp = Stamp::new(self.url_e2ld.len());
        Month::ALL
            .into_iter()
            .map(|month| {
                let tag = month.index() as u32;
                let range = self.month_bounds[month.index()].clone();
                let mut machines = 0usize;
                let mut files = 0usize;
                let mut processes = 0usize;
                let mut urls = 0usize;
                let mut file_counts = [0usize; 4];
                let mut process_counts = [0usize; 4];
                let mut url_benign = 0usize;
                let mut url_malicious = 0usize;
                for e in range.start as usize..range.end as usize {
                    if mach_stamp.mark(self.ev_machine[e].index(), tag) {
                        machines += 1;
                    }
                    let file = self.ev_file[e].index();
                    if file_stamp.mark(file, tag) {
                        files += 1;
                        bump(&mut file_counts, self.file_label[file]);
                    }
                    let process = self.ev_process[e].index();
                    if proc_stamp.mark(process, tag) {
                        processes += 1;
                        bump(&mut process_counts, self.proc_label[process]);
                    }
                    let url = self.ev_url[e].index();
                    if url_stamp.mark(url, tag) {
                        urls += 1;
                        match url_label(&self.e2lds[self.url_e2ld[url].index()]) {
                            UrlLabel::Benign => url_benign += 1,
                            UrlLabel::Malicious => url_malicious += 1,
                            UrlLabel::Unknown => {}
                        }
                    }
                }
                MonthSummary {
                    month,
                    machines,
                    events: (range.end - range.start) as usize,
                    processes,
                    process_shares: ClassShares::from_counts(process_counts, processes),
                    files,
                    file_shares: ClassShares::from_counts(file_counts, files),
                    urls,
                    url_benign: percent(url_benign, urls),
                    url_malicious: percent(url_malicious, urls),
                }
            })
            .collect()
    }
}

/// Table I (see [`AnalysisFrame::monthly_summary`]).
pub fn monthly_summary(
    dataset: &Dataset,
    labels: &LabelView<'_>,
    url_label: impl Fn(&str) -> UrlLabel,
) -> Vec<MonthSummary> {
    AnalysisFrame::from_label_view(dataset, labels).monthly_summary(url_label)
}

fn bump(counts: &mut [usize; 4], label: FileLabel) {
    match label {
        FileLabel::Benign => counts[0] += 1,
        FileLabel::LikelyBenign => counts[1] += 1,
        FileLabel::Malicious => counts[2] += 1,
        FileLabel::LikelyMalicious => counts[3] += 1,
        FileLabel::Unknown => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{FileHash, FileMeta, MachineId, Timestamp, Url};

    fn event(file: u64, machine: u64, day: u32, url: &str) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta::default(),
            machine: MachineId::from_raw(machine),
            process: FileHash::from_raw(500 + file % 2),
            process_meta: FileMeta {
                disk_name: "chrome.exe".into(),
                ..FileMeta::default()
            },
            url: url.parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(day),
            executed: true,
        }
    }

    #[test]
    fn per_month_rows() {
        let mut b = DatasetBuilder::new();
        b.push(event(1, 1, 5, "http://good.com/a")); // January
        b.push(event(2, 2, 6, "http://bad.ru/b")); // January
        b.push(event(3, 1, 40, "http://good.com/c")); // February
        let ds = b.finish();
        let view = LabelView::new(
            |h| match h.raw() {
                1 => FileLabel::Benign,
                2 => FileLabel::Malicious,
                500 | 501 => FileLabel::Benign,
                _ => FileLabel::Unknown,
            },
            |_| None,
        );
        let rows = monthly_summary(&ds, &view, |e2ld| match e2ld {
            "good.com" => UrlLabel::Benign,
            "bad.ru" => UrlLabel::Malicious,
            _ => UrlLabel::Unknown,
        });
        assert_eq!(rows.len(), 7);
        let jan = &rows[0];
        assert_eq!(jan.month, Month::January);
        assert_eq!(jan.machines, 2);
        assert_eq!(jan.events, 2);
        assert_eq!(jan.files, 2);
        assert!((jan.file_shares.benign - 50.0).abs() < 1e-9);
        assert!((jan.file_shares.malicious - 50.0).abs() < 1e-9);
        assert!((jan.file_shares.unknown() - 0.0).abs() < 1e-9);
        assert!((jan.url_benign - 50.0).abs() < 1e-9);
        assert!((jan.url_malicious - 50.0).abs() < 1e-9);
        assert_eq!(jan.process_shares.benign, 100.0);

        let feb = &rows[1];
        assert_eq!(feb.events, 1);
        assert!((feb.file_shares.unknown() - 100.0).abs() < 1e-9);
        let march = &rows[2];
        assert_eq!(march.events, 0);
    }

    #[test]
    fn frame_and_legacy_paths_agree() {
        let mut b = DatasetBuilder::new();
        b.push(event(1, 1, 5, "http://good.com/a"));
        b.push(event(2, 2, 6, "http://bad.ru/b"));
        b.push(event(1, 2, 40, "http://good.com/a"));
        b.push(event(3, 1, 40, "http://good.com/c"));
        let ds = b.finish();
        let view = LabelView::new(
            |h| match h.raw() {
                1 | 500 | 501 => FileLabel::Benign,
                2 => FileLabel::Malicious,
                _ => FileLabel::Unknown,
            },
            |_| None,
        );
        let label_url = |e2ld: &str| match e2ld {
            "good.com" => UrlLabel::Benign,
            "bad.ru" => UrlLabel::Malicious,
            _ => UrlLabel::Unknown,
        };
        assert_eq!(
            monthly_summary(&ds, &view, label_url),
            crate::legacy::monthly_summary(&ds, &view, label_url)
        );
    }
}
