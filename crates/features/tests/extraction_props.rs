//! Property-based tests for feature extraction: totality, absence
//! conventions, and training-set construction.

use downlake_features::{
    build_training_set, Extractor, FEATURE_NAMES, NO_PROCESS, UNPACKED, UNSIGNED,
};
use downlake_groundtruth::{DomainFacts, UrlLabeler};
use downlake_telemetry::{DatasetBuilder, RawEvent};
use downlake_types::{
    AlexaRank, FileHash, FileLabel, FileMeta, MachineId, PackerInfo, SignerInfo, Timestamp, Url,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct EventSpec {
    file: u64,
    signer: Option<String>,
    packer: Option<String>,
    process_known: bool,
    rank: Option<u32>,
}

fn event_spec() -> impl Strategy<Value = EventSpec> {
    (
        1u64..50,
        proptest::option::of("[A-Z][a-z]{2,8} Ltd"),
        proptest::option::of("[A-Z]{3,6}"),
        any::<bool>(),
        proptest::option::of(1u32..1_000_000),
    )
        .prop_map(|(file, signer, packer, process_known, rank)| EventSpec {
            file,
            signer,
            packer,
            process_known,
            rank,
        })
}

fn materialise(spec: &EventSpec) -> RawEvent {
    RawEvent {
        file: FileHash::from_raw(spec.file),
        file_meta: FileMeta {
            size_bytes: 100,
            disk_name: "f.exe".into(),
            signer: spec
                .signer
                .as_ref()
                .map(|s| SignerInfo::valid(s.clone(), "some ca")),
            packer: spec.packer.as_ref().map(PackerInfo::new),
        },
        machine: MachineId::from_raw(spec.file % 7),
        process: FileHash::from_raw(if spec.process_known { 9_000 } else { 9_001 }),
        process_meta: FileMeta {
            disk_name: if spec.process_known {
                "chrome.exe".into()
            } else {
                "mystery.exe".into()
            },
            signer: Some(SignerInfo::valid("Google Inc", "verisign")),
            ..FileMeta::default()
        },
        url: Url::from_parts("http", "host.example.com", "/f.exe").expect("static"),
        timestamp: Timestamp::from_day((spec.file % 200) as u32),
        executed: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Extraction is total: eight non-empty values per event, with the
    /// absence placeholders exactly where metadata is missing.
    #[test]
    fn extraction_is_total(specs in proptest::collection::vec(event_spec(), 1..40)) {
        let mut builder = DatasetBuilder::new();
        for spec in &specs {
            builder.push(materialise(spec));
        }
        let dataset = builder.finish();
        let mut urls = UrlLabeler::new();
        if let Some(rank) = specs[0].rank {
            urls.insert(
                "example.com",
                DomainFacts {
                    rank: AlexaRank::ranked(rank),
                    ..DomainFacts::default()
                },
            );
        }
        let extractor = Extractor::new(&dataset, &urls);
        for event in dataset.events() {
            let vector = extractor.extract_event(event);
            for (i, value) in vector.values().iter().enumerate() {
                prop_assert!(!value.is_empty(), "feature {} empty", FEATURE_NAMES[i]);
                prop_assert_ne!(*value, NO_PROCESS, "process is always interned here");
            }
            let meta = &dataset.files().get(event.file).expect("interned").meta;
            prop_assert_eq!(
                vector.value(0) == UNSIGNED,
                meta.signer.is_none(),
                "unsigned placeholder tracks metadata"
            );
            prop_assert_eq!(vector.value(2) == UNPACKED, meta.packer.is_none());
        }
    }

    /// Training sets contain exactly the confidently labeled vectors.
    #[test]
    fn training_set_counts(specs in proptest::collection::vec(event_spec(), 1..40)) {
        let mut builder = DatasetBuilder::new();
        for spec in &specs {
            builder.push(materialise(spec));
        }
        let dataset = builder.finish();
        let urls = UrlLabeler::new();
        let extractor = Extractor::new(&dataset, &urls);
        let vectors = extractor.extract_files();

        // Label files round-robin over the five label classes.
        let label_of = |h: FileHash| match h.raw() % 5 {
            0 => FileLabel::Benign,
            1 => FileLabel::Malicious,
            2 => FileLabel::LikelyBenign,
            3 => FileLabel::LikelyMalicious,
            _ => FileLabel::Unknown,
        };
        let confident = vectors
            .iter()
            .filter(|(h, _)| label_of(*h).is_confident())
            .count();
        let instances = build_training_set(
            vectors.iter().map(|(h, v)| (v, label_of(h))),
        );
        prop_assert_eq!(instances.len(), confident);
        prop_assert_eq!(instances.attr_count(), FEATURE_NAMES.len());
    }
}
