//! Feature extraction for the rule-based classifier (Table XV).
//!
//! Eight intuitive, easy-to-measure categorical features per downloaded
//! file:
//!
//! | # | feature | source |
//! |---|---------|--------|
//! | 0 | file's signer | the file's code-signing subject |
//! | 1 | file's CA | the CA in the file's chain of trust |
//! | 2 | file's packer | recognised packer of the file |
//! | 3 | process's signer | signer of the downloading process |
//! | 4 | process's CA | CA of the downloading process |
//! | 5 | process's packer | packer of the downloading process |
//! | 6 | process's type | browser / windows / java / acrobat / other |
//! | 7 | domain's Alexa rank | coarse rank bucket of the download e2LD |
//!
//! Absence is a value, not a missing datum: an unsigned file has
//! `"(unsigned)"` as its signer — the paper's own example rules test for
//! exactly that (*"IF (file is not signed) AND …"*).
//!
//! A file downloaded several times gets the context of its **first**
//! download event (time order), which is both deterministic and what an
//! on-line deployment would see.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use downlake_groundtruth::UrlLabeler;
use downlake_rulelearn::{Instances, InstancesBuilder};
use downlake_telemetry::{Dataset, DownloadEvent};
use downlake_types::{FileHash, FileLabel, FileMeta, ProcessCategory};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The feature names, in vector order (also the attribute names of the
/// training sets this crate builds).
pub const FEATURE_NAMES: [&str; 8] = [
    "file's signer",
    "file's CA",
    "file's packer",
    "process's signer",
    "process's CA",
    "process's packer",
    "process's type",
    "domain's Alexa rank",
];

/// Placeholder value for unsigned files/processes.
pub const UNSIGNED: &str = "(unsigned)";
/// Placeholder value for unpacked files/processes.
pub const UNPACKED: &str = "(unpacked)";
/// Placeholder when the downloading process is unknown to the dataset.
pub const NO_PROCESS: &str = "(no process)";

/// One extracted feature vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureVector {
    values: [String; 8],
}

impl FeatureVector {
    /// Assembles a vector from raw values in [`FEATURE_NAMES`] order.
    /// Used by the online extractor in `downlake-stream`, which builds
    /// the same eight values incrementally.
    pub fn from_values(values: [String; 8]) -> Self {
        Self { values }
    }

    /// The raw values in [`FEATURE_NAMES`] order.
    pub fn values(&self) -> [&str; 8] {
        self.values.each_ref().map(String::as_str)
    }

    /// The value of one feature by index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn value(&self, index: usize) -> &str {
        &self.values[index]
    }
}

/// Extracts feature vectors from a dataset.
#[derive(Debug)]
pub struct Extractor<'a> {
    dataset: &'a Dataset,
    urls: &'a UrlLabeler,
}

impl<'a> Extractor<'a> {
    /// Creates an extractor over a dataset and the URL/rank directory.
    pub fn new(dataset: &'a Dataset, urls: &'a UrlLabeler) -> Self {
        Self { dataset, urls }
    }

    /// Extracts the feature vector of a single event.
    pub fn extract_event(&self, event: &DownloadEvent) -> FeatureVector {
        let file_meta = self
            .dataset
            .files()
            .get(event.file)
            .map(|r| r.meta.clone())
            .unwrap_or_default();
        let process = self.dataset.processes().get(event.process);
        let e2ld = self.dataset.url_of(event).e2ld();
        let rank_bucket = self.urls.rank(e2ld).bucket();

        let (psigner, pca, ppacker, ptype) = match process {
            Some(rec) => (
                signer_of(&rec.meta),
                ca_of(&rec.meta),
                packer_of(&rec.meta),
                category_feature(rec.category).to_owned(),
            ),
            None => (
                NO_PROCESS.to_owned(),
                NO_PROCESS.to_owned(),
                NO_PROCESS.to_owned(),
                NO_PROCESS.to_owned(),
            ),
        };

        FeatureVector {
            values: [
                signer_of(&file_meta),
                ca_of(&file_meta),
                packer_of(&file_meta),
                psigner,
                pca,
                ppacker,
                ptype,
                rank_bucket.name().to_owned(),
            ],
        }
    }

    /// Extracts one vector per distinct file, using each file's first
    /// download event.
    pub fn extract_files(&self) -> FileVectors {
        self.extract_first_seen(self.dataset.events())
    }

    /// Extracts one vector per distinct file over an event slice (e.g.
    /// one month), using each file's first event inside the slice.
    ///
    /// The result iterates in first-sighting order, so anything built
    /// from it — training sets in particular — is deterministic.
    pub fn extract_first_seen(&self, events: &[DownloadEvent]) -> FileVectors {
        let mut out = FileVectors::default();
        for event in events {
            if !out.contains(event.file) {
                out.push(event.file, self.extract_event(event));
            }
        }
        out
    }
}

/// Per-file feature vectors in deterministic first-sighting order.
///
/// A plain `HashMap<FileHash, FeatureVector>` iterates in randomized
/// hasher order, which leaks into rule-learning results (instance order
/// breaks learner ties); this container iterates in the order files were
/// first seen while keeping O(1) membership checks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileVectors {
    entries: Vec<(FileHash, FeatureVector)>,
    index: HashMap<FileHash, usize>,
}

impl FileVectors {
    /// Appends a vector for `file` unless one exists, preserving
    /// first-sighting order. Returns whether the vector was inserted.
    pub fn push(&mut self, file: FileHash, vector: FeatureVector) -> bool {
        if self.index.contains_key(&file) {
            return false;
        }
        self.index.insert(file, self.entries.len());
        self.entries.push((file, vector));
        true
    }

    /// Iterates `(file, vector)` in first-sighting order.
    pub fn iter(&self) -> impl Iterator<Item = (FileHash, &FeatureVector)> {
        self.entries.iter().map(|(h, v)| (*h, v))
    }

    /// Whether the file has a vector.
    pub fn contains(&self, file: FileHash) -> bool {
        self.index.contains_key(&file)
    }

    /// The vector of one file, if present.
    pub fn get(&self, file: FileHash) -> Option<&FeatureVector> {
        self.index.get(&file).map(|&i| &self.entries[i].1)
    }

    /// Number of distinct files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no file has a vector.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The signer feature value of a file or process: the signing subject
/// when validly signed, [`UNSIGNED`] otherwise.
pub fn signer_of(meta: &FileMeta) -> String {
    meta.signer
        .as_ref()
        .filter(|s| s.valid)
        .map(|s| s.subject.clone())
        .unwrap_or_else(|| UNSIGNED.to_owned())
}

/// The CA feature value: the CA of a valid signing chain, [`UNSIGNED`]
/// otherwise.
pub fn ca_of(meta: &FileMeta) -> String {
    meta.signer
        .as_ref()
        .filter(|s| s.valid)
        .map(|s| s.ca.clone())
        .unwrap_or_else(|| UNSIGNED.to_owned())
}

/// The packer feature value: the recognised packer name, [`UNPACKED`]
/// otherwise.
pub fn packer_of(meta: &FileMeta) -> String {
    meta.packer
        .as_ref()
        .map(|p| p.name.clone())
        .unwrap_or_else(|| UNPACKED.to_owned())
}

/// The categorical value of the process-type feature.
pub fn category_feature(category: ProcessCategory) -> &'static str {
    match category {
        ProcessCategory::Browser(_) => "browser",
        ProcessCategory::Windows => "windows",
        ProcessCategory::Java => "java",
        ProcessCategory::AcrobatReader => "acrobat reader",
        ProcessCategory::Other => "other",
    }
}

/// Builds a rule-learning training set from labeled feature vectors.
///
/// Only confidently labeled files participate (benign / malicious), as
/// in §VI-D's training-set construction; *likely* labels are excluded.
pub fn build_training_set<'a>(
    vectors: impl IntoIterator<Item = (&'a FeatureVector, FileLabel)>,
) -> Instances {
    let mut builder = InstancesBuilder::new(&FEATURE_NAMES, &["benign", "malicious"]);
    for (vector, label) in vectors {
        let class = match label {
            FileLabel::Benign => "benign",
            FileLabel::Malicious => "malicious",
            _ => continue,
        };
        builder.push(&vector.values(), class);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_groundtruth::DomainFacts;
    use downlake_telemetry::{DatasetBuilder, RawEvent};
    use downlake_types::{AlexaRank, MachineId, PackerInfo, SignerInfo, Timestamp, Url};

    fn meta(signer: Option<&str>, packer: Option<&str>, disk: &str) -> FileMeta {
        FileMeta {
            size_bytes: 1000,
            disk_name: disk.into(),
            signer: signer.map(|s| SignerInfo::valid(s, "thawte code signing ca g2")),
            packer: packer.map(PackerInfo::new),
        }
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.push(RawEvent {
            file: FileHash::from_raw(1),
            file_meta: meta(Some("Somoto Ltd."), Some("NSIS"), "setup.exe"),
            machine: MachineId::from_raw(1),
            process: FileHash::from_raw(100),
            process_meta: meta(Some("Google Inc"), None, "chrome.exe"),
            url: "http://dl.softonic.com/f/setup.exe".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(3),
            executed: true,
        });
        b.push(RawEvent {
            file: FileHash::from_raw(2),
            file_meta: meta(None, None, "tool.exe"),
            machine: MachineId::from_raw(2),
            process: FileHash::from_raw(101),
            process_meta: meta(Some("Microsoft Windows"), None, "svchost.exe"),
            url: "http://wipmsc.ru/x/tool.exe".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(4),
            executed: true,
        });
        b.finish()
    }

    fn labeler() -> UrlLabeler {
        let mut l = UrlLabeler::new();
        l.insert(
            "softonic.com",
            DomainFacts {
                rank: AlexaRank::ranked(170),
                curated_whitelist: true,
                ..DomainFacts::default()
            },
        );
        l
    }

    #[test]
    fn extracts_all_eight_features() {
        let ds = dataset();
        let urls = labeler();
        let ex = Extractor::new(&ds, &urls);
        let v = ex.extract_event(&ds.events()[0]);
        assert_eq!(v.value(0), "Somoto Ltd.");
        assert_eq!(v.value(1), "thawte code signing ca g2");
        assert_eq!(v.value(2), "NSIS");
        assert_eq!(v.value(3), "Google Inc");
        assert_eq!(v.value(5), UNPACKED);
        assert_eq!(v.value(6), "browser");
        assert_eq!(v.value(7), "top 1k");
    }

    #[test]
    fn absence_values_are_explicit() {
        let ds = dataset();
        let urls = labeler();
        let ex = Extractor::new(&ds, &urls);
        let v = ex.extract_event(&ds.events()[1]);
        assert_eq!(v.value(0), UNSIGNED);
        assert_eq!(v.value(1), UNSIGNED);
        assert_eq!(v.value(2), UNPACKED);
        assert_eq!(v.value(6), "windows");
        assert_eq!(v.value(7), "unranked");
    }

    #[test]
    fn per_file_extraction_uses_first_event() {
        let ds = dataset();
        let urls = labeler();
        let ex = Extractor::new(&ds, &urls);
        let map = ex.extract_files();
        assert_eq!(map.len(), 2);
        assert_eq!(
            map.get(FileHash::from_raw(1)).unwrap().value(0),
            "Somoto Ltd."
        );
    }

    #[test]
    fn training_set_skips_unconfident_labels() {
        let ds = dataset();
        let urls = labeler();
        let ex = Extractor::new(&ds, &urls);
        let map = ex.extract_files();
        let v1 = map.get(FileHash::from_raw(1)).unwrap();
        let v2 = map.get(FileHash::from_raw(2)).unwrap();
        let inst = build_training_set([
            (v1, FileLabel::Malicious),
            (v2, FileLabel::LikelyMalicious),
            (v2, FileLabel::Unknown),
        ]);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.schema().classes(), &["benign", "malicious"]);
        assert_eq!(inst.attr_count(), 8);
    }
}
