//! The AV engine roster and per-vendor label grammars.
//!
//! §II-B splits VirusTotal's 50+ engines into ten "trusted" vendors and
//! the rest. §II-C uses five *leading* engines (Microsoft, Symantec,
//! TrendMicro, Kaspersky, McAfee) for behaviour-type extraction, because a
//! label interpretation map exists for them. The grammars below emit label
//! strings in each vendor's authentic format so the AVType reimplementation
//! parses realistic input.

use downlake_types::MalwareType;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Whether an engine belongs to the trusted tier (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineTier {
    /// One of the ten most popular vendors; a single detection from this
    /// tier makes a file *malicious*.
    Trusted,
    /// Everything else; detections only support *likely malicious*.
    Other,
}

/// The label-string dialect an engine emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelGrammar {
    /// `PWS:Win32/Zbot`, `TrojanDownloader:Win32/Agent`.
    Microsoft,
    /// `Trojan.Zbot`, `Downloader`, `Infostealer.Banker`.
    Symantec,
    /// `TROJ_FAKEAV.SMU1`, `TSPY_ZBOT.ABC`.
    TrendMicro,
    /// `Trojan-Spy.Win32.Zbot.ruxa`, `Trojan-Downloader.Win32.Agent.heqj`.
    Kaspersky,
    /// `PWS-Zbot`, `Downloader-FYH!6C7411D1C043`, `Artemis!DEADBEEF`.
    McAfee,
    /// Generic third-tier grammar: `Gen:Variant.Zbot.17`, `Win32.Malware!x`.
    Generic,
}

/// One anti-virus engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvEngine {
    /// Vendor name as it appears in scan reports.
    pub name: &'static str,
    /// Trust tier.
    pub tier: EngineTier,
    /// Label dialect.
    pub grammar: LabelGrammar,
    /// Detection threshold in `[0, 1]`: the engine flags a file it scans
    /// iff the file's latent detectability is at least this value. Trusted
    /// engines sit at or below 0.8 (so destiny-malicious files are always
    /// caught by someone); lax engines reach much lower.
    pub threshold: f64,
}

/// The five leading engines used for behaviour-type extraction (§II-C).
pub const LEADING_ENGINES: [&str; 5] =
    ["Microsoft", "Symantec", "TrendMicro", "Kaspersky", "McAfee"];

/// Builds the full 52-engine roster: 10 trusted + 42 others.
pub fn engine_roster() -> Vec<AvEngine> {
    let mut roster = vec![
        AvEngine {
            name: "Microsoft",
            tier: EngineTier::Trusted,
            grammar: LabelGrammar::Microsoft,
            threshold: 0.70,
        },
        AvEngine {
            name: "Symantec",
            tier: EngineTier::Trusted,
            grammar: LabelGrammar::Symantec,
            threshold: 0.72,
        },
        AvEngine {
            name: "TrendMicro",
            tier: EngineTier::Trusted,
            grammar: LabelGrammar::TrendMicro,
            threshold: 0.68,
        },
        AvEngine {
            name: "Kaspersky",
            tier: EngineTier::Trusted,
            grammar: LabelGrammar::Kaspersky,
            threshold: 0.62,
        },
        AvEngine {
            name: "McAfee",
            tier: EngineTier::Trusted,
            grammar: LabelGrammar::McAfee,
            threshold: 0.66,
        },
        AvEngine {
            name: "Avast",
            tier: EngineTier::Trusted,
            grammar: LabelGrammar::Generic,
            threshold: 0.74,
        },
        AvEngine {
            name: "Bitdefender",
            tier: EngineTier::Trusted,
            grammar: LabelGrammar::Generic,
            threshold: 0.76,
        },
        AvEngine {
            name: "ESET",
            tier: EngineTier::Trusted,
            grammar: LabelGrammar::Generic,
            threshold: 0.78,
        },
        AvEngine {
            name: "Sophos",
            tier: EngineTier::Trusted,
            grammar: LabelGrammar::Generic,
            threshold: 0.79,
        },
        AvEngine {
            name: "F-Secure",
            tier: EngineTier::Trusted,
            grammar: LabelGrammar::Generic,
            threshold: 0.80,
        },
    ];
    const OTHER_NAMES: [&str; 42] = [
        "AegisLab",
        "Agnitum",
        "AhnLab",
        "Antiy",
        "Arcabit",
        "Baidu",
        "ByteHero",
        "CatQuick",
        "ClamView",
        "CMC",
        "Comodo",
        "Cyren",
        "DrWeb",
        "Emsisoft",
        "Fortinet",
        "GData",
        "Ikarus",
        "Jiangmin",
        "K7",
        "Kingsoft",
        "Malwarebytes",
        "MaxSecure",
        "eScan",
        "NanoAv",
        "Norman",
        "nProtect",
        "Panda",
        "Qihoo",
        "Rising",
        "SecureAge",
        "SUPERAnti",
        "Tencent",
        "TheHacker",
        "TotalDefense",
        "VBA32",
        "VIPRE",
        "ViRobot",
        "Webroot",
        "Yandex",
        "Zillya",
        "ZoneAlarm",
        "Zoner",
    ];
    for (i, name) in OTHER_NAMES.iter().enumerate() {
        // Thresholds spread over [0.25, 0.55]: lax engines flag files the
        // trusted tier has no signature for, producing *likely malicious*.
        let threshold = 0.25 + 0.30 * (i as f64 / (OTHER_NAMES.len() - 1) as f64);
        roster.push(AvEngine {
            name,
            tier: EngineTier::Other,
            grammar: LabelGrammar::Generic,
            threshold,
        });
    }
    roster
}

impl AvEngine {
    /// Emits a label string for a detected file.
    ///
    /// `ty` is the file's behaviour type; `family` its family token, if
    /// nameable; `informative` controls whether the label carries the
    /// type keyword or degrades to the vendor's generic form (Artemis,
    /// Generic.dx, heuristic names).
    pub fn render_label<R: Rng + ?Sized>(
        &self,
        ty: MalwareType,
        family: Option<&str>,
        informative: bool,
        rng: &mut R,
    ) -> String {
        let fam = family.map(capitalize);
        let fam = fam.as_deref();
        match self.grammar {
            LabelGrammar::Microsoft => microsoft_label(ty, fam, informative, rng),
            LabelGrammar::Symantec => symantec_label(ty, fam, informative, rng),
            LabelGrammar::TrendMicro => trendmicro_label(ty, fam, informative, rng),
            LabelGrammar::Kaspersky => kaspersky_label(ty, fam, informative, rng),
            LabelGrammar::McAfee => mcafee_label(ty, fam, informative, rng),
            LabelGrammar::Generic => generic_label(ty, fam, informative, rng),
        }
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

fn suffix<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

fn hex_suffix<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!("{:012X}", rng.gen_range(0u64..0xFFFF_FFFF_FFFF))
}

fn microsoft_label<R: Rng + ?Sized>(
    ty: MalwareType,
    family: Option<&str>,
    informative: bool,
    rng: &mut R,
) -> String {
    let fam = family
        .map(str::to_owned)
        .unwrap_or_else(|| format!("Agent.{}", suffix(rng, 2).to_uppercase()));
    if !informative {
        // Vendor-generic detections; occasionally a bare trojan label.
        return if rng.gen_bool(0.15) {
            format!("Trojan:Win32/Wacatac.{}!ml", suffix(rng, 1).to_uppercase())
        } else {
            format!("Program:Win32/Wacapew.{}!ml", suffix(rng, 1).to_uppercase())
        };
    }
    let prefix = match ty {
        MalwareType::Dropper => "TrojanDownloader",
        MalwareType::Banker => "PWS",
        MalwareType::Bot => "Backdoor",
        MalwareType::FakeAv => "Rogue",
        MalwareType::Ransomware => "Ransom",
        MalwareType::Worm => "Worm",
        MalwareType::Spyware => "TrojanSpy",
        MalwareType::Adware => "Adware",
        MalwareType::Pup => "PUA",
        MalwareType::Trojan | MalwareType::Undefined => "Trojan",
    };
    format!("{prefix}:Win32/{fam}")
}

fn symantec_label<R: Rng + ?Sized>(
    ty: MalwareType,
    family: Option<&str>,
    informative: bool,
    rng: &mut R,
) -> String {
    let fam = family
        .map(str::to_owned)
        .unwrap_or_else(|| format!("Gen.{}", suffix(rng, 3)));
    if !informative {
        return if rng.gen_bool(0.15) {
            format!("Trojan.Gen.{}", rng.gen_range(2..9))
        } else {
            format!("WS.Reputation.{}", rng.gen_range(1..3))
        };
    }
    match ty {
        MalwareType::Dropper => format!("Downloader.{fam}"),
        MalwareType::Banker => format!("Infostealer.{fam}"),
        MalwareType::Bot => format!("Backdoor.{fam}"),
        MalwareType::FakeAv => format!("FakeAV.{fam}"),
        MalwareType::Ransomware => format!("Ransomlock.{fam}"),
        MalwareType::Worm => format!("W32.{fam}.Worm"),
        MalwareType::Spyware => format!("Spyware.{fam}"),
        MalwareType::Adware => format!("Adware.{fam}"),
        MalwareType::Pup => format!("PUA.{fam}"),
        MalwareType::Trojan | MalwareType::Undefined => format!("Trojan.{fam}"),
    }
}

fn trendmicro_label<R: Rng + ?Sized>(
    ty: MalwareType,
    family: Option<&str>,
    informative: bool,
    rng: &mut R,
) -> String {
    let fam = family
        .map(|f| f.to_uppercase())
        .unwrap_or_else(|| format!("GEN{}", suffix(rng, 2).to_uppercase()));
    let tag = suffix(rng, 3).to_uppercase();
    if !informative {
        return if rng.gen_bool(0.15) {
            format!(
                "TROJ_GEN.R{:03}C{}",
                rng.gen_range(0..999),
                rng.gen_range(0..9)
            )
        } else {
            format!("Cryp_Xed-{}", rng.gen_range(10..60))
        };
    }
    let prefix = match ty {
        MalwareType::Dropper => "TROJ_DLOADR",
        MalwareType::Banker => "TSPY_BANKER",
        MalwareType::Bot => "BKDR",
        MalwareType::FakeAv => "TROJ_FAKEAV",
        MalwareType::Ransomware => "RANSOM",
        MalwareType::Worm => "WORM",
        MalwareType::Spyware => "TSPY",
        MalwareType::Adware => "ADW",
        MalwareType::Pup => "PUA",
        MalwareType::Trojan | MalwareType::Undefined => "TROJ",
    };
    // When the prefix already names the behaviour, the family rides in
    // the variant position, e.g. TROJ_FAKEAV.SMU1.
    if matches!(
        ty,
        MalwareType::Trojan
            | MalwareType::Undefined
            | MalwareType::Worm
            | MalwareType::Bot
            | MalwareType::Spyware
            | MalwareType::Adware
            | MalwareType::Pup
    ) {
        format!("{prefix}_{fam}.{tag}")
    } else {
        format!("{prefix}.{tag}")
    }
}

fn kaspersky_label<R: Rng + ?Sized>(
    ty: MalwareType,
    family: Option<&str>,
    informative: bool,
    rng: &mut R,
) -> String {
    let fam = family
        .map(str::to_owned)
        .unwrap_or_else(|| "Agent".to_owned());
    let variant = suffix(rng, 4);
    if !informative {
        return if rng.gen_bool(0.15) {
            format!("Trojan.Win32.Generic.{variant}")
        } else {
            "UDS:DangerousObject.Multi.Generic".to_owned()
        };
    }
    match ty {
        MalwareType::Dropper => format!("Trojan-Downloader.Win32.{fam}.{variant}"),
        MalwareType::Banker => format!("Trojan-Banker.Win32.{fam}.{variant}"),
        MalwareType::Bot => format!("Backdoor.Win32.{fam}.{variant}"),
        MalwareType::FakeAv => format!("Trojan-FakeAV.Win32.{fam}.{variant}"),
        MalwareType::Ransomware => format!("Trojan-Ransom.Win32.{fam}.{variant}"),
        MalwareType::Worm => format!("Worm.Win32.{fam}.{variant}"),
        MalwareType::Spyware => format!("Trojan-Spy.Win32.{fam}.{variant}"),
        MalwareType::Adware => format!("not-a-virus:AdWare.Win32.{fam}.{variant}"),
        MalwareType::Pup => format!("not-a-virus:WebToolbar.Win32.{fam}.{variant}"),
        MalwareType::Trojan | MalwareType::Undefined => {
            format!("Trojan.Win32.{fam}.{variant}")
        }
    }
}

fn mcafee_label<R: Rng + ?Sized>(
    ty: MalwareType,
    family: Option<&str>,
    informative: bool,
    rng: &mut R,
) -> String {
    if !informative {
        return if rng.gen_bool(0.15) {
            format!("Generic.dx!{}", suffix(rng, 3))
        } else {
            format!("Artemis!{}", hex_suffix(rng))
        };
    }
    let fam = family
        .map(str::to_owned)
        .unwrap_or_else(|| format!("FYH!{}", hex_suffix(rng)));
    match ty {
        MalwareType::Dropper => format!("Downloader-{fam}"),
        MalwareType::Banker => format!("PWS-{fam}"),
        MalwareType::Bot => format!("BackDoor-{fam}"),
        MalwareType::FakeAv => format!("FakeAlert-{fam}"),
        MalwareType::Ransomware => format!("Ransom-{fam}"),
        MalwareType::Worm => format!("W32/{fam}.worm"),
        MalwareType::Spyware => format!("Spy-{fam}"),
        MalwareType::Adware => format!("Adware-{fam}"),
        MalwareType::Pup => format!("Program.PUP-{fam}"),
        MalwareType::Trojan | MalwareType::Undefined => format!("Generic.{}", suffix(rng, 2)),
    }
}

fn generic_label<R: Rng + ?Sized>(
    ty: MalwareType,
    family: Option<&str>,
    informative: bool,
    rng: &mut R,
) -> String {
    let fam = family
        .map(str::to_owned)
        .unwrap_or_else(|| "Kryptik".to_owned());
    if !informative {
        return match rng.gen_range(0..3u8) {
            0 => format!("Gen:Variant.{fam}.{}", rng.gen_range(1..90)),
            1 => "Suspicious.Cloud".to_owned(),
            _ => format!("Malware.Heuristic!{}", rng.gen_range(10..99)),
        };
    }
    format!("Win32.{}.{fam}.{}", type_keyword(ty), rng.gen_range(1..90))
}

fn type_keyword(ty: MalwareType) -> &'static str {
    match ty {
        MalwareType::Dropper => "Downloader",
        MalwareType::Banker => "Banker",
        MalwareType::Bot => "Backdoor",
        MalwareType::FakeAv => "FakeAV",
        MalwareType::Ransomware => "Ransom",
        MalwareType::Worm => "Worm",
        MalwareType::Spyware => "Spyware",
        MalwareType::Adware => "Adware",
        MalwareType::Pup => "PUP",
        MalwareType::Trojan => "Trojan",
        MalwareType::Undefined => "Generic",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn roster_composition() {
        let roster = engine_roster();
        assert_eq!(roster.len(), 52);
        assert_eq!(
            roster
                .iter()
                .filter(|e| e.tier == EngineTier::Trusted)
                .count(),
            10
        );
        for lead in LEADING_ENGINES {
            assert!(roster.iter().any(|e| e.name == lead), "missing {lead}");
        }
    }

    #[test]
    fn trusted_thresholds_cover_destiny_malicious() {
        // A file with detectability ≥ 0.8 must be detectable by at least
        // one trusted engine.
        let roster = engine_roster();
        let min_trusted = roster
            .iter()
            .filter(|e| e.tier == EngineTier::Trusted)
            .map(|e| e.threshold)
            .fold(f64::INFINITY, f64::min);
        assert!(min_trusted <= 0.80);
        // And nothing in the trusted tier fires below 0.55 (likely-
        // malicious band stays trusted-clean).
        assert!(roster
            .iter()
            .filter(|e| e.tier == EngineTier::Trusted)
            .all(|e| e.threshold > 0.55));
    }

    #[test]
    fn labels_follow_vendor_grammars() {
        let roster = engine_roster();
        let mut rng = SmallRng::seed_from_u64(1);
        let ms = roster.iter().find(|e| e.name == "Microsoft").unwrap();
        let label = ms.render_label(MalwareType::Banker, Some("zbot"), true, &mut rng);
        assert_eq!(label, "PWS:Win32/Zbot");

        let kasp = roster.iter().find(|e| e.name == "Kaspersky").unwrap();
        let label = kasp.render_label(MalwareType::Dropper, Some("agent"), true, &mut rng);
        assert!(
            label.starts_with("Trojan-Downloader.Win32.Agent."),
            "{label}"
        );

        let tm = roster.iter().find(|e| e.name == "TrendMicro").unwrap();
        let label = tm.render_label(MalwareType::FakeAv, None, true, &mut rng);
        assert!(label.starts_with("TROJ_FAKEAV."), "{label}");

        let mc = roster.iter().find(|e| e.name == "McAfee").unwrap();
        let label = mc.render_label(MalwareType::Trojan, Some("zbot"), false, &mut rng);
        assert!(label.starts_with("Artemis!"), "{label}");
    }

    #[test]
    fn uninformative_labels_hide_the_type() {
        let roster = engine_roster();
        let mut rng = SmallRng::seed_from_u64(2);
        for e in &roster {
            let label = e.render_label(MalwareType::Ransomware, Some("urausy"), false, &mut rng);
            let lowered = label.to_lowercase();
            assert!(
                !lowered.contains("ransom"),
                "{}: generic label {label} leaks the type",
                e.name
            );
        }
    }
}
