//! The VirusTotal-style scanning oracle.

use crate::engines::{engine_roster, AvEngine, EngineTier, LEADING_ENGINES};
use downlake_types::{FileHash, FileNature, LatentProfile, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One engine's verdict inside a scan report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// Engine name.
    pub engine: String,
    /// Trust tier of the engine.
    pub tier: EngineTier,
    /// The vendor-grammar label string.
    pub label: String,
}

/// The outcome of scanning one file: the paper's "query VT close to the
/// download, then again almost two years later" collapses into a single
/// report whose `first_scan`/`last_scan` span carries the freshness
/// information the *likely benign* rule needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanReport {
    /// When the file first appeared on the scanning service.
    pub first_scan: Timestamp,
    /// The final (re-)scan, long after collection.
    pub last_scan: Timestamp,
    /// All detections across the engine roster (empty = clean).
    pub detections: Vec<Detection>,
}

impl ScanReport {
    /// Days between the first and last scan.
    pub fn span_days(&self) -> i64 {
        (self.last_scan - self.first_scan).whole_days()
    }

    /// Whether any trusted-tier engine detected the file.
    pub fn trusted_detection(&self) -> bool {
        self.detections
            .iter()
            .any(|d| d.tier == EngineTier::Trusted)
    }

    /// Labels from the five leading engines (§II-C), as
    /// `(engine, label)` pairs — the input to behaviour-type extraction.
    pub fn leading_labels(&self) -> Vec<(&str, &str)> {
        self.detections
            .iter()
            .filter(|d| LEADING_ENGINES.contains(&d.engine.as_str()))
            .map(|d| (d.engine.as_str(), d.label.as_str()))
            .collect()
    }

    /// All labels, as `(engine, label)` pairs.
    pub fn all_labels(&self) -> Vec<(&str, &str)> {
        self.detections
            .iter()
            .map(|d| (d.engine.as_str(), d.label.as_str()))
            .collect()
    }
}

/// The simulated multi-engine scanning service.
#[derive(Debug, Clone)]
pub struct VirusTotalSim {
    engines: Vec<AvEngine>,
    seed: u64,
    /// Probability that a detecting engine's label carries the
    /// type-informative keyword rather than a generic form.
    informative_prob: f64,
    /// Probability that a detecting engine's label carries the family
    /// token when the file has one.
    family_prob: f64,
}

impl VirusTotalSim {
    /// Creates the service with the standard 52-engine roster.
    pub fn new(seed: u64) -> Self {
        Self {
            engines: engine_roster(),
            seed,
            informative_prob: 0.72,
            family_prob: 0.85,
        }
    }

    /// The engine roster.
    pub fn engines(&self) -> &[AvEngine] {
        &self.engines
    }

    /// Scans a file, or returns `None` if the file was never submitted to
    /// the service (the fate of the low-visibility long tail).
    ///
    /// Deterministic per `(service seed, file hash)`.
    pub fn scan(
        &self,
        file: FileHash,
        profile: &LatentProfile,
        first_seen: Timestamp,
    ) -> Option<ScanReport> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ file.raw().rotate_left(17));
        if !rng.gen_bool(profile.visibility.clamp(0.0, 1.0)) {
            return None;
        }
        // Highly visible files surface on the service almost immediately
        // and keep being rescanned for the ~2 years until the re-query;
        // mid-visibility files surface late (short span).
        let (first_lag_days, span_days) = if profile.visibility > 0.85 {
            (rng.gen_range(0..7), rng.gen_range(600..720))
        } else {
            (rng.gen_range(30..120), rng.gen_range(0..14))
        };
        let first_scan = first_seen + downlake_types::Duration::from_days(first_lag_days);
        let last_scan = first_scan + downlake_types::Duration::from_days(span_days);

        let mut detections = Vec::new();
        if let FileNature::Malicious(ty) = profile.nature {
            for engine in &self.engines {
                if profile.detectability >= engine.threshold {
                    // Latent `undefined` malware has no established
                    // behaviour — engines can only emit generic labels.
                    let informative = ty != downlake_types::MalwareType::Undefined
                        && rng.gen_bool(self.informative_prob);
                    let family = profile
                        .family
                        .as_deref()
                        .filter(|_| rng.gen_bool(self.family_prob));
                    detections.push(Detection {
                        engine: engine.name.to_owned(),
                        tier: engine.tier,
                        label: engine.render_label(ty, family, informative, &mut rng),
                    });
                }
            }
        }
        Some(ScanReport {
            first_scan,
            last_scan,
            detections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_types::MalwareType;

    fn mal_profile(det: f64, vis: f64) -> LatentProfile {
        LatentProfile {
            nature: FileNature::Malicious(MalwareType::Banker),
            family: Some("zbot".into()),
            visibility: vis,
            detectability: det,
        }
    }

    #[test]
    fn invisible_files_are_never_scanned() {
        let vt = VirusTotalSim::new(1);
        let p = mal_profile(0.9, 0.0);
        for i in 0..50 {
            assert!(vt
                .scan(FileHash::from_raw(i), &p, Timestamp::EPOCH)
                .is_none());
        }
    }

    #[test]
    fn high_detectability_triggers_trusted_engines() {
        let vt = VirusTotalSim::new(2);
        let p = mal_profile(0.95, 1.0);
        let report = vt
            .scan(FileHash::from_raw(9), &p, Timestamp::EPOCH)
            .unwrap();
        assert!(report.trusted_detection());
        assert!(!report.leading_labels().is_empty());
    }

    #[test]
    fn mid_detectability_only_lax_engines() {
        let vt = VirusTotalSim::new(3);
        let p = mal_profile(0.45, 1.0);
        let report = vt
            .scan(FileHash::from_raw(9), &p, Timestamp::EPOCH)
            .unwrap();
        assert!(!report.detections.is_empty());
        assert!(!report.trusted_detection());
    }

    #[test]
    fn benign_files_scan_clean() {
        let vt = VirusTotalSim::new(4);
        let p = LatentProfile::benign(1.0);
        let report = vt
            .scan(FileHash::from_raw(3), &p, Timestamp::EPOCH)
            .unwrap();
        assert!(report.detections.is_empty());
        assert!(report.span_days() >= 600);
    }

    #[test]
    fn mid_visibility_means_short_span() {
        let vt = VirusTotalSim::new(5);
        let p = LatentProfile {
            visibility: 0.65,
            ..LatentProfile::benign(0.65)
        };
        // Find a hash that gets submitted at 65% probability.
        let mut seen = false;
        for i in 0..40 {
            if let Some(report) = vt.scan(FileHash::from_raw(i), &p, Timestamp::from_day(10)) {
                assert!(report.span_days() < 14, "span {}", report.span_days());
                seen = true;
            }
        }
        assert!(seen, "no mid-visibility file was ever submitted");
    }

    #[test]
    fn scans_are_deterministic() {
        let vt = VirusTotalSim::new(6);
        let p = mal_profile(0.9, 1.0);
        let a = vt.scan(FileHash::from_raw(7), &p, Timestamp::EPOCH);
        let b = vt.scan(FileHash::from_raw(7), &p, Timestamp::EPOCH);
        assert_eq!(a, b);
    }
}
