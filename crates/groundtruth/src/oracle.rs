//! The end-to-end ground-truth oracle: scan + whitelist + decide, over a
//! whole file population.

use crate::labeler::label_from_evidence;
use crate::scan::{ScanReport, VirusTotalSim};
use crate::whitelist::Whitelists;
use downlake_types::{FileHash, FileLabel, LatentProfile, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Oracle tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Seed for all oracle-side randomness.
    pub seed: u64,
    /// Whitelist coverage over visible benign files (the paper labels
    /// 2.3% of files benign overall, partly via whitelists).
    pub whitelist_coverage: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            seed: 0x6007_0041,
            whitelist_coverage: 0.45,
        }
    }
}

/// The assembled oracle.
#[derive(Debug, Clone)]
pub struct GroundTruthOracle {
    vt: VirusTotalSim,
    config: OracleConfig,
}

impl GroundTruthOracle {
    /// Creates an oracle.
    pub fn new(config: OracleConfig) -> Self {
        Self {
            vt: VirusTotalSim::new(config.seed),
            config,
        }
    }

    /// The scanning service.
    pub fn virus_total(&self) -> &VirusTotalSim {
        &self.vt
    }

    /// Collects ground truth over a file population.
    ///
    /// `files` yields `(hash, latent profile, first-seen time)` triples —
    /// typically every distinct file of a dataset with its first download
    /// timestamp.
    pub fn collect<'a>(
        &self,
        files: impl IntoIterator<Item = (FileHash, &'a LatentProfile, Timestamp)> + Clone,
    ) -> GroundTruth {
        let whitelists = Whitelists::build(
            files.clone().into_iter().map(|(h, p, _)| (h, p)),
            self.config.whitelist_coverage,
            self.config.seed,
        );
        let mut labels = HashMap::new();
        let mut scans = HashMap::new();
        for (hash, profile, first_seen) in files {
            let scan = self.vt.scan(hash, profile, first_seen);
            let label = label_from_evidence(whitelists.contains(hash), scan.as_ref());
            labels.insert(hash, label);
            if let Some(report) = scan {
                if !report.detections.is_empty() {
                    scans.insert(hash, report);
                }
            }
        }
        GroundTruth {
            labels,
            scans,
            whitelists,
        }
    }
}

/// The collected ground truth for a file population.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    labels: HashMap<FileHash, FileLabel>,
    scans: HashMap<FileHash, ScanReport>,
    whitelists: Whitelists,
}

impl GroundTruth {
    /// Builds ground truth directly from parts (tests, replay).
    pub fn from_parts(
        labels: HashMap<FileHash, FileLabel>,
        scans: HashMap<FileHash, ScanReport>,
        whitelists: Whitelists,
    ) -> Self {
        Self {
            labels,
            scans,
            whitelists,
        }
    }

    /// The label of a file ([`FileLabel::Unknown`] if never assessed).
    pub fn label(&self, file: FileHash) -> FileLabel {
        self.labels.get(&file).copied().unwrap_or_default()
    }

    /// The detection-bearing scan report of a file, if any.
    pub fn scan(&self, file: FileHash) -> Option<&ScanReport> {
        self.scans.get(&file)
    }

    /// The whitelists used during collection.
    pub fn whitelists(&self) -> &Whitelists {
        &self.whitelists
    }

    /// Iterates over `(file, label)` pairs in ascending hash order, so
    /// consumers see a deterministic sequence.
    pub fn iter(&self) -> impl Iterator<Item = (FileHash, FileLabel)> + '_ {
        let mut rows: Vec<(FileHash, FileLabel)> =
            self.labels.iter().map(|(&h, &l)| (h, l)).collect();
        rows.sort_by_key(|&(h, _)| h);
        rows.into_iter()
    }

    /// Counts files per label.
    pub fn counts(&self) -> HashMap<FileLabel, usize> {
        let mut counts = HashMap::new();
        // downlake-lint: allow(unordered-iter) — commutative count into an unordered map
        for &label in self.labels.values() {
            *counts.entry(label).or_insert(0) += 1;
        }
        counts
    }

    /// Number of assessed files.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether nothing was assessed.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_types::{FileNature, MalwareType};

    fn population() -> Vec<(FileHash, LatentProfile)> {
        let mut files = Vec::new();
        for i in 0..400u64 {
            let profile = match i % 4 {
                0 => LatentProfile::benign(0.95),
                1 => LatentProfile::malicious(
                    FileNature::Malicious(MalwareType::Dropper),
                    Some("somoto".into()),
                    0.95,
                    0.9,
                ),
                2 => LatentProfile::malicious(
                    FileNature::Malicious(MalwareType::Trojan),
                    None,
                    0.95,
                    0.4,
                ),
                _ => LatentProfile {
                    visibility: 0.02,
                    ..LatentProfile::benign(0.02)
                },
            };
            files.push((FileHash::from_raw(i), profile));
        }
        files
    }

    #[test]
    fn oracle_produces_expected_label_classes() {
        let oracle = GroundTruthOracle::new(OracleConfig::default());
        let files = population();
        let gt = oracle.collect(files.iter().map(|(h, p)| (*h, p, Timestamp::from_day(5))));
        let counts = gt.counts();
        // Destiny-benign quarter: labeled benign (whitelist or clean VT).
        assert!(counts.get(&FileLabel::Benign).copied().unwrap_or(0) > 50);
        // Destiny-malicious quarter: trusted detections.
        assert!(counts.get(&FileLabel::Malicious).copied().unwrap_or(0) > 70);
        // Mid-detectability quarter: likely malicious.
        assert!(
            counts
                .get(&FileLabel::LikelyMalicious)
                .copied()
                .unwrap_or(0)
                > 70
        );
        // Low-visibility quarter: unknown.
        assert!(counts.get(&FileLabel::Unknown).copied().unwrap_or(0) > 80);
    }

    #[test]
    fn malicious_files_have_scan_reports() {
        let oracle = GroundTruthOracle::new(OracleConfig::default());
        let files = population();
        let gt = oracle.collect(files.iter().map(|(h, p)| (*h, p, Timestamp::from_day(5))));
        for (hash, label) in gt.iter() {
            if label == FileLabel::Malicious {
                let scan = gt.scan(hash).expect("malicious file must have a report");
                assert!(scan.trusted_detection());
            }
        }
    }

    #[test]
    fn unknown_for_unassessed_hash() {
        let gt = GroundTruth::default();
        assert_eq!(gt.label(FileHash::from_raw(999)), FileLabel::Unknown);
        assert!(gt.is_empty());
    }

    #[test]
    fn collection_is_deterministic() {
        let oracle = GroundTruthOracle::new(OracleConfig::default());
        let files = population();
        let make = || oracle.collect(files.iter().map(|(h, p)| (*h, p, Timestamp::from_day(5))));
        let a = make();
        let b = make();
        for (hash, label) in a.iter() {
            assert_eq!(label, b.label(hash));
        }
    }
}
