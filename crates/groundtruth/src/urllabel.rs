//! URL labeling (§II-B).
//!
//! A URL is **benign** only if its e2LD sat stably in the Alexa top
//! million *and* appears on the curated whitelist; **malicious** only if
//! it is flagged by both Google Safe Browsing and the private blacklist.
//! Everything else is unknown — deliberately conservative on both sides.

use downlake_types::{AlexaRank, Url, UrlLabel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Everything the labeler knows about one e2LD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DomainFacts {
    /// Alexa-style rank (year-stable).
    pub rank: AlexaRank,
    /// On the vendor's curated URL whitelist.
    pub curated_whitelist: bool,
    /// Flagged by Google Safe Browsing.
    pub gsb_listed: bool,
    /// On the vendor's private URL blacklist.
    pub private_blacklist: bool,
}

/// The URL labeling service.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UrlLabeler {
    facts: HashMap<String, DomainFacts>,
}

impl UrlLabeler {
    /// Creates an empty labeler (everything unknown, everything unranked).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the labeler from `(e2LD, facts)` pairs.
    pub fn from_facts(entries: impl IntoIterator<Item = (String, DomainFacts)>) -> Self {
        Self {
            facts: entries.into_iter().collect(),
        }
    }

    /// Registers facts about one e2LD.
    pub fn insert(&mut self, e2ld: impl Into<String>, facts: DomainFacts) {
        self.facts.insert(e2ld.into(), facts);
    }

    /// The facts known about an e2LD.
    pub fn facts(&self, e2ld: &str) -> DomainFacts {
        self.facts.get(e2ld).copied().unwrap_or_default()
    }

    /// The Alexa rank of an e2LD ([`AlexaRank::UNRANKED`] if unknown).
    pub fn rank(&self, e2ld: &str) -> AlexaRank {
        self.facts(e2ld).rank
    }

    /// Labels an e2LD per the paper's rules.
    pub fn label_e2ld(&self, e2ld: &str) -> UrlLabel {
        let f = self.facts(e2ld);
        if f.rank.in_top_million() && f.curated_whitelist {
            UrlLabel::Benign
        } else if f.gsb_listed && f.private_blacklist {
            UrlLabel::Malicious
        } else {
            UrlLabel::Unknown
        }
    }

    /// Labels a full URL by its e2LD.
    pub fn label(&self, url: &Url) -> UrlLabel {
        self.label_e2ld(url.e2ld())
    }

    /// Number of e2LDs with recorded facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no facts are recorded.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeler() -> UrlLabeler {
        let mut l = UrlLabeler::new();
        l.insert(
            "softonic.com",
            DomainFacts {
                rank: AlexaRank::ranked(170),
                curated_whitelist: true,
                ..DomainFacts::default()
            },
        );
        l.insert(
            "wipmsc.ru",
            DomainFacts {
                gsb_listed: true,
                private_blacklist: true,
                ..DomainFacts::default()
            },
        );
        l.insert(
            "popular-but-uncurated.com",
            DomainFacts {
                rank: AlexaRank::ranked(500),
                ..DomainFacts::default()
            },
        );
        l.insert(
            "gsb-only.com",
            DomainFacts {
                gsb_listed: true,
                ..DomainFacts::default()
            },
        );
        l
    }

    #[test]
    fn benign_requires_rank_and_whitelist() {
        let l = labeler();
        assert_eq!(l.label_e2ld("softonic.com"), UrlLabel::Benign);
        // Popular alone is not enough (Alexa noise mitigation).
        assert_eq!(l.label_e2ld("popular-but-uncurated.com"), UrlLabel::Unknown);
    }

    #[test]
    fn malicious_requires_both_lists() {
        let l = labeler();
        assert_eq!(l.label_e2ld("wipmsc.ru"), UrlLabel::Malicious);
        assert_eq!(l.label_e2ld("gsb-only.com"), UrlLabel::Unknown);
    }

    #[test]
    fn unrecorded_domains_are_unknown_and_unranked() {
        let l = labeler();
        assert_eq!(l.label_e2ld("never-seen.biz"), UrlLabel::Unknown);
        assert_eq!(l.rank("never-seen.biz"), AlexaRank::UNRANKED);
    }

    #[test]
    fn full_urls_label_via_e2ld() {
        let l = labeler();
        let url: Url = "http://dl3.softonic.com/app/setup.exe".parse().unwrap();
        assert_eq!(l.label(&url), UrlLabel::Benign);
    }
}
