//! File-hash whitelists standing in for NSRL + the commercial whitelist.

use downlake_types::{FileHash, FileNature, LatentProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The combined hash whitelist (NSRL + commercial list).
///
/// Coverage is probabilistic per file: well-known benign software (high
/// visibility) is very likely to be catalogued; the benign long tail is
/// not — exactly the mechanism by which genuinely harmless
/// low-prevalence files stay *unknown*.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Whitelists {
    hashes: HashSet<FileHash>,
}

impl Whitelists {
    /// An empty whitelist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds coverage over a population of files. A benign file with
    /// visibility `v` is catalogued with probability `coverage · v`;
    /// malicious files never are (the lists are curated).
    pub fn build<'a>(
        files: impl IntoIterator<Item = (FileHash, &'a LatentProfile)>,
        coverage: f64,
        seed: u64,
    ) -> Self {
        let mut hashes = HashSet::new();
        for (hash, profile) in files {
            if profile.nature != FileNature::Benign {
                continue;
            }
            let mut rng = SmallRng::seed_from_u64(seed ^ hash.raw().rotate_left(29));
            if rng.gen_bool((coverage * profile.visibility).clamp(0.0, 1.0)) {
                hashes.insert(hash);
            }
        }
        Self { hashes }
    }

    /// Inserts a hash directly (for hand-curated additions and tests).
    pub fn insert(&mut self, hash: FileHash) {
        self.hashes.insert(hash);
    }

    /// Whether a hash is whitelisted.
    pub fn contains(&self, hash: FileHash) -> bool {
        self.hashes.contains(&hash)
    }

    /// Number of catalogued hashes.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_types::MalwareType;

    #[test]
    fn malicious_files_never_whitelisted() {
        let profile =
            LatentProfile::malicious(FileNature::Malicious(MalwareType::Dropper), None, 1.0, 0.9);
        let files: Vec<(FileHash, &LatentProfile)> = (0..100)
            .map(|i| (FileHash::from_raw(i), &profile))
            .collect();
        let wl = Whitelists::build(files, 1.0, 1);
        assert!(wl.is_empty());
    }

    #[test]
    fn visible_benign_files_mostly_whitelisted() {
        let profile = LatentProfile::benign(1.0);
        let files: Vec<(FileHash, &LatentProfile)> = (0..1000)
            .map(|i| (FileHash::from_raw(i), &profile))
            .collect();
        let wl = Whitelists::build(files, 0.5, 2);
        let share = wl.len() as f64 / 1000.0;
        assert!((share - 0.5).abs() < 0.08, "coverage {share}");
    }

    #[test]
    fn invisible_benign_files_not_whitelisted() {
        let profile = LatentProfile::benign(0.0);
        let files: Vec<(FileHash, &LatentProfile)> = (0..100)
            .map(|i| (FileHash::from_raw(i), &profile))
            .collect();
        let wl = Whitelists::build(files, 1.0, 3);
        assert!(wl.is_empty());
    }

    #[test]
    fn manual_insert() {
        let mut wl = Whitelists::new();
        let h = FileHash::from_raw(42);
        assert!(!wl.contains(h));
        wl.insert(h);
        assert!(wl.contains(h));
        assert_eq!(wl.len(), 1);
    }
}
