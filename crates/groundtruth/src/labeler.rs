//! The file-labeling decision procedure (§II-B).

use crate::scan::ScanReport;
use crate::whitelist::Whitelists;
use downlake_types::{FileHash, FileLabel};

/// Maximum first-to-last-scan span (days) below which an all-clean file is
/// only *likely* benign.
pub const LIKELY_BENIGN_SPAN_DAYS: i64 = 14;

/// Applies the paper's decision procedure to one file's evidence.
///
/// * whitelist hit → **benign**;
/// * no scan report at all → **unknown**;
/// * clean report with ≥ 14 days between first and last scan → **benign**;
/// * clean report younger than that → **likely benign**;
/// * any trusted-tier detection → **malicious**;
/// * detections from lax engines only → **likely malicious**.
pub fn label_from_evidence(whitelisted: bool, scan: Option<&ScanReport>) -> FileLabel {
    if whitelisted {
        return FileLabel::Benign;
    }
    let Some(report) = scan else {
        return FileLabel::Unknown;
    };
    if report.detections.is_empty() {
        if report.span_days() < LIKELY_BENIGN_SPAN_DAYS {
            FileLabel::LikelyBenign
        } else {
            FileLabel::Benign
        }
    } else if report.trusted_detection() {
        FileLabel::Malicious
    } else {
        FileLabel::LikelyMalicious
    }
}

/// Convenience wrapper binding a whitelist to the decision procedure.
#[derive(Debug, Clone, Default)]
pub struct Labeler {
    whitelists: Whitelists,
}

impl Labeler {
    /// Creates a labeler over the given whitelists.
    pub fn new(whitelists: Whitelists) -> Self {
        Self { whitelists }
    }

    /// The underlying whitelists.
    pub fn whitelists(&self) -> &Whitelists {
        &self.whitelists
    }

    /// Labels one file from its (optional) scan report.
    pub fn label(&self, file: FileHash, scan: Option<&ScanReport>) -> FileLabel {
        label_from_evidence(self.whitelists.contains(file), scan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::EngineTier;
    use crate::scan::Detection;
    use downlake_types::{Duration, Timestamp};

    fn report(detections: Vec<Detection>, span_days: i64) -> ScanReport {
        let first_scan = Timestamp::from_day(10);
        ScanReport {
            first_scan,
            last_scan: first_scan + Duration::from_days(span_days),
            detections,
        }
    }

    fn det(tier: EngineTier) -> Detection {
        Detection {
            engine: "X".to_owned(),
            tier,
            label: "Trojan.Test".into(),
        }
    }

    #[test]
    fn whitelist_wins() {
        let mut wl = Whitelists::new();
        wl.insert(FileHash::from_raw(1));
        let labeler = Labeler::new(wl);
        // Even with a malicious-looking report, the whitelist decides.
        let r = report(vec![det(EngineTier::Trusted)], 700);
        assert_eq!(
            labeler.label(FileHash::from_raw(1), Some(&r)),
            FileLabel::Benign
        );
        assert_eq!(
            labeler.label(FileHash::from_raw(2), Some(&r)),
            FileLabel::Malicious
        );
    }

    #[test]
    fn no_evidence_is_unknown() {
        assert_eq!(label_from_evidence(false, None), FileLabel::Unknown);
    }

    #[test]
    fn clean_long_span_is_benign() {
        let r = report(vec![], 600);
        assert_eq!(label_from_evidence(false, Some(&r)), FileLabel::Benign);
    }

    #[test]
    fn clean_short_span_is_likely_benign() {
        let r = report(vec![], 13);
        assert_eq!(
            label_from_evidence(false, Some(&r)),
            FileLabel::LikelyBenign
        );
        let r = report(vec![], 14);
        assert_eq!(label_from_evidence(false, Some(&r)), FileLabel::Benign);
    }

    #[test]
    fn trusted_detection_is_malicious() {
        let r = report(vec![det(EngineTier::Other), det(EngineTier::Trusted)], 700);
        assert_eq!(label_from_evidence(false, Some(&r)), FileLabel::Malicious);
    }

    #[test]
    fn lax_only_detection_is_likely_malicious() {
        let r = report(vec![det(EngineTier::Other)], 700);
        assert_eq!(
            label_from_evidence(false, Some(&r)),
            FileLabel::LikelyMalicious
        );
    }
}
