//! Ground-truth collection and labeling for `downlake`.
//!
//! The paper (§II-B) labels files using VirusTotal scans taken close to
//! the download *and again almost two years later*, a commercial
//! whitelist plus NIST's NSRL, and labels URLs using a year-stable Alexa
//! list, a curated whitelist, Google Safe Browsing, and a private
//! blacklist. This crate reproduces that machinery:
//!
//! * [`VirusTotalSim`] — a 52-engine scanning oracle. Whether a file is
//!   ever submitted is governed by its latent `visibility`; whether the
//!   engines that see it flag it is governed by its latent
//!   `detectability`. Detections come with *vendor-grammar label strings*
//!   (`TROJ_FAKEAV.SMU1`, `Trojan-Spy.Win32.Zbot.ruxa`, …) that the
//!   `downlake-avtype` crate parses exactly as the paper's AVType tool
//!   parses real labels.
//! * [`Whitelists`] — hash whitelists standing in for NSRL + the
//!   commercial list.
//! * [`UrlLabeler`] — the Alexa/GSB/blacklist URL decision procedure.
//! * [`Labeler`]/[`GroundTruth`] — the five-way file labeling decision
//!   (benign / likely benign / malicious / likely malicious / unknown).
//!
//! The oracle never reads a file's latent *nature* to decide a label — it
//! simulates evidence (scan reports, list membership) from the latent
//! propensities and then runs the paper's decision procedure over that
//! evidence, so the full mechanism is exercised end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod engines;
mod labeler;
mod oracle;
mod scan;
mod urllabel;
mod whitelist;

pub use engines::{engine_roster, AvEngine, EngineTier, LabelGrammar, LEADING_ENGINES};
pub use labeler::{label_from_evidence, Labeler};
pub use oracle::{GroundTruth, GroundTruthOracle, OracleConfig};
pub use scan::{Detection, ScanReport, VirusTotalSim};
pub use urllabel::{DomainFacts, UrlLabeler};
pub use whitelist::Whitelists;
