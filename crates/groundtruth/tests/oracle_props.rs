//! Property-based tests of the labeling oracle: the decision procedure
//! must respond to latent evidence exactly as §II-B specifies, for any
//! profile.

use downlake_groundtruth::{GroundTruthOracle, OracleConfig};
use downlake_types::{FileHash, FileLabel, FileNature, LatentProfile, MalwareType, Timestamp};
use proptest::prelude::*;

fn malware_type() -> impl Strategy<Value = MalwareType> {
    proptest::sample::select(MalwareType::ALL.to_vec())
}

fn profile() -> impl Strategy<Value = LatentProfile> {
    (
        proptest::bool::ANY,
        malware_type(),
        0.0f64..=1.0,
        0.0f64..=1.0,
    )
        .prop_map(|(malicious, ty, visibility, detectability)| LatentProfile {
            nature: if malicious {
                FileNature::Malicious(ty)
            } else {
                FileNature::Benign
            },
            family: None,
            visibility,
            detectability: if malicious { detectability } else { 0.0 },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Confident labels never contradict the latent nature, and the
    /// boundary propensities force deterministic outcomes.
    #[test]
    fn labels_respect_latent_evidence(
        profiles in proptest::collection::vec(profile(), 1..60),
        seed in any::<u64>(),
    ) {
        let oracle = GroundTruthOracle::new(OracleConfig {
            seed,
            ..OracleConfig::default()
        });
        let subjects: Vec<(FileHash, &LatentProfile, Timestamp)> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (FileHash::from_raw(i as u64), p, Timestamp::from_day(3)))
            .collect();
        let gt = oracle.collect(subjects);
        // The laxest engine in the roster fires at detectability 0.25;
        // malware below that threshold is a universal AV false negative
        // and legitimately scans clean (the paper itself flags such
        // ground-truth noise in §VII).
        const LAXEST_THRESHOLD: f64 = 0.25;
        for (i, p) in profiles.iter().enumerate() {
            let label = gt.label(FileHash::from_raw(i as u64));
            match (label, p.nature) {
                // Benign files can never be detected by anything.
                (FileLabel::Malicious | FileLabel::LikelyMalicious, FileNature::Benign) => {
                    prop_assert!(false, "benign file labeled {label}");
                }
                // Malware detectable by at least one engine can never be
                // blessed as (likely) benign.
                (FileLabel::Benign | FileLabel::LikelyBenign, FileNature::Malicious(_))
                    if p.detectability >= LAXEST_THRESHOLD =>
                {
                    prop_assert!(false, "detectable malware labeled {label}");
                }
                _ => {}
            }
            // Zero visibility and no whitelist hit ⇒ unknown, always.
            if p.visibility == 0.0 {
                prop_assert_eq!(label, FileLabel::Unknown);
            }
            // Fully visible, fully detectable malware is always caught by
            // a trusted engine.
            if p.visibility == 1.0 && p.detectability >= 0.999 {
                prop_assert_eq!(label, FileLabel::Malicious);
            }
        }
    }

    /// Detection-bearing scan reports exist iff the label is
    /// malicious-ish, and their detections justify the tier.
    #[test]
    fn scan_reports_justify_labels(
        profiles in proptest::collection::vec(profile(), 1..40),
        seed in any::<u64>(),
    ) {
        let oracle = GroundTruthOracle::new(OracleConfig {
            seed,
            ..OracleConfig::default()
        });
        let subjects: Vec<(FileHash, &LatentProfile, Timestamp)> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (FileHash::from_raw(i as u64), p, Timestamp::from_day(3)))
            .collect();
        let gt = oracle.collect(subjects);
        for i in 0..profiles.len() {
            let hash = FileHash::from_raw(i as u64);
            match gt.label(hash) {
                FileLabel::Malicious => {
                    let scan = gt.scan(hash).expect("malicious needs a report");
                    prop_assert!(scan.trusted_detection());
                }
                FileLabel::LikelyMalicious => {
                    let scan = gt.scan(hash).expect("likely-malicious needs a report");
                    prop_assert!(!scan.trusted_detection());
                    prop_assert!(!scan.detections.is_empty());
                }
                FileLabel::LikelyBenign => {
                    // Short scan span by definition; no detections kept.
                    prop_assert!(gt.scan(hash).is_none());
                }
                _ => prop_assert!(gt.scan(hash).is_none()),
            }
        }
    }
}
