//! Property: every `downlake-query` operator matches a naive loop
//! oracle (hash-set distinct counts, map-based group-bys, full-sort
//! rankings) on randomized inputs.
//!
//! These properties are the equivalence pin for the analysis-pass
//! rewrite: the passes are compositions of exactly these operators, so
//! operator ≡ loop oracle plus the committed report goldens replaces
//! the retired `legacy` module as the refactor's safety net.
//!
//! The input generator is a pure function of a `u64` seed (driven by
//! `downlake_exec::splitmix64`, no RNG dependency), so the `proptest!`
//! properties and their plain `#[test]` grid mirrors exercise the same
//! code.

use downlake_exec::{splitmix64, Pool};
use downlake_query::{scan, top_k_by, Adjacency, Dense, MaskStamp, RangePartition, Stamp};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Randomized `(group, value)` rows over small dense id spaces: a pure
/// function of `seed`.
fn rows(seed: u64, groups: usize, values: usize) -> Vec<(usize, usize)> {
    let n = 20 + (splitmix64(seed) % 180) as usize;
    (0..n)
        .map(|i| {
            let roll =
                |salt: u64| splitmix64(seed ^ salt.wrapping_add(i as u64).wrapping_mul(0x9e37));
            ((roll(1) as usize) % groups, (roll(2) as usize) % values)
        })
        .collect()
}

/// CSR adjacency over the generated rows: row `i` belongs to group
/// `rows[i].0`; per-group row lists keep source order, exactly like the
/// frame's machine/file CSR keeps time order.
fn csr(rows: &[(usize, usize)], groups: usize) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = vec![0u32; groups + 1];
    for &(g, _) in rows {
        offsets[g + 1] += 1;
    }
    for g in 0..groups {
        offsets[g + 1] += offsets[g];
    }
    let mut cursor: Vec<u32> = offsets[..groups].to_vec();
    let mut row_idx = vec![0u32; rows.len()];
    for (i, &(g, _)) in rows.iter().enumerate() {
        row_idx[cursor[g] as usize] = i as u32;
        cursor[g] += 1;
    }
    (offsets, row_idx)
}

/// `filter → map → fold` matches the plain-loop sum.
fn check_scan_pipeline(seed: u64) {
    let data = rows(seed, 7, 30);
    let queried = scan(data.iter())
        .filter(|&&(g, _)| g % 2 == 0)
        .map(|&(_, v)| v)
        .fold(0usize, |a, v| a + v);
    let mut oracle = 0usize;
    for &(g, v) in &data {
        if g % 2 == 0 {
            oracle += v;
        }
    }
    assert_eq!(queried, oracle);
    assert_eq!(
        scan(data.iter()).count(),
        data.len(),
        "count is the row total"
    );
}

/// Group-major `distinct_by` with one stamp tag per group matches a
/// per-group set oracle, and `histogram` matches a map oracle.
fn check_distinct_by(seed: u64) {
    let groups = 6;
    let data = rows(seed, groups, 12);
    let (offsets, row_idx) = csr(&data, groups);
    let adj: Adjacency<'_, usize> = Adjacency::new(&offsets, &row_idx);

    let mut stamp = Stamp::new(12);
    let mut queried = Vec::new();
    for (g, group_rows) in adj.groups() {
        let n = scan(group_rows.iter().map(|&r| data[r as usize].1))
            .distinct_by(&mut stamp, g as u32, |&v| v)
            .count();
        queried.push(n);
    }

    let oracle: Vec<usize> = (0..groups)
        .map(|g| {
            data.iter()
                .filter(|&&(rg, _)| rg == g)
                .map(|&(_, v)| v)
                .collect::<BTreeSet<_>>()
                .len()
        })
        .collect();
    assert_eq!(queried, oracle);

    let hist = scan(data.iter().map(|&(_, v)| v)).histogram();
    let mut hist_oracle = BTreeMap::new();
    for &(_, v) in &data {
        *hist_oracle.entry(v).or_insert(0usize) += 1;
    }
    assert_eq!(hist, hist_oracle);
}

/// `group_count` / `group_sum` match naive vector accumulation, and
/// merging partials over a split of the rows reproduces the whole.
fn check_group_aggs(seed: u64) {
    let groups = 9;
    let data = rows(seed, groups, 50);

    let counts = scan(data.iter().map(|&(g, _)| g)).group_count(groups);
    let sums = scan(data.iter().copied()).group_sum(groups);
    let mut count_oracle = vec![0u64; groups];
    let mut sum_oracle = vec![0usize; groups];
    for &(g, v) in &data {
        count_oracle[g] += 1;
        sum_oracle[g] += v;
    }
    assert_eq!(counts.as_slice(), &count_oracle[..]);
    assert_eq!(sums.as_slice(), &sum_oracle[..]);

    let mid = data.len() / 2;
    let mut left = scan(data[..mid].iter().map(|&(g, _)| g)).group_count(groups);
    let right = scan(data[mid..].iter().map(|&(g, _)| g)).group_count(groups);
    left.merge(right);
    assert_eq!(left.as_slice(), counts.as_slice(), "merge of a row split");
}

/// `top_k_by` matches a full-sort oracle for every `k`.
fn check_top_k(seed: u64) {
    let groups = 11;
    let data = rows(seed, groups, 50);
    let names: Vec<String> = (0..groups)
        .map(|g| format!("g{:02}", (g * 7) % groups))
        .collect();
    let counts = scan(data.iter().map(|&(g, _)| g)).group_count(groups);

    let mut oracle: Vec<(usize, u64)> = counts
        .as_slice()
        .iter()
        .enumerate()
        .filter(|&(g, &c)| c > 0 && g % 3 != 0)
        .map(|(g, &c)| (g, c))
        .collect();
    oracle.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| names[a.0].cmp(&names[b.0])));

    for k in [0, 1, 3, groups + 5] {
        let ranked = top_k_by(counts.as_slice(), k, |g| names[g].as_str(), |g| g % 3 != 0);
        assert_eq!(ranked, oracle[..k.min(oracle.len())]);
    }
}

/// The CSR join agrees with a naive group scan, and the chunked fold is
/// width-invariant.
fn check_adjacency_join(seed: u64) {
    let groups = 8;
    let data = rows(seed, groups, 20);
    let (offsets, row_idx) = csr(&data, groups);
    let adj: Adjacency<'_, usize> = Adjacency::new(&offsets, &row_idx);

    assert_eq!(adj.group_count(), groups);
    for (g, group_rows) in adj.groups() {
        let oracle: Vec<u32> = (0..data.len() as u32)
            .filter(|&r| data[r as usize].0 == g)
            .collect();
        assert_eq!(group_rows, &oracle[..], "rows of group {g}");
        assert_eq!(adj.rows(g), &oracle[..]);
    }

    let sequential = {
        let mut acc: Dense<usize, u64> = Dense::new(20);
        for (_, group_rows) in adj.groups() {
            for &r in group_rows {
                acc.add(data[r as usize].1, 1);
            }
        }
        acc.into_inner()
    };
    for threads in [1, 2, 3, 8] {
        let chunked = adj
            .fold_groups_with(
                &Pool::new(threads),
                || Dense::<usize, u64>::new(20),
                |acc, _, group_rows| {
                    for &r in group_rows {
                        acc.add(data[r as usize].1, 1);
                    }
                },
                |acc, partial| acc.merge(partial),
            )
            .into_inner();
        assert_eq!(chunked, sequential, "threads={threads}");
    }
}

/// `RangePartition` groups cover exactly their ranges and the derived
/// dense column inverts the partition.
fn check_range_partition(seed: u64) {
    let n = 30 + (splitmix64(seed) % 100) as usize;
    // Random ordered cut points → contiguous, possibly-empty ranges
    // covering a prefix of 0..n (a tail can stay outside, like events
    // outside the study window).
    let mut cuts: Vec<u32> = (0..5)
        .map(|i| (splitmix64(seed ^ (i + 77)) % (n as u64 + 1)) as u32)
        .collect();
    cuts.sort_unstable();
    let bounds: Vec<std::ops::Range<u32>> = cuts.windows(2).map(|w| w[0]..w[1]).collect();
    let groups = bounds.len();
    let partition = RangePartition::new(bounds.clone());

    assert_eq!(partition.group_count(), groups);
    for (g, bound) in bounds.iter().enumerate() {
        assert_eq!(
            partition.range(g),
            (bound.start as usize)..(bound.end as usize)
        );
    }

    let column = partition.dense_column(n, u8::MAX);
    let mut oracle = vec![u8::MAX; n];
    for (g, bound) in bounds.iter().enumerate() {
        for row in bound.start..bound.end {
            oracle[row as usize] = g as u8;
        }
    }
    assert_eq!(column, oracle);

    let total: usize = partition.groups().map(|(_, range)| range.len()).sum();
    assert_eq!(total, column.iter().filter(|&&m| m != u8::MAX).count());
}

/// `MaskStamp` first-sighting marks match per-group set oracles when
/// groups interleave in row order.
fn check_mask_stamp(seed: u64) {
    let ids = 15;
    let data = rows(seed, 5, ids);
    let mut mask = MaskStamp::new(ids);
    let mut counts = [0usize; 5];
    for &(g, id) in &data {
        counts[g] += usize::from(mask.mark(id, g));
    }
    let oracle: Vec<usize> = (0..5)
        .map(|g| {
            data.iter()
                .filter(|&&(rg, _)| rg == g)
                .map(|&(_, id)| id)
                .collect::<BTreeSet<_>>()
                .len()
        })
        .collect();
    assert_eq!(&counts[..], &oracle[..]);
    for &(g, id) in &data {
        assert!(mask.contains(id, g));
    }
}

/// `Dense::merge` is commutative: merging two per-chunk partials in
/// either order yields the same slots. This is the law cited by the
/// `Dense` entry in `merge-contracts.json`, which licenses its use at
/// the pooled reduction sites `downlake-lint` rule M1 guards.
fn check_dense_merge_commutes(seed: u64) {
    let data = rows(seed, 5, 50);
    let cut = data.len() / 2;
    let fill = |slice: &[(usize, usize)]| {
        let mut acc: Dense<usize, usize> = Dense::new(5);
        for &(g, v) in slice {
            acc.add(g, v);
        }
        acc
    };
    let mut ab = fill(&data[..cut]);
    ab.merge(fill(&data[cut..]));
    let mut ba = fill(&data[cut..]);
    ba.merge(fill(&data[..cut]));
    assert_eq!(ab.as_slice(), ba.as_slice());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_pipeline_matches_loop(seed in any::<u64>()) {
        check_scan_pipeline(seed);
    }

    #[test]
    fn dense_merge_commutes(seed in any::<u64>()) {
        check_dense_merge_commutes(seed);
    }

    #[test]
    fn distinct_by_matches_set_oracle(seed in any::<u64>()) {
        check_distinct_by(seed);
    }

    #[test]
    fn group_aggs_match_vector_oracle(seed in any::<u64>()) {
        check_group_aggs(seed);
    }

    #[test]
    fn top_k_matches_full_sort(seed in any::<u64>()) {
        check_top_k(seed);
    }

    #[test]
    fn adjacency_join_matches_naive_scan(seed in any::<u64>()) {
        check_adjacency_join(seed);
    }

    #[test]
    fn range_partition_inverts_to_dense_column(seed in any::<u64>()) {
        check_range_partition(seed);
    }

    #[test]
    fn mask_stamp_matches_set_oracle(seed in any::<u64>()) {
        check_mask_stamp(seed);
    }
}

#[test]
fn operator_grid_mirror() {
    for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
        check_scan_pipeline(seed);
        check_distinct_by(seed);
        check_group_aggs(seed);
        check_top_k(seed);
        check_adjacency_join(seed);
        check_range_partition(seed);
        check_mask_stamp(seed);
        check_dense_merge_commutes(seed);
    }
}
