//! Owned dense group-by accumulators and the shared top-k ranking.

use crate::key::DenseKey;
use std::fmt;
use std::marker::PhantomData;
use std::ops::AddAssign;

/// A group-by accumulator indexed by a dense id: one slot per group,
/// iterated in dense-id order.
///
/// Two `Dense` accumulators built over disjoint row sets merge with
/// [`Dense::merge`]; because slot-wise `+=` is commutative and
/// associative, chunked execution that merges per-chunk accumulators in
/// chunk order is byte-identical to the sequential pass.
///
/// ```
/// use downlake_query::Dense;
/// use downlake_types::E2ldId;
///
/// let mut counts: Dense<E2ldId, u64> = Dense::new(3);
/// counts.add(E2ldId::from_raw(2), 1);
/// counts.add(E2ldId::from_raw(2), 1);
/// assert_eq!(counts.get(E2ldId::from_raw(2)), &2);
/// assert_eq!(counts.as_slice(), &[0, 0, 2]);
/// ```
pub struct Dense<K, V> {
    values: Vec<V>,
    _key: PhantomData<K>,
}

impl<K, V: fmt::Debug> fmt::Debug for Dense<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dense")
            .field("values", &self.values)
            .finish()
    }
}

impl<K: DenseKey, V: Clone + Default> Dense<K, V> {
    /// An accumulator with `groups` default-initialised slots.
    pub fn new(groups: usize) -> Self {
        Self {
            values: vec![V::default(); groups],
            _key: PhantomData,
        }
    }
}

impl<K: DenseKey, V> Dense<K, V> {
    /// Number of group slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no group slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The slot of `group`.
    pub fn get(&self, group: K) -> &V {
        &self.values[group.index()]
    }

    /// Mutable slot of `group`.
    pub fn get_mut(&mut self, group: K) -> &mut V {
        &mut self.values[group.index()]
    }

    /// Adds `value` into `group`'s slot.
    pub fn add(&mut self, group: K, value: V)
    where
        V: AddAssign,
    {
        self.values[group.index()] += value;
    }

    /// Slot-wise merge of an accumulator built over a disjoint row set.
    ///
    /// # Panics
    ///
    /// Panics if the group spaces differ in size.
    pub fn merge(&mut self, other: Self)
    where
        V: AddAssign,
    {
        assert_eq!(self.values.len(), other.values.len(), "group space");
        for (slot, value) in self.values.iter_mut().zip(other.values) {
            *slot += value;
        }
    }

    /// Iterates `(group, &value)` in dense-id order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// The slots as a plain slice, in dense-id order.
    pub fn as_slice(&self) -> &[V] {
        &self.values
    }

    /// Consumes the accumulator into its slot vector.
    pub fn into_inner(self) -> Vec<V> {
        self.values
    }
}

/// Ranks a dense counter into its top-`k` non-zero `(group index,
/// count)` rows: count descending, then `name_of(group)` ascending — a
/// total order, so ties resolve identically on every run.
///
/// ```
/// use downlake_query::top_k_by;
/// let names = ["b.com", "a.com", "c.com"];
/// let rows = top_k_by(&[2, 2, 0], 2, |d| names[d], |_| true);
/// assert_eq!(rows, vec![(1, 2), (0, 2)]); // a.com before b.com
/// ```
pub fn top_k_by<'n>(
    counts: &[u64],
    k: usize,
    name_of: impl Fn(usize) -> &'n str,
    keep: impl Fn(usize) -> bool,
) -> Vec<(usize, u64)> {
    let mut rows: Vec<(usize, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(g, &c)| c > 0 && keep(g))
        .map(|(g, &c)| (g, c))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| name_of(a.0).cmp(name_of(b.0))));
    rows.truncate(k);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_equals_sequential() {
        let rows = [(0usize, 1u64), (2, 5), (0, 2), (1, 7), (2, 1)];
        let mut whole: Dense<usize, u64> = Dense::new(3);
        for &(g, v) in &rows {
            whole.add(g, v);
        }
        let mut left: Dense<usize, u64> = Dense::new(3);
        let mut right: Dense<usize, u64> = Dense::new(3);
        for &(g, v) in &rows[..2] {
            left.add(g, v);
        }
        for &(g, v) in &rows[2..] {
            right.add(g, v);
        }
        left.merge(right);
        assert_eq!(left.as_slice(), whole.as_slice());
    }

    #[test]
    fn top_k_filters_and_breaks_ties_by_name() {
        let names = ["z", "a", "m"];
        let rows = top_k_by(&[3, 3, 9], 10, |g| names[g], |g| g != 2);
        assert_eq!(rows, vec![(1, 3), (0, 3)]);
    }

    #[test]
    fn iter_is_dense_ordered() {
        let mut d: Dense<usize, u64> = Dense::new(2);
        d.add(1, 4);
        let got: Vec<(usize, u64)> = d.iter().map(|(g, &v)| (g, v)).collect();
        assert_eq!(got, vec![(0, 0), (1, 4)]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        *d.get_mut(0) += 1;
        assert_eq!(d.into_inner(), vec![1, 4]);
    }
}
