//! CSR-adjacency joins (entity → rows) as first-class operators.

use crate::key::DenseKey;
use downlake_exec::{partition, Pool};
use std::fmt;
use std::marker::PhantomData;

/// A borrowed CSR adjacency: for each dense id of `K` (machine, file),
/// the row indexes it joins to, in stored (time) order.
///
/// Groups iterate in dense-id order, which is exactly the group-major
/// order a [`Stamp`](crate::Stamp)-based distinct count requires.
///
/// ```
/// use downlake_query::Adjacency;
/// use downlake_types::MachineIdx;
///
/// // Machine 0 joins rows 0 and 2; machine 1 joins row 1.
/// let adj: Adjacency<'_, MachineIdx> = Adjacency::new(&[0, 2, 3], &[0, 2, 1]);
/// assert_eq!(adj.rows(MachineIdx::from_raw(0)), &[0, 2]);
/// assert_eq!(adj.group_count(), 2);
/// ```
pub struct Adjacency<'a, K> {
    offsets: &'a [u32],
    rows: &'a [u32],
    _key: PhantomData<K>,
}

impl<K> Clone for Adjacency<'_, K> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<K> Copy for Adjacency<'_, K> {}

impl<K> fmt::Debug for Adjacency<'_, K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Adjacency")
            .field("groups", &(self.offsets.len().saturating_sub(1)))
            .field("rows", &self.rows.len())
            .finish()
    }
}

impl<'a, K: DenseKey> Adjacency<'a, K> {
    /// Wraps CSR `offsets` (length `groups + 1`, non-decreasing) and the
    /// concatenated per-group `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty or its last entry does not equal
    /// `rows.len()`.
    pub fn new(offsets: &'a [u32], rows: &'a [u32]) -> Self {
        let last = offsets.last().copied();
        assert_eq!(
            last,
            Some(rows.len() as u32),
            "CSR offsets must close over the row array"
        );
        Self {
            offsets,
            rows,
            _key: PhantomData,
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The joined rows of one group, in stored order.
    pub fn rows(&self, group: K) -> &'a [u32] {
        let g = group.index();
        let lo = self.offsets[g] as usize;
        let hi = self.offsets[g + 1] as usize;
        &self.rows[lo..hi]
    }

    /// Iterates `(group, joined rows)` in dense-id order.
    pub fn groups(&self) -> impl Iterator<Item = (K, &'a [u32])> + 'a {
        let offsets = self.offsets;
        let rows = self.rows;
        (0..offsets.len() - 1).map(move |g| {
            let lo = offsets[g] as usize;
            let hi = offsets[g + 1] as usize;
            (K::from_index(g), &rows[lo..hi])
        })
    }

    /// Chunked group fold: splits the group id space into contiguous
    /// chunks (one per pool thread), folds each chunk's groups in dense
    /// order into its own accumulator, and merges the accumulators in
    /// chunk order.
    ///
    /// Because each group's rows live entirely inside one chunk and
    /// `merge` is commutative and associative (slot-wise `+=` on
    /// [`Dense`](crate::Dense) accumulators, with any per-chunk stamps
    /// private to the chunk), the result is byte-identical at every
    /// pool width.
    pub fn fold_groups_with<A: Send>(
        &self,
        pool: &Pool,
        init: impl Fn() -> A + Sync,
        fold: impl Fn(&mut A, K, &[u32]) + Sync,
        mut merge: impl FnMut(&mut A, A),
    ) -> A {
        let chunks = partition(self.group_count(), pool.threads().max(1));
        let partials = pool.map(&chunks, |_, range| {
            let mut acc = init();
            for g in range.clone() {
                let lo = self.offsets[g] as usize;
                let hi = self.offsets[g + 1] as usize;
                fold(&mut acc, K::from_index(g), &self.rows[lo..hi]);
            }
            acc
        });
        let mut out = init();
        for partial in partials {
            merge(&mut out, partial);
        }
        out
    }
}

/// Chunked row fold: the row-scan counterpart of
/// [`Adjacency::fold_groups_with`]. Splits `0..rows` into contiguous
/// chunks, folds each chunk in row order, merges in chunk order.
pub fn fold_rows_with<A: Send>(
    pool: &Pool,
    rows: usize,
    init: impl Fn() -> A + Sync,
    fold: impl Fn(&mut A, usize) + Sync,
    mut merge: impl FnMut(&mut A, A),
) -> A {
    let chunks = partition(rows, pool.threads().max(1));
    let partials = pool.map(&chunks, |_, range| {
        let mut acc = init();
        for row in range.clone() {
            fold(&mut acc, row);
        }
        acc
    });
    let mut out = init();
    for partial in partials {
        merge(&mut out, partial);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::scan;
    use crate::stamp::Stamp;

    /// 6 rows over 3 groups: group 0 → [0, 3], group 1 → [], group 2 →
    /// [1, 2, 4, 5]; row values index a small value column.
    const OFFSETS: [u32; 4] = [0, 2, 2, 6];
    const ROWS: [u32; 6] = [0, 3, 1, 2, 4, 5];
    const VALUES: [usize; 6] = [7, 8, 7, 9, 8, 8];

    #[test]
    fn groups_iterate_in_dense_order() {
        let adj: Adjacency<'_, usize> = Adjacency::new(&OFFSETS, &ROWS);
        let got: Vec<(usize, usize)> = adj.groups().map(|(g, rows)| (g, rows.len())).collect();
        assert_eq!(got, vec![(0, 2), (1, 0), (2, 4)]);
        assert_eq!(adj.rows(2), &[1, 2, 4, 5]);
    }

    #[test]
    fn chunked_distinct_pairs_match_sequential_at_every_width() {
        let adj: Adjacency<'_, usize> = Adjacency::new(&OFFSETS, &ROWS);
        // Distinct (group, value) pairs per value, sequentially.
        let sequential = {
            let mut counts: Dense<usize, u64> = Dense::new(10);
            let mut stamp = Stamp::new(10);
            for (g, rows) in adj.groups() {
                scan(rows.iter().map(|&r| VALUES[r as usize]))
                    .distinct_by(&mut stamp, g as u32, |&v| v)
                    .for_each(|v| counts.add(v, 1));
            }
            counts.into_inner()
        };
        for threads in [1, 2, 4] {
            let chunked = adj
                .fold_groups_with(
                    &Pool::new(threads),
                    || (Dense::<usize, u64>::new(10), Stamp::new(10)),
                    |(counts, stamp), g, rows| {
                        scan(rows.iter().map(|&r| VALUES[r as usize]))
                            .distinct_by(stamp, g as u32, |&v| v)
                            .for_each(|v| counts.add(v, 1));
                    },
                    |(counts, _), (partial, _)| counts.merge(partial),
                )
                .0
                .into_inner();
            assert_eq!(chunked, sequential, "threads={threads}");
        }
    }

    #[test]
    fn fold_rows_matches_sequential() {
        for threads in [1, 3] {
            let sum = fold_rows_with(
                &Pool::new(threads),
                VALUES.len(),
                || 0usize,
                |acc, row| *acc += VALUES[row],
                |acc, partial| *acc += partial,
            );
            assert_eq!(sum, VALUES.iter().sum::<usize>());
        }
    }

    #[test]
    #[should_panic(expected = "close over")]
    fn mismatched_offsets_are_rejected() {
        let _: Adjacency<'_, usize> = Adjacency::new(&[0, 1], &ROWS);
    }
}
