//! The lazy operator pipeline: `scan → filter → map → agg`.

use crate::dense::Dense;
use crate::key::DenseKey;
use crate::stamp::Stamp;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::AddAssign;

/// Starts a lazy query over any row source: a range of row indexes, a
/// column scan, or a CSR row slice.
///
/// ```
/// use downlake_query::scan;
/// let evens = scan(0..10usize).filter(|r| r % 2 == 0).count();
/// assert_eq!(evens, 5);
/// ```
pub fn scan<I: IntoIterator>(rows: I) -> Query<I::IntoIter> {
    Query(rows.into_iter())
}

/// A lazy operator pipeline. Nothing runs until an aggregation terminal
/// ([`Query::count`], [`Query::group_count`], [`Query::histogram`], …)
/// consumes it; rows stream through one at a time in source order.
pub struct Query<I>(I);

impl<I> fmt::Debug for Query<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Query").finish_non_exhaustive()
    }
}

impl<I: Iterator> Iterator for Query<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }
}

impl<I: Iterator> Query<I> {
    /// Keeps rows for which `keep` is true.
    pub fn filter<P>(self, keep: P) -> Query<std::iter::Filter<I, P>>
    where
        P: FnMut(&I::Item) -> bool,
    {
        Query(self.0.filter(keep))
    }

    /// Transforms each row.
    pub fn map<B, F>(self, f: F) -> Query<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> B,
    {
        Query(self.0.map(f))
    }

    /// Transforms and filters in one step (`None` drops the row).
    pub fn filter_map<B, F>(self, f: F) -> Query<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<B>,
    {
        Query(self.0.filter_map(f))
    }

    /// First-sighting semantics: keeps a row only the first time its
    /// `key` is seen under `tag`. Group-major callers (one tag per
    /// machine, file, or month) reuse one stamp across groups.
    ///
    /// ```
    /// use downlake_query::{scan, Stamp};
    /// let mut stamp = Stamp::new(4);
    /// let distinct = scan([2usize, 0, 2, 3, 0])
    ///     .distinct_by(&mut stamp, 0, |&id| id)
    ///     .count();
    /// assert_eq!(distinct, 3);
    /// ```
    pub fn distinct_by<'s, F>(
        self,
        stamp: &'s mut Stamp,
        tag: u32,
        mut key: F,
    ) -> Query<impl Iterator<Item = I::Item> + 's>
    where
        I: 's,
        F: FnMut(&I::Item) -> usize + 's,
    {
        Query(self.0.filter(move |row| stamp.mark(key(row), tag)))
    }

    /// Terminal: number of rows.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Terminal: the first row, if any.
    pub fn first(mut self) -> Option<I::Item> {
        self.0.next()
    }

    /// Terminal: folds rows in source order.
    pub fn fold<A, F>(self, init: A, f: F) -> A
    where
        F: FnMut(A, I::Item) -> A,
    {
        self.0.fold(init, f)
    }

    /// Terminal: runs `f` on every row in source order.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f)
    }

    /// Terminal: ordered histogram of row values (key order, never hash
    /// order).
    ///
    /// ```
    /// use downlake_query::scan;
    /// let h = scan([3usize, 1, 3]).histogram();
    /// assert_eq!(h[&3], 2);
    /// assert_eq!(h[&1], 1);
    /// ```
    pub fn histogram(self) -> BTreeMap<I::Item, usize>
    where
        I::Item: Ord,
    {
        let mut out = BTreeMap::new();
        for row in self.0 {
            *out.entry(row).or_insert(0) += 1;
        }
        out
    }
}

impl<I, G> Query<I>
where
    I: Iterator<Item = G>,
    G: DenseKey,
{
    /// Terminal: rows-per-group over a dense-id key space of `groups`
    /// slots.
    ///
    /// ```
    /// use downlake_query::scan;
    /// let counts = scan([2usize, 0, 2]).group_count(3);
    /// assert_eq!(counts.as_slice(), &[1, 0, 2]);
    /// ```
    pub fn group_count(self, groups: usize) -> Dense<G, u64> {
        let mut acc = Dense::new(groups);
        for g in self.0 {
            acc.add(g, 1);
        }
        acc
    }
}

impl<I, G, V> Query<I>
where
    I: Iterator<Item = (G, V)>,
    G: DenseKey,
    V: AddAssign + Copy + Default,
{
    /// Terminal: per-group sum of the value half of `(group, value)`
    /// rows.
    pub fn group_sum(self, groups: usize) -> Dense<G, V> {
        let mut acc = Dense::new(groups);
        for (g, v) in self.0 {
            acc.add(g, v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_composes_lazily() {
        let total: usize = scan(0..100usize)
            .filter(|r| r % 3 == 0)
            .map(|r| r * 2)
            .fold(0, |a, b| a + b);
        assert_eq!(total, 2 * (0..100).filter(|r| r % 3 == 0).sum::<usize>());
        assert_eq!(scan([1, 2, 3]).first(), Some(1));
        assert_eq!(scan(std::iter::empty::<u8>()).first(), None);
    }

    #[test]
    fn distinct_by_respects_tags() {
        let mut stamp = Stamp::new(3);
        // Tag 0 marks ids 0 and 1; under tag 1 both count again.
        let a = scan([0usize, 1, 0])
            .distinct_by(&mut stamp, 0, |&x| x)
            .count();
        let b = scan([0usize, 1]).distinct_by(&mut stamp, 1, |&x| x).count();
        assert_eq!((a, b), (2, 2));
    }

    #[test]
    fn group_sum_accumulates_per_slot() {
        let sums = scan([(0usize, 2u64), (2, 5), (0, 1)]).group_sum(3);
        assert_eq!(sums.as_slice(), &[3, 0, 5]);
    }

    #[test]
    fn histogram_is_key_ordered() {
        let h = scan(["b", "a", "b"]).histogram();
        let keys: Vec<&str> = h.keys().copied().collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
