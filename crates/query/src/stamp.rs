//! Distinct counting without hash sets: stamp arrays for group-major
//! scans, bitmask arrays for row-order scans over few groups.

use std::fmt;

/// A stamp array for counting distinct dense ids: `mark(id, tag)`
/// returns `true` the first time `id` is seen under `tag`. Re-tagging
/// (one tag per machine / file / month group) reuses the allocation
/// across groups, so a whole group-major pass costs one `Vec`.
///
/// Correctness requires group-major iteration: all rows of one tag must
/// be visited before any row of a tag that reuses the same ids, and a
/// tag must never be revisited after another tag has run. The CSR
/// [`Adjacency`](crate::Adjacency) and [`RangePartition`](crate::RangePartition)
/// operators iterate groups in exactly that order.
///
/// ```
/// use downlake_query::Stamp;
/// let mut s = Stamp::new(3);
/// assert!(s.mark(0, 7));
/// assert!(!s.mark(0, 7));
/// assert!(s.mark(0, 8), "a new tag re-counts");
/// ```
pub struct Stamp {
    marks: Vec<u32>,
}

impl fmt::Debug for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stamp")
            .field("len", &self.marks.len())
            .finish()
    }
}

impl Stamp {
    /// A stamp array over `len` dense ids, with nothing marked.
    pub fn new(len: usize) -> Self {
        Self {
            marks: vec![u32::MAX; len],
        }
    }

    /// Marks `id` under `tag`; `true` iff it was not yet marked.
    /// `tag` must be below `u32::MAX` (dense indexes always are).
    pub fn mark(&mut self, id: usize, tag: u32) -> bool {
        if self.marks[id] == tag {
            false
        } else {
            self.marks[id] = tag;
            true
        }
    }

    /// Number of ids the stamp covers.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// Whether the stamp covers no ids.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

/// A bitmask stamp for row-order scans that count distinct ids per
/// group when groups interleave (so a [`Stamp`] tag would double-count)
/// and there are at most 16 groups: one bit per `(id, group)` pair.
///
/// ```
/// use downlake_query::MaskStamp;
/// let mut m = MaskStamp::new(2);
/// assert!(m.mark(0, 3));
/// assert!(!m.mark(0, 3));
/// assert!(m.mark(0, 4), "same id, other group");
/// assert!(m.mark(1, 3));
/// ```
pub struct MaskStamp {
    bits: Vec<u16>,
}

impl fmt::Debug for MaskStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaskStamp")
            .field("len", &self.bits.len())
            .finish()
    }
}

impl MaskStamp {
    /// A mask array over `len` dense ids, with nothing marked.
    pub fn new(len: usize) -> Self {
        Self { bits: vec![0; len] }
    }

    /// Marks `id` under `group` (0‥16); `true` iff it was not yet
    /// marked under that group.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `group >= 16`.
    pub fn mark(&mut self, id: usize, group: usize) -> bool {
        debug_assert!(group < 16, "MaskStamp supports at most 16 groups");
        let bit = 1u16 << group;
        if self.bits[id] & bit != 0 {
            false
        } else {
            self.bits[id] |= bit;
            true
        }
    }

    /// Whether `id` is marked under `group`.
    pub fn contains(&self, id: usize, group: usize) -> bool {
        self.bits[id] & (1u16 << group) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_counts_distinct_per_tag() {
        let mut s = Stamp::new(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.mark(0, 7));
        assert!(!s.mark(0, 7));
        assert!(s.mark(0, 8));
        assert!(s.mark(2, 8));
    }

    #[test]
    fn mask_tracks_groups_independently() {
        let mut m = MaskStamp::new(1);
        for group in 0..16 {
            assert!(m.mark(0, group));
            assert!(!m.mark(0, group));
            assert!(m.contains(0, group));
        }
    }
}
