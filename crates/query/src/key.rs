//! The [`DenseKey`] trait: ids that are positions in a dense table.

use downlake_types::{E2ldId, FileId, MachineIdx, ProcessId, UrlId};

/// A key that is a dense table position, usable to index a [`Col`] or
/// group a [`Dense`] accumulator.
///
/// Implementations must round-trip: `K::from_index(k.index()) == k` for
/// every value produced by a column, and `index()` must be injective.
///
/// [`Col`]: crate::Col
/// [`Dense`]: crate::Dense
pub trait DenseKey: Copy {
    /// The key's position in its dense table.
    fn index(self) -> usize;
    /// The key at position `index`.
    fn from_index(index: usize) -> Self;
}

macro_rules! dense_key {
    ($($ty:ty),+) => {
        $(impl DenseKey for $ty {
            fn index(self) -> usize {
                <$ty>::index(self)
            }
            fn from_index(index: usize) -> Self {
                <$ty>::from_raw(index as u32)
            }
        })+
    };
}

dense_key!(FileId, ProcessId, MachineIdx, E2ldId, UrlId);

impl DenseKey for usize {
    fn index(self) -> usize {
        self
    }
    fn from_index(index: usize) -> Self {
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_dense_key() {
        assert_eq!(DenseKey::index(FileId::from_raw(7)), 7);
        assert_eq!(<FileId as DenseKey>::from_index(7), FileId::from_raw(7));
        assert_eq!(DenseKey::index(MachineIdx::from_raw(3)), 3);
        assert_eq!(<usize as DenseKey>::from_index(9), 9);
        assert_eq!(DenseKey::index(E2ldId::from_raw(0)), 0);
        assert_eq!(
            <ProcessId as DenseKey>::from_index(2),
            ProcessId::from_raw(2)
        );
        assert_eq!(<UrlId as DenseKey>::from_index(4), UrlId::from_raw(4));
    }
}
