//! Ordered contiguous partitions of a row space (the study months).

use std::fmt;
use std::ops::Range;

/// An ordered partition of row indexes into contiguous per-group
/// ranges — the study's month → event-range map. Derived once and
/// shared, so every month-keyed pass reads the same partition and none
/// can drift.
///
/// Groups iterate in partition order, which is group-major: a
/// [`Stamp`](crate::Stamp) tagged by group index counts distinct ids
/// per group correctly.
///
/// ```
/// use downlake_query::RangePartition;
/// let months = RangePartition::new(vec![0..2, 2..2, 2..5]);
/// assert_eq!(months.group_count(), 3);
/// assert_eq!(months.range(2), 2..5);
/// assert_eq!(months.dense_column(6, u8::MAX), vec![0, 0, 2, 2, 2, u8::MAX]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct RangePartition {
    bounds: Vec<Range<u32>>,
}

impl fmt::Debug for RangePartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RangePartition")
            .field("bounds", &self.bounds)
            .finish()
    }
}

impl RangePartition {
    /// Wraps per-group row ranges, in group order.
    ///
    /// # Panics
    ///
    /// Panics if a range is decreasing or the ranges are not
    /// non-overlapping and ascending.
    pub fn new(bounds: Vec<Range<u32>>) -> Self {
        let mut prev_end = 0u32;
        for range in &bounds {
            assert!(range.start <= range.end, "decreasing range");
            assert!(range.start >= prev_end, "overlapping or unordered ranges");
            prev_end = range.end;
        }
        Self { bounds }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.bounds.len()
    }

    /// The row range of one group.
    pub fn range(&self, group: usize) -> Range<usize> {
        let r = &self.bounds[group];
        r.start as usize..r.end as usize
    }

    /// Iterates `(group, row range)` in group order.
    pub fn groups(&self) -> impl Iterator<Item = (usize, Range<usize>)> + '_ {
        (0..self.bounds.len()).map(move |g| (g, self.range(g)))
    }

    /// Materialises the partition as a dense per-row group column over
    /// `rows` rows; rows outside every range get `outside`.
    ///
    /// # Panics
    ///
    /// Panics if a range exceeds `rows` or there are more than 255
    /// groups.
    pub fn dense_column(&self, rows: usize, outside: u8) -> Vec<u8> {
        assert!(self.bounds.len() < usize::from(u8::MAX));
        let mut column = vec![outside; rows];
        for (group, range) in self.groups() {
            for slot in &mut column[range] {
                *slot = group as u8;
            }
        }
        column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_iterate_in_order_with_gaps() {
        let p = RangePartition::new(vec![1..3, 3..3, 4..6]);
        let got: Vec<(usize, Range<usize>)> = p.groups().collect();
        assert_eq!(got, vec![(0, 1..3), (1, 3..3), (2, 4..6)]);
        assert_eq!(
            p.dense_column(7, u8::MAX),
            vec![u8::MAX, 0, 0, u8::MAX, 2, 2, u8::MAX]
        );
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_is_rejected() {
        let _ = RangePartition::new(vec![0..3, 2..4]);
    }
}
