//! A small relational query layer over dense-id columns.
//!
//! Every table and figure in the paper is a filter/group/distinct-count
//! aggregation over the same five entity spaces (events, files,
//! processes, machines, e2LDs). This crate packages the handful of
//! operators those passes share, so an analysis reads as a short query
//! instead of a bespoke loop:
//!
//! - [`Col`] — a typed handle over a dense-id column: a `Col<FileId,
//!   FileLabel>` can only be indexed by [`downlake_types::FileId`],
//!   never by a process or machine id.
//! - [`Query`] — a lazy operator pipeline (`scan → filter → map →
//!   agg`). Aggregation terminals: [`Query::count`],
//!   [`Query::group_count`] / [`Query::group_sum`] (dense-id group-by),
//!   [`Query::histogram`] (ordered), and [`Query::distinct_by`]
//!   (first-sighting semantics via a [`Stamp`]).
//! - [`Adjacency`] — a CSR join (machine → events, file → events) as a
//!   first-class operator: groups iterate in dense-id order, rows keep
//!   their stored (time) order, and [`Adjacency::fold_groups_with`]
//!   chunks group ranges over a [`downlake_exec::Pool`] with a
//!   commutative merge.
//! - [`Dense`] — an owned group-by accumulator indexed by a dense id,
//!   with the commutative [`Dense::merge`] that makes chunked execution
//!   byte-identical to sequential execution.
//! - [`Stamp`] / [`MaskStamp`] — distinct counting without hash sets:
//!   a stamp array for group-major scans (one tag per group), a bitmask
//!   array for row-order scans over at most 16 groups.
//! - [`RangePartition`] — an ordered partition of the row space into
//!   contiguous ranges (the study months), derived once and shared by
//!   every month-keyed pass.
//!
//! # Determinism contract
//!
//! Every operator iterates in a defined order: scans in row order,
//! groups in dense-id order, histograms in key order. Nothing in this
//! crate iterates a hash map, reads a clock, or draws randomness, so a
//! query's result is a pure function of its input columns. Chunked
//! execution ([`Adjacency::fold_groups_with`], [`fold_rows_with`])
//! assigns each chunk a contiguous dense-id range and merges chunk
//! results **in chunk order**; because per-group aggregates touch only
//! their own group's rows and merges are commutative and associative,
//! the result is identical at every pool width.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod adjacency;
mod col;
mod dense;
mod key;
mod partition;
mod pipeline;
mod stamp;

pub use adjacency::{fold_rows_with, Adjacency};
pub use col::Col;
pub use dense::{top_k_by, Dense};
pub use key::DenseKey;
pub use partition::RangePartition;
pub use pipeline::{scan, Query};
pub use stamp::{MaskStamp, Stamp};
