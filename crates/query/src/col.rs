//! Typed column handles: a borrowed slice that can only be indexed by
//! its own dense-id type.

use crate::key::DenseKey;
use crate::pipeline::{scan, Query};
use std::fmt;
use std::marker::PhantomData;

/// A typed handle over a dense-id column.
///
/// `Col<FileId, FileLabel>` wraps a `&[FileLabel]` whose position `i`
/// holds the label of `FileId::from_index(i)` — so process or machine
/// ids cannot be used to index it by mistake.
///
/// ```
/// use downlake_query::Col;
/// use downlake_types::FileId;
///
/// let labels = [10u32, 20, 30];
/// let col: Col<'_, FileId, u32> = Col::new(&labels);
/// assert_eq!(col.get(FileId::from_raw(1)), 20);
/// assert_eq!(col.scan().count(), 3);
/// ```
pub struct Col<'a, K, V> {
    values: &'a [V],
    _key: PhantomData<K>,
}

impl<K, V> Clone for Col<'_, K, V> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<K, V> Copy for Col<'_, K, V> {}

impl<K, V: fmt::Debug> fmt::Debug for Col<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Col").field("values", &self.values).finish()
    }
}

impl<'a, K: DenseKey, V> Col<'a, K, V> {
    /// Wraps a dense column slice.
    pub fn new(values: &'a [V]) -> Self {
        Self {
            values,
            _key: PhantomData,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &'a [V] {
        self.values
    }

    /// The value at `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not belong to this column's table.
    pub fn get(&self, key: K) -> V
    where
        V: Copy,
    {
        self.values[key.index()]
    }

    /// Lazy scan of the whole column as `(key, value)` rows, in dense-id
    /// order.
    pub fn scan(&self) -> Query<impl Iterator<Item = (K, V)> + 'a>
    where
        V: Copy,
    {
        let values = self.values;
        scan(
            values
                .iter()
                .enumerate()
                .map(|(i, &v)| (K::from_index(i), v)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_types::ProcessId;

    #[test]
    fn scan_yields_dense_order() {
        let v = [5u8, 6, 7];
        let col: Col<'_, ProcessId, u8> = Col::new(&v);
        let rows: Vec<(ProcessId, u8)> = col.scan().collect();
        assert_eq!(
            rows,
            vec![
                (ProcessId::from_raw(0), 5),
                (ProcessId::from_raw(1), 6),
                (ProcessId::from_raw(2), 7),
            ]
        );
        assert_eq!(col.len(), 3);
        assert!(!col.is_empty());
    }
}
