//! The per-world `manifest.json`: the lake's commit record.
//!
//! The manifest is written **last** during a build — segments first,
//! then the world sidecar, then this file — so its presence is the
//! commit point: a directory without a parseable manifest is a crashed
//! or foreign write and is treated as corrupt. It names every segment
//! with its event count and checksum, letting
//! [`Lake::open`](crate::Lake::open) detect manifest/segment
//! disagreement (a segment swapped in from another build) on top of the
//! segments' own self-checks.
//!
//! Rendered and parsed with [`downlake_obs::json`]; 64-bit hashes are
//! carried as fixed-width hex strings so they survive any numeric
//! round-trip exactly.

use crate::error::LakeError;
use downlake_obs::json::{parse, Json};

/// File name of the manifest inside a world directory.
pub const MANIFEST_NAME: &str = "manifest.json";
/// File name of the world sidecar inside a world directory.
pub const AUX_NAME: &str = "world.bin";
/// Manifest format version.
pub const MANIFEST_VERSION: u64 = 1;

/// One segment as recorded by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// File name relative to the world directory.
    pub name: String,
    /// Event frames in the segment.
    pub events: u64,
    /// The segment's content checksum.
    pub checksum: u64,
}

/// The decoded lake manifest for one world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LakeManifest {
    /// Hash of the generation-relevant configuration.
    pub world_hash: u64,
    /// Total events across all segments.
    pub events: u64,
    /// Segments in shard order.
    pub segments: Vec<SegmentEntry>,
    /// Byte length of the world sidecar.
    pub aux_bytes: u64,
    /// Checksum of the world sidecar.
    pub aux_checksum: u64,
}

impl LakeManifest {
    /// Renders the manifest as deterministic, insertion-ordered JSON.
    pub fn render(&self) -> String {
        let segments: Vec<Json> = self
            .segments
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".to_owned(), Json::from(s.name.as_str())),
                    ("events".to_owned(), Json::from(s.events)),
                    ("checksum".to_owned(), Json::Str(hex(s.checksum))),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("lake".to_owned(), Json::from(MANIFEST_VERSION)),
            ("world_hash".to_owned(), Json::Str(hex(self.world_hash))),
            ("events".to_owned(), Json::from(self.events)),
            ("segments".to_owned(), Json::Arr(segments)),
            (
                "aux".to_owned(),
                Json::Obj(vec![
                    ("name".to_owned(), Json::from(AUX_NAME)),
                    ("bytes".to_owned(), Json::from(self.aux_bytes)),
                    ("checksum".to_owned(), Json::Str(hex(self.aux_checksum))),
                ]),
            ),
        ]);
        doc.render()
    }

    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Returns [`LakeError::ManifestMismatch`] when the document is not
    /// valid JSON, misses a field, or declares an unsupported version.
    pub fn parse(src: &str) -> Result<Self, LakeError> {
        let doc = parse(src).map_err(|_| bad("manifest is not valid JSON"))?;
        let version = doc
            .get("lake")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing lake version"))?;
        if version != MANIFEST_VERSION {
            return Err(bad("unsupported manifest version"));
        }
        let world_hash = doc
            .get("world_hash")
            .and_then(Json::as_str)
            .and_then(unhex)
            .ok_or_else(|| bad("missing world hash"))?;
        let events = doc
            .get("events")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing event total"))?;
        let raw_segments = doc
            .get("segments")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing segment list"))?;
        let mut segments = Vec::with_capacity(raw_segments.len());
        for seg in raw_segments {
            let name = seg
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("segment without name"))?;
            let seg_events = seg
                .get("events")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("segment without event count"))?;
            let checksum = seg
                .get("checksum")
                .and_then(Json::as_str)
                .and_then(unhex)
                .ok_or_else(|| bad("segment without checksum"))?;
            segments.push(SegmentEntry {
                name: name.to_owned(),
                events: seg_events,
                checksum,
            });
        }
        let aux = doc.get("aux").ok_or_else(|| bad("missing aux record"))?;
        let aux_bytes = aux
            .get("bytes")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("aux record without byte length"))?;
        let aux_checksum = aux
            .get("checksum")
            .and_then(Json::as_str)
            .and_then(unhex)
            .ok_or_else(|| bad("aux record without checksum"))?;
        Ok(Self {
            world_hash,
            events,
            segments,
            aux_bytes,
            aux_checksum,
        })
    }
}

fn bad(what: &'static str) -> LakeError {
    LakeError::ManifestMismatch { what }
}

/// Fixed-width lowercase hex for a 64-bit value.
pub(crate) fn hex(v: u64) -> String {
    format!("{v:016x}")
}

fn unhex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LakeManifest {
        LakeManifest {
            world_hash: 0xdead_beef_1234_5678,
            events: 42,
            segments: vec![
                SegmentEntry {
                    name: "shard-0.seg".to_owned(),
                    events: 40,
                    checksum: 0x0102_0304_0506_0708,
                },
                SegmentEntry {
                    name: "shard-1.seg".to_owned(),
                    events: 2,
                    checksum: u64::MAX,
                },
            ],
            aux_bytes: 1000,
            aux_checksum: 7,
        }
    }

    #[test]
    fn manifest_round_trips_exactly() {
        let m = sample();
        let rendered = m.render();
        let parsed = LakeManifest::parse(&rendered).expect("self-rendered manifest parses");
        assert_eq!(parsed, m);
        // Deterministic rendering: a second render is byte-identical.
        assert_eq!(parsed.render(), rendered);
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        assert!(LakeManifest::parse("").is_err());
        assert!(LakeManifest::parse("{}").is_err());
        assert!(LakeManifest::parse("{\"lake\": 99}").is_err());
        let mut truncated = sample().render();
        truncated.truncate(truncated.len() / 2);
        assert!(LakeManifest::parse(&truncated).is_err());
        // A non-hex world hash is rejected, not misparsed.
        let doc = sample()
            .render()
            .replace(&hex(0xdead_beef_1234_5678), "zzzzzzzzzzzzzzzz");
        assert!(LakeManifest::parse(&doc).is_err());
    }
}
