//! Disk-resident event lake for `downlake`.
//!
//! The paper's measurement spans ~3M download events over five months
//! (§II); our reproduction used to regenerate that world in RAM on
//! every run, which caps study scale at host memory and re-pays the
//! full generation cost for every sweep permutation that shares a
//! seed. This crate turns the event corpus into a durable,
//! re-scannable artifact: a **seed-addressed segment store** under
//! `<lake-root>/<world-hash>/`, where the world hash is a pure function
//! of the generation-relevant configuration — so cross-run caching
//! falls out of the addressing scheme instead of being bolted on.
//!
//! Layout of one world directory:
//!
//! ```text
//! <lake-root>/<world-hash>/
//!   shard-0.seg     codec frames, header+footer committed (segment.rs)
//!   shard-1.seg     …one segment per generation shard…
//!   world.bin       opaque sidecar: the world's latent file table
//!   manifest.json   names every file — written LAST: the commit point
//! ```
//!
//! The lake is deliberately **policy-free**: it stores whatever byte
//! sidecar and per-shard event streams the injected builder produces,
//! and depends only on the telemetry codec, the worker pool, the
//! observability registry, and core types — never on the generator.
//! That keeps the layering DAG acyclic (the generator's caller wires
//! the two together) and makes the store reusable for any sharded,
//! time-sorted event source.
//!
//! Corruption is a *typed, expected* condition, not a panic:
//! [`Lake::open`] verifies magic, version, world hash, shard index,
//! file size, every frame's structure, the streaming checksum, the
//! committed footer, the header's summary fields, and
//! manifest/segment agreement — and [`Lake::open_or_build`] falls back
//! to regeneration (counting `lake.rebuild.corrupt`) on any damage.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
pub mod manifest;
mod scan;
pub mod segment;

pub use error::LakeError;
pub use manifest::{LakeManifest, SegmentEntry, AUX_NAME, MANIFEST_NAME};
pub use scan::LakeScan;
pub use segment::{SegmentHeader, SegmentReader, SegmentSummary, SegmentWriter};

use crate::manifest::hex;
use crate::scan::FrameMerge;
use crate::segment::{fnv1a, fnv1a_start};
use downlake_obs::Registry;
use downlake_telemetry::RawEvent;
use downlake_types::Timestamp;
use std::fs;
use std::path::{Path, PathBuf};

/// What a builder hands the lake to persist: one time-sorted event
/// vector per shard plus an opaque world sidecar.
///
/// The shard vectors must each be stably time-sorted; the lake's merge
/// then reproduces the stable global sort of their concatenation.
#[derive(Debug)]
pub struct LakeBuild {
    /// Per-shard event streams, each stably sorted by timestamp.
    pub shard_events: Vec<Vec<RawEvent>>,
    /// Opaque sidecar bytes (the generator's world file table).
    pub aux: Vec<u8>,
}

/// An opened, fully verified world in the lake.
#[derive(Debug)]
pub struct Lake {
    world_dir: PathBuf,
    world_hash: u64,
    manifest: LakeManifest,
    aux: Vec<u8>,
}

impl Lake {
    /// Opens and fully verifies the world `world_hash` under `root`.
    ///
    /// Every segment is streamed end to end: header fields, frame
    /// structure, checksum, footer, and manifest agreement are all
    /// checked before the lake is handed out, so subsequent scans can
    /// only fail if the files change underneath the process.
    ///
    /// # Errors
    ///
    /// [`LakeError::Absent`] when the world directory does not exist
    /// (a cold cache); any other [`LakeError`] pinpoints the damage.
    pub fn open(root: &Path, world_hash: u64) -> Result<Self, LakeError> {
        let world_dir = world_dir(root, world_hash);
        if !world_dir.is_dir() {
            return Err(LakeError::Absent);
        }
        let src = fs::read_to_string(world_dir.join(MANIFEST_NAME))
            .map_err(|_| LakeError::Missing { what: "manifest" })?;
        let manifest = LakeManifest::parse(&src)?;
        if manifest.world_hash != world_hash {
            return Err(LakeError::WorldMismatch {
                expected: world_hash,
                found: manifest.world_hash,
            });
        }
        let mut events = 0u64;
        for (shard, entry) in manifest.segments.iter().enumerate() {
            let reader =
                SegmentReader::open(&world_dir.join(&entry.name), world_hash, shard as u32)?;
            let summary = reader.validate()?;
            if summary.events != entry.events || summary.checksum != entry.checksum {
                return Err(LakeError::ManifestMismatch {
                    what: "segment disagrees with its manifest entry",
                });
            }
            events += summary.events;
        }
        if events != manifest.events {
            return Err(LakeError::ManifestMismatch {
                what: "event total disagrees with segments",
            });
        }
        let aux = fs::read(world_dir.join(AUX_NAME)).map_err(|_| LakeError::Missing {
            what: "world sidecar",
        })?;
        if aux.len() as u64 != manifest.aux_bytes {
            return Err(LakeError::ManifestMismatch {
                what: "sidecar length disagrees with manifest",
            });
        }
        let aux_checksum = fnv1a(fnv1a_start(), &aux);
        if aux_checksum != manifest.aux_checksum {
            return Err(LakeError::ChecksumMismatch {
                expected: manifest.aux_checksum,
                found: aux_checksum,
            });
        }
        Ok(Self {
            world_dir,
            world_hash,
            manifest,
            aux,
        })
    }

    /// Opens the cached world, or builds it by calling `build` when the
    /// cache is cold **or corrupt** — corruption is wiped and rebuilt,
    /// never panicked on.
    ///
    /// Observability: exactly one of `lake.open.warm`,
    /// `lake.build.cold`, or `lake.rebuild.corrupt` is incremented per
    /// call, plus `lake.segments` / `lake.events` for the resulting
    /// world. A warm open performs zero event generation (`build` is
    /// never invoked), which tests assert through these counters.
    ///
    /// # Errors
    ///
    /// Returns [`LakeError`] when building or the post-build reopen
    /// fails — i.e. only on real I/O trouble, not on cache state.
    pub fn open_or_build<F>(
        root: &Path,
        world_hash: u64,
        registry: &Registry,
        build: F,
    ) -> Result<Self, LakeError>
    where
        F: FnOnce() -> LakeBuild,
    {
        match Self::open(root, world_hash) {
            Ok(lake) => {
                registry.counter_add("lake.open.warm", 1);
                lake.record(registry);
                return Ok(lake);
            }
            Err(LakeError::Absent) => {
                registry.counter_add("lake.build.cold", 1);
            }
            Err(_) => {
                registry.counter_add("lake.rebuild.corrupt", 1);
                let dir = world_dir(root, world_hash);
                if dir.exists() {
                    fs::remove_dir_all(&dir)
                        .map_err(|e| error::io_err("wiping corrupt world", e))?;
                }
            }
        }
        write_world(root, world_hash, &build())?;
        // Reopen through the verifying path: the freshly written world
        // gets exactly the same scrutiny as a cached one.
        let lake = Self::open(root, world_hash)?;
        lake.record(registry);
        Ok(lake)
    }

    fn record(&self, registry: &Registry) {
        registry.counter_add("lake.segments", self.manifest.segments.len() as u64);
        registry.counter_add("lake.events", self.manifest.events);
    }

    /// The world hash this lake serves.
    pub fn world_hash(&self) -> u64 {
        self.world_hash
    }

    /// The world directory on disk.
    pub fn world_dir(&self) -> &Path {
        &self.world_dir
    }

    /// Number of segments (generation shards) in this world.
    pub fn shard_count(&self) -> usize {
        self.manifest.segments.len()
    }

    /// Total events across all segments.
    pub fn event_count(&self) -> u64 {
        self.manifest.events
    }

    /// The opaque world sidecar written at build time.
    pub fn aux(&self) -> &[u8] {
        &self.aux
    }

    /// Merged scan over the full study window, in the canonical stream
    /// order (stable global time sort).
    ///
    /// # Errors
    ///
    /// Returns [`LakeError`] when a segment cannot be reopened.
    pub fn scan(&self) -> Result<LakeScan, LakeError> {
        self.scan_window_seconds(i64::MIN, i64::MAX)
    }

    /// Merged scan restricted to `[lo, hi]` (inclusive). Segments whose
    /// header span misses the window are never read past their header;
    /// frames before the window are skipped without materialization via
    /// the codec's `skip_event` fast path.
    ///
    /// # Errors
    ///
    /// Returns [`LakeError`] when a segment cannot be reopened.
    pub fn scan_window(&self, lo: Timestamp, hi: Timestamp) -> Result<LakeScan, LakeError> {
        self.scan_window_seconds(lo.seconds(), hi.seconds())
    }

    fn scan_window_seconds(&self, lo: i64, hi: i64) -> Result<LakeScan, LakeError> {
        Ok(LakeScan::new(FrameMerge::new(self.readers()?, lo, hi)?))
    }

    /// The merged stream as wire bytes: exactly
    /// `telemetry::codec::encode_events` of the canonical stream,
    /// produced by copying stored frames verbatim (the codec is
    /// canonical, so no decode/re-encode round-trip is needed). This is
    /// what the live replay path feeds to `StreamSession::push_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`LakeError`] when a segment cannot be reopened or a
    /// frame fails its structural walk.
    pub fn encode_merged(&self) -> Result<Vec<u8>, LakeError> {
        let mut merge = FrameMerge::new(self.readers()?, i64::MIN, i64::MAX)?;
        let mut out = Vec::with_capacity(self.payload_hint());
        while let Some(frame) = merge.next_frame() {
            out.extend_from_slice(frame?);
        }
        Ok(out)
    }

    fn payload_hint(&self) -> usize {
        // Events average well under a kilobyte; the hint only needs to
        // be in the right ballpark to avoid repeated doubling.
        (self.manifest.events as usize).saturating_mul(160)
    }

    fn readers(&self) -> Result<Vec<SegmentReader>, LakeError> {
        let mut readers = Vec::with_capacity(self.manifest.segments.len());
        for (shard, entry) in self.manifest.segments.iter().enumerate() {
            readers.push(SegmentReader::open(
                &self.world_dir.join(&entry.name),
                self.world_hash,
                shard as u32,
            )?);
        }
        Ok(readers)
    }
}

/// The directory a world hash maps to under `root`.
pub fn world_dir(root: &Path, world_hash: u64) -> PathBuf {
    root.join(hex(world_hash))
}

fn segment_name(shard: usize) -> String {
    format!("shard-{shard}.seg")
}

/// Writes a complete world: segments, sidecar, then — as the commit
/// point — the manifest.
fn write_world(root: &Path, world_hash: u64, build: &LakeBuild) -> Result<(), LakeError> {
    let dir = world_dir(root, world_hash);
    fs::create_dir_all(&dir).map_err(|e| error::io_err("creating world directory", e))?;
    let mut entries = Vec::with_capacity(build.shard_events.len());
    let mut events = 0u64;
    for (shard, shard_stream) in build.shard_events.iter().enumerate() {
        let name = segment_name(shard);
        let mut writer = SegmentWriter::create(&dir.join(&name), world_hash, shard as u32)?;
        for event in shard_stream {
            writer.append(event)?;
        }
        let header = writer.finalize()?;
        events += header.event_count;
        entries.push(SegmentEntry {
            name,
            events: header.event_count,
            checksum: header.checksum,
        });
    }
    fs::write(dir.join(AUX_NAME), &build.aux)
        .map_err(|e| error::io_err("writing world sidecar", e))?;
    let manifest = LakeManifest {
        world_hash,
        events,
        segments: entries,
        aux_bytes: build.aux.len() as u64,
        aux_checksum: fnv1a(fnv1a_start(), &build.aux),
    };
    fs::write(dir.join(MANIFEST_NAME), manifest.render())
        .map_err(|e| error::io_err("writing manifest", e))?;
    Ok(())
}
