//! K-way merge scans over a world's segments.
//!
//! Each segment holds a contiguous unit-range's events, stably
//! time-sorted within the shard. Merging by `(timestamp, shard index)`
//! while preserving within-shard order is exactly a stable sort of the
//! shard concatenation — i.e. the canonical in-RAM stream order of
//! `World::generate`, reproduced byte-identically at any shard count.
//!
//! Two consumers share the same merge core: [`LakeScan`] decodes each
//! frame into a [`RawEvent`] for the collection server, and
//! [`Lake::encode_merged`](crate::Lake::encode_merged) copies the raw
//! frame bytes verbatim (the codec is canonical, so the concatenation
//! equals `encode_events` of the merged stream). Window scans skip
//! whole segments via the header's min/max timestamps and skip
//! out-of-window frames via the codec's no-materialization fast path.

use crate::error::LakeError;
use crate::segment::SegmentReader;
use downlake_telemetry::codec::decode_event;
use downlake_telemetry::RawEvent;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

struct Source {
    reader: SegmentReader,
    frame: Vec<u8>,
    /// Window-exhausted: every later frame in this shard is past `hi`.
    done: bool,
}

/// The shared merge core: yields raw frames in `(timestamp, shard)`
/// order, restricted to `[lo, hi]` (seconds, inclusive).
pub(crate) struct FrameMerge {
    sources: Vec<Source>,
    heap: BinaryHeap<Reverse<(i64, usize)>>,
    current: Vec<u8>,
    lo: i64,
    hi: i64,
}

impl FrameMerge {
    pub(crate) fn new(readers: Vec<SegmentReader>, lo: i64, hi: i64) -> Result<Self, LakeError> {
        let mut merge = Self {
            sources: readers
                .into_iter()
                .map(|reader| {
                    // A shard whose whole span misses the window never
                    // needs its payload touched at all.
                    let header = *reader.header();
                    let outside =
                        header.event_count == 0 || header.max_ts < lo || header.min_ts > hi;
                    Source {
                        reader,
                        frame: Vec::new(),
                        done: outside,
                    }
                })
                .collect(),
            heap: BinaryHeap::new(),
            current: Vec::new(),
            lo,
            hi,
        };
        for idx in 0..merge.sources.len() {
            merge.advance(idx)?;
        }
        Ok(merge)
    }

    /// Pulls the shard's next in-window frame into its buffer and
    /// re-registers the shard in the heap; marks the shard done at
    /// end-of-payload or past the window.
    fn advance(&mut self, idx: usize) -> Result<(), LakeError> {
        let source = &mut self.sources[idx];
        if source.done {
            return Ok(());
        }
        loop {
            match source.reader.read_frame(&mut source.frame)? {
                None => {
                    source.done = true;
                    return Ok(());
                }
                Some(ts) if ts < self.lo => continue,
                Some(ts) if ts > self.hi => {
                    // Within-shard order is sorted: nothing later fits.
                    source.done = true;
                    return Ok(());
                }
                Some(ts) => {
                    self.heap.push(Reverse((ts, idx)));
                    return Ok(());
                }
            }
        }
    }

    /// The next frame in merged order, or `None` when all shards are
    /// drained. The returned slice is valid until the next call.
    pub(crate) fn next_frame(&mut self) -> Option<Result<&[u8], LakeError>> {
        let Reverse((_, idx)) = self.heap.pop()?;
        std::mem::swap(&mut self.current, &mut self.sources[idx].frame);
        if let Err(e) = self.advance(idx) {
            return Some(Err(e));
        }
        Some(Ok(&self.current))
    }
}

/// Merged event iterator over a world's segments.
///
/// Yields `Result<RawEvent, LakeError>`; the first error fuses the
/// iterator. When the lake was opened through
/// [`Lake::open`](crate::Lake::open) every segment has already been
/// fully verified, so scan-time errors indicate the file changed
/// underneath the process.
#[derive(Debug)]
pub struct LakeScan {
    merge: FrameMerge,
    failed: bool,
}

impl std::fmt::Debug for FrameMerge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameMerge")
            .field("sources", &self.sources.len())
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl LakeScan {
    pub(crate) fn new(merge: FrameMerge) -> Self {
        Self {
            merge,
            failed: false,
        }
    }
}

impl Iterator for LakeScan {
    type Item = Result<RawEvent, LakeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let frame = match self.merge.next_frame()? {
            Ok(frame) => frame,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        match decode_event(frame) {
            Ok((event, _)) => Some(Ok(event)),
            Err(e) => {
                self.failed = true;
                Some(Err(LakeError::Codec(e)))
            }
        }
    }
}
