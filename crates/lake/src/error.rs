//! Typed corruption taxonomy for the lake.
//!
//! Every way a cached world can be unusable gets its own variant, so
//! [`Lake::open_or_build`](crate::Lake::open_or_build) can distinguish
//! the one *expected* miss — the world directory simply not existing
//! yet ([`LakeError::Absent`]) — from genuine corruption, which it
//! counts under `lake.rebuild.corrupt` before falling back to
//! regeneration. Nothing in this crate panics on bad bytes.

use downlake_telemetry::CodecError;
use std::error::Error;
use std::fmt;

/// Why a lake, segment, or manifest failed to open or verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LakeError {
    /// The world directory does not exist: a cold cache, not damage.
    Absent,
    /// A file the manifest (or the layout) promises is missing or
    /// unreadable inside an existing world directory.
    Missing {
        /// What was expected.
        what: &'static str,
    },
    /// An I/O operation failed mid-read or mid-write.
    Io {
        /// What was being done.
        what: &'static str,
        /// The OS error, stringified (keeps the variant comparable).
        detail: String,
    },
    /// A segment's leading magic bytes are wrong — including the
    /// all-zero placeholder a crashed, never-finalized write leaves
    /// behind.
    BadMagic {
        /// The bytes found where the magic belongs.
        found: [u8; 8],
    },
    /// The segment speaks a format version this build does not.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The segment belongs to a different world than the caller asked
    /// for.
    WorldMismatch {
        /// The world hash requested.
        expected: u64,
        /// The world hash in the header.
        found: u64,
    },
    /// The segment carries a different shard index than its manifest
    /// position claims.
    ShardMismatch {
        /// The shard index expected from the manifest order.
        expected: u32,
        /// The shard index in the header.
        found: u32,
    },
    /// Stored and recomputed content checksums disagree.
    ChecksumMismatch {
        /// The stored checksum.
        expected: u64,
        /// The recomputed (or footer) checksum.
        found: u64,
    },
    /// The file ends before its declared layout does.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// A header field (event count, min/max timestamp) disagrees with
    /// the payload it summarizes.
    HeaderMismatch {
        /// The field that disagrees.
        what: &'static str,
    },
    /// The manifest is malformed, or names segments that disagree with
    /// the headers on disk.
    ManifestMismatch {
        /// What disagreed.
        what: &'static str,
    },
    /// A frame inside a segment payload failed the codec's structural
    /// walk.
    Codec(CodecError),
}

impl LakeError {
    /// Whether this error is the expected cold-cache miss rather than
    /// corruption: `open_or_build` counts the two differently.
    pub fn is_cold(&self) -> bool {
        matches!(self, LakeError::Absent)
    }
}

impl fmt::Display for LakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LakeError::Absent => f.write_str("lake world directory does not exist"),
            LakeError::Missing { what } => write!(f, "lake {what} is missing"),
            LakeError::Io { what, detail } => write!(f, "lake i/o failed while {what}: {detail}"),
            LakeError::BadMagic { found } => {
                write!(f, "segment magic mismatch (found {found:02x?})")
            }
            LakeError::BadVersion { found } => {
                write!(f, "unsupported segment format version {found}")
            }
            LakeError::WorldMismatch { expected, found } => {
                write!(
                    f,
                    "segment world hash {found:016x} != expected {expected:016x}"
                )
            }
            LakeError::ShardMismatch { expected, found } => {
                write!(f, "segment shard index {found} != expected {expected}")
            }
            LakeError::ChecksumMismatch { expected, found } => {
                write!(f, "segment checksum {found:016x} != stored {expected:016x}")
            }
            LakeError::Truncated { what } => write!(f, "truncated lake {what}"),
            LakeError::HeaderMismatch { what } => {
                write!(f, "segment header {what} disagrees with payload")
            }
            LakeError::ManifestMismatch { what } => {
                write!(f, "lake manifest mismatch: {what}")
            }
            LakeError::Codec(e) => write!(f, "segment frame malformed: {e}"),
        }
    }
}

impl Error for LakeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LakeError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for LakeError {
    fn from(e: CodecError) -> Self {
        LakeError::Codec(e)
    }
}

/// Wraps an [`std::io::Error`] with what was being attempted.
pub(crate) fn io_err(what: &'static str, e: std::io::Error) -> LakeError {
    LakeError::Io {
        what,
        detail: e.to_string(),
    }
}
