//! On-disk segment format: fixed-layout header, codec-frame payload,
//! footer-committed finalize.
//!
//! ```text
//! offset  size  field
//!      0     8  magic          b"DLAKESEG"
//!      8     4  version        u32 LE
//!     12     4  shard          u32 LE
//!     16     8  world hash     u64 LE
//!     24     8  event count    u64 LE
//!     32     8  min timestamp  i64 LE (0 when the segment is empty)
//!     40     8  max timestamp  i64 LE (0 when the segment is empty)
//!     48     8  checksum       u64 LE, FNV-1a over the payload bytes
//!     56     8  payload length u64 LE
//!     64     …  payload        concatenated telemetry codec frames
//!      …     8  footer magic   b"DLAKEEND"
//!      …     8  footer checksum, equal to the header checksum
//! ```
//!
//! [`SegmentWriter::create`] writes a **zeroed** 64-byte placeholder
//! where the header belongs; the real header is written only by
//! [`SegmentWriter::finalize`], *after* the footer. A crash at any
//! earlier point therefore leaves either a zero magic (placeholder
//! still in place) or a file whose size disagrees with its declared
//! payload length — both of which [`SegmentReader::open`] rejects with
//! a typed [`LakeError`], never a panic.

use crate::error::{io_err, LakeError};
use downlake_telemetry::codec::skip_event;
use downlake_telemetry::RawEvent;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Leading magic of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"DLAKESEG";
/// Magic of the committed footer.
pub const FOOTER_MAGIC: [u8; 8] = *b"DLAKEEND";
/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 64;
/// Fixed footer length in bytes.
pub const FOOTER_LEN: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a running state.
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The FNV-1a initial state.
pub fn fnv1a_start() -> u64 {
    FNV_OFFSET
}

/// Decoded fixed-layout segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Format version.
    pub version: u32,
    /// Shard index of this segment within its world.
    pub shard: u32,
    /// Hash of the generation-relevant configuration.
    pub world_hash: u64,
    /// Number of event frames in the payload.
    pub event_count: u64,
    /// Smallest frame timestamp (seconds); 0 when empty.
    pub min_ts: i64,
    /// Largest frame timestamp (seconds); 0 when empty.
    pub max_ts: i64,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
}

impl SegmentHeader {
    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&SEGMENT_MAGIC);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        out[12..16].copy_from_slice(&self.shard.to_le_bytes());
        out[16..24].copy_from_slice(&self.world_hash.to_le_bytes());
        out[24..32].copy_from_slice(&self.event_count.to_le_bytes());
        out[32..40].copy_from_slice(&self.min_ts.to_le_bytes());
        out[40..48].copy_from_slice(&self.max_ts.to_le_bytes());
        out[48..56].copy_from_slice(&self.checksum.to_le_bytes());
        out[56..64].copy_from_slice(&self.payload_len.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Self, LakeError> {
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&bytes[0..8]);
        if magic != SEGMENT_MAGIC {
            return Err(LakeError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(take4(bytes, 8));
        if version != SEGMENT_VERSION {
            return Err(LakeError::BadVersion { found: version });
        }
        Ok(Self {
            version,
            shard: u32::from_le_bytes(take4(bytes, 12)),
            world_hash: u64::from_le_bytes(take8(bytes, 16)),
            event_count: u64::from_le_bytes(take8(bytes, 24)),
            min_ts: i64::from_le_bytes(take8(bytes, 32)),
            max_ts: i64::from_le_bytes(take8(bytes, 40)),
            checksum: u64::from_le_bytes(take8(bytes, 48)),
            payload_len: u64::from_le_bytes(take8(bytes, 56)),
        })
    }
}

fn take4(bytes: &[u8; HEADER_LEN], at: usize) -> [u8; 4] {
    let mut out = [0u8; 4];
    out.copy_from_slice(&bytes[at..at + 4]);
    out
}

fn take8(bytes: &[u8; HEADER_LEN], at: usize) -> [u8; 8] {
    let mut out = [0u8; 8];
    out.copy_from_slice(&bytes[at..at + 8]);
    out
}

/// Streams events into a segment file; the header is committed last.
#[derive(Debug)]
pub struct SegmentWriter {
    file: BufWriter<File>,
    shard: u32,
    world_hash: u64,
    count: u64,
    min_ts: i64,
    max_ts: i64,
    checksum: u64,
    payload_len: u64,
    frame: Vec<u8>,
}

impl SegmentWriter {
    /// Creates a segment file with a zeroed header placeholder.
    ///
    /// # Errors
    ///
    /// Returns [`LakeError::Io`] when the file cannot be created.
    pub fn create(path: &Path, world_hash: u64, shard: u32) -> Result<Self, LakeError> {
        let file = File::create(path).map_err(|e| io_err("creating segment", e))?;
        let mut file = BufWriter::new(file);
        file.write_all(&[0u8; HEADER_LEN])
            .map_err(|e| io_err("writing header placeholder", e))?;
        Ok(Self {
            file,
            shard,
            world_hash,
            count: 0,
            min_ts: i64::MAX,
            max_ts: i64::MIN,
            checksum: fnv1a_start(),
            payload_len: 0,
            frame: Vec::new(),
        })
    }

    /// Appends one event as a codec frame.
    ///
    /// # Errors
    ///
    /// Returns [`LakeError::Io`] when the write fails.
    pub fn append(&mut self, event: &RawEvent) -> Result<(), LakeError> {
        self.frame.clear();
        downlake_telemetry::codec::encode_event(event, &mut self.frame);
        self.checksum = fnv1a(self.checksum, &self.frame);
        self.payload_len += self.frame.len() as u64;
        self.count += 1;
        let secs = event.timestamp.seconds();
        self.min_ts = self.min_ts.min(secs);
        self.max_ts = self.max_ts.max(secs);
        self.file
            .write_all(&self.frame)
            .map_err(|e| io_err("appending frame", e))
    }

    /// Commits the segment: footer first, then the real header over the
    /// placeholder. Returns the committed header.
    ///
    /// # Errors
    ///
    /// Returns [`LakeError::Io`] when a write or seek fails.
    pub fn finalize(mut self) -> Result<SegmentHeader, LakeError> {
        self.file
            .write_all(&FOOTER_MAGIC)
            .map_err(|e| io_err("writing footer", e))?;
        self.file
            .write_all(&self.checksum.to_le_bytes())
            .map_err(|e| io_err("writing footer", e))?;
        let (min_ts, max_ts) = if self.count == 0 {
            (0, 0)
        } else {
            (self.min_ts, self.max_ts)
        };
        let header = SegmentHeader {
            version: SEGMENT_VERSION,
            shard: self.shard,
            world_hash: self.world_hash,
            event_count: self.count,
            min_ts,
            max_ts,
            checksum: self.checksum,
            payload_len: self.payload_len,
        };
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("seeking to header", e))?;
        self.file
            .write_all(&header.encode())
            .map_err(|e| io_err("committing header", e))?;
        self.file
            .flush()
            .map_err(|e| io_err("flushing segment", e))?;
        Ok(header)
    }
}

/// Summary of a fully verified segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSummary {
    /// Frames verified.
    pub events: u64,
    /// The (verified) content checksum.
    pub checksum: u64,
}

/// Bounded-memory reader over one segment: buffered reads, one reused
/// frame buffer, no mmap.
#[derive(Debug)]
pub struct SegmentReader {
    file: BufReader<File>,
    header: SegmentHeader,
    remaining: u64,
    finished: bool,
    count: u64,
    min_ts: i64,
    max_ts: i64,
    checksum: u64,
}

impl SegmentReader {
    /// Opens a segment and verifies its header against the expected
    /// world hash, shard index, and the file's actual size.
    ///
    /// # Errors
    ///
    /// Returns the precise [`LakeError`] for a missing file, bad magic
    /// or version, world/shard mismatch, or a size that disagrees with
    /// the declared payload length (the signature of a truncated copy).
    pub fn open(path: &Path, world_hash: u64, shard: u32) -> Result<Self, LakeError> {
        let file = File::open(path).map_err(|_| LakeError::Missing { what: "segment" })?;
        let size = file
            .metadata()
            .map_err(|e| io_err("reading segment metadata", e))?
            .len();
        let mut file = BufReader::new(file);
        let mut raw = [0u8; HEADER_LEN];
        file.read_exact(&mut raw)
            .map_err(|_| LakeError::Truncated {
                what: "segment header",
            })?;
        let header = SegmentHeader::decode(&raw)?;
        if header.world_hash != world_hash {
            return Err(LakeError::WorldMismatch {
                expected: world_hash,
                found: header.world_hash,
            });
        }
        if header.shard != shard {
            return Err(LakeError::ShardMismatch {
                expected: shard,
                found: header.shard,
            });
        }
        let declared = HEADER_LEN as u64 + header.payload_len + FOOTER_LEN as u64;
        if size != declared {
            return Err(LakeError::Truncated {
                what: "segment file",
            });
        }
        Ok(Self {
            file,
            remaining: header.payload_len,
            header,
            finished: false,
            count: 0,
            min_ts: i64::MAX,
            max_ts: i64::MIN,
            checksum: fnv1a_start(),
        })
    }

    /// The verified header.
    pub fn header(&self) -> &SegmentHeader {
        &self.header
    }

    /// Reads the next frame into `out` (prefix included) and returns
    /// its timestamp in seconds, or `None` once the payload — and with
    /// it the footer and every header crosscheck — has been consumed
    /// and verified.
    ///
    /// The frame is structurally validated via the codec's
    /// [`skip_event`] fast path (no record materialization); callers
    /// that need the event decode `out` themselves.
    ///
    /// # Errors
    ///
    /// Returns a typed [`LakeError`] on truncation, structural frame
    /// corruption, checksum or footer damage, or a header field that
    /// disagrees with the payload.
    pub fn read_frame(&mut self, out: &mut Vec<u8>) -> Result<Option<i64>, LakeError> {
        if self.remaining == 0 {
            if !self.finished {
                self.finish()?;
                self.finished = true;
            }
            return Ok(None);
        }
        if self.remaining < 4 {
            return Err(LakeError::Truncated {
                what: "frame prefix",
            });
        }
        let mut prefix = [0u8; 4];
        self.file
            .read_exact(&mut prefix)
            .map_err(|e| io_err("reading frame prefix", e))?;
        let len = u32::from_le_bytes(prefix) as u64;
        if len + 4 > self.remaining {
            return Err(LakeError::Truncated {
                what: "frame payload",
            });
        }
        out.clear();
        out.extend_from_slice(&prefix);
        out.resize(4 + len as usize, 0);
        self.file
            .read_exact(&mut out[4..])
            .map_err(|e| io_err("reading frame payload", e))?;
        let (ts, consumed) = skip_event(out)?;
        debug_assert_eq!(consumed, out.len());
        self.checksum = fnv1a(self.checksum, out);
        self.remaining -= consumed as u64;
        self.count += 1;
        let secs = ts.seconds();
        self.min_ts = self.min_ts.min(secs);
        self.max_ts = self.max_ts.max(secs);
        Ok(Some(secs))
    }

    /// Streams every frame, verifying structure, checksum, footer, and
    /// header summary fields. Returns the verified totals.
    ///
    /// # Errors
    ///
    /// Propagates the first [`LakeError`] the streaming walk hits.
    pub fn validate(mut self) -> Result<SegmentSummary, LakeError> {
        let mut frame = Vec::new();
        while self.read_frame(&mut frame)?.is_some() {}
        Ok(SegmentSummary {
            events: self.header.event_count,
            checksum: self.header.checksum,
        })
    }

    fn finish(&mut self) -> Result<(), LakeError> {
        let mut footer = [0u8; FOOTER_LEN];
        self.file
            .read_exact(&mut footer)
            .map_err(|_| LakeError::Truncated {
                what: "segment footer",
            })?;
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&footer[0..8]);
        if magic != FOOTER_MAGIC {
            return Err(LakeError::BadMagic { found: magic });
        }
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&footer[8..16]);
        let footer_checksum = u64::from_le_bytes(sum);
        if footer_checksum != self.header.checksum {
            return Err(LakeError::ChecksumMismatch {
                expected: self.header.checksum,
                found: footer_checksum,
            });
        }
        if self.checksum != self.header.checksum {
            return Err(LakeError::ChecksumMismatch {
                expected: self.header.checksum,
                found: self.checksum,
            });
        }
        if self.count != self.header.event_count {
            return Err(LakeError::HeaderMismatch {
                what: "event count",
            });
        }
        let (min_ts, max_ts) = if self.count == 0 {
            (0, 0)
        } else {
            (self.min_ts, self.max_ts)
        };
        if min_ts != self.header.min_ts {
            return Err(LakeError::HeaderMismatch {
                what: "min timestamp",
            });
        }
        if max_ts != self.header.max_ts {
            return Err(LakeError::HeaderMismatch {
                what: "max timestamp",
            });
        }
        Ok(())
    }
}
