//! Corruption honesty: every header field, the payload, the footer,
//! the sidecar, and the manifest each get a byte flipped or truncated,
//! and the lake must (a) report a typed [`LakeError`] — never panic —
//! and (b) fall back to regeneration through [`Lake::open_or_build`],
//! counting `lake.rebuild.corrupt`.

use downlake_lake::{Lake, LakeBuild, LakeError, AUX_NAME, MANIFEST_NAME};
use downlake_obs::Registry;
use downlake_telemetry::codec::encode_events;
use downlake_telemetry::RawEvent;
use downlake_types::{FileHash, FileMeta, MachineId, PackerInfo, SignerInfo, Timestamp};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, process-unique scratch directory (no tempfile dependency).
fn scratch_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "downlake-lake-corruption-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn event(file: u64, day: u32) -> RawEvent {
    RawEvent {
        file: FileHash::from_raw(file),
        file_meta: FileMeta {
            size_bytes: 4096 + file,
            disk_name: "setup.exe".into(),
            signer: Some(SignerInfo::valid(
                "Somoto Ltd.",
                "thawte code signing ca g2",
            )),
            packer: Some(PackerInfo::new("NSIS")),
        },
        machine: MachineId::from_raw(7),
        process: FileHash::from_raw(100),
        process_meta: FileMeta {
            size_bytes: 0,
            disk_name: "chrome.exe".into(),
            signer: None,
            packer: None,
        },
        url: "http://dl.example.com/f/setup.exe"
            .parse()
            .expect("static url"),
        timestamp: Timestamp::from_day(day),
        executed: true,
    }
}

const WORLD: u64 = 0x00c0_ffee_0badu64;

/// Three shards with interleaved timestamps, so the k-way merge is
/// actually exercised, plus a non-empty sidecar.
fn build() -> LakeBuild {
    LakeBuild {
        shard_events: vec![
            vec![event(1, 0), event(2, 3), event(3, 9)],
            vec![event(4, 1), event(5, 3)],
            vec![event(6, 2), event(7, 5), event(8, 5), event(9, 30)],
        ],
        aux: b"latent world file table stand-in".to_vec(),
    }
}

/// The canonical stream: stable global time sort of the shard concat.
fn canonical() -> Vec<RawEvent> {
    let b = build();
    let mut all: Vec<RawEvent> = b.shard_events.into_iter().flatten().collect();
    all.sort_by_key(|e| e.timestamp);
    all
}

fn build_world(root: &Path) -> Registry {
    let registry = Registry::new();
    let lake = Lake::open_or_build(root, WORLD, &registry, build).expect("cold build");
    assert_eq!(lake.shard_count(), 3);
    assert_eq!(lake.event_count(), 9);
    registry
}

fn segment_path(root: &Path) -> PathBuf {
    downlake_lake::world_dir(root, WORLD).join("shard-0.seg")
}

fn flip_byte(path: &Path, offset: usize) {
    let mut bytes = fs::read(path).expect("read file to corrupt");
    bytes[offset] ^= 0xff;
    fs::write(path, bytes).expect("write corrupted file");
}

/// After `corrupt` has damaged the on-disk world: `open` must return
/// the expected typed error (checked by `check`), and `open_or_build`
/// must regenerate rather than panic, counting the corruption.
fn assert_detected_and_rebuilt(root: &Path, check: impl FnOnce(&LakeError)) {
    let err = Lake::open(root, WORLD).expect_err("corruption must be detected");
    assert!(!err.is_cold(), "corruption must not look like a cold cache");
    check(&err);
    let registry = Registry::new();
    let lake = Lake::open_or_build(root, WORLD, &registry, build).expect("fallback rebuild");
    assert_eq!(registry.counter("lake.rebuild.corrupt"), 1);
    assert_eq!(registry.counter("lake.open.warm"), 0);
    assert_eq!(lake.event_count(), 9);
    // The rebuilt world is fully healthy again.
    assert!(Lake::open(root, WORLD).is_ok());
}

#[test]
fn cold_build_then_warm_open_with_zero_generation() {
    let root = scratch_root();
    let registry = build_world(&root);
    assert_eq!(registry.counter("lake.build.cold"), 1);
    assert_eq!(registry.counter("lake.open.warm"), 0);
    assert_eq!(registry.counter("lake.segments"), 3);
    assert_eq!(registry.counter("lake.events"), 9);

    // Warm reopen: the builder must never run.
    let registry = Registry::new();
    let lake = Lake::open_or_build(&root, WORLD, &registry, || {
        panic!("warm open must not invoke the builder")
    })
    .expect("warm open");
    assert_eq!(registry.counter("lake.open.warm"), 1);
    assert_eq!(registry.counter("lake.build.cold"), 0);
    assert_eq!(registry.counter("lake.rebuild.corrupt"), 0);
    assert_eq!(lake.aux(), b"latent world file table stand-in");

    // The merged scan reproduces the canonical stream exactly.
    let scanned: Vec<RawEvent> = lake
        .scan()
        .expect("scan")
        .map(|r| r.expect("verified segment frame"))
        .collect();
    assert_eq!(scanned, canonical());

    // And the merged wire bytes equal encode_events of that stream.
    let expected = encode_events(canonical().iter());
    assert_eq!(lake.encode_merged().expect("merged bytes"), expected);
}

#[test]
fn window_scan_matches_filtered_canonical_stream() {
    let root = scratch_root();
    build_world(&root);
    let lake = Lake::open(&root, WORLD).expect("open");
    let lo = Timestamp::from_day(2);
    let hi = Timestamp::from_day(6);
    let scanned: Vec<RawEvent> = lake
        .scan_window(lo, hi)
        .expect("window scan")
        .map(|r| r.expect("frame"))
        .collect();
    let expected: Vec<RawEvent> = canonical()
        .into_iter()
        .filter(|e| e.timestamp >= lo && e.timestamp <= hi)
        .collect();
    assert!(!expected.is_empty(), "window must select something");
    assert_eq!(scanned, expected);
}

#[test]
fn flipped_magic_is_bad_magic() {
    let root = scratch_root();
    build_world(&root);
    flip_byte(&segment_path(&root), 0);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::BadMagic { .. }), "got {e:?}")
    });
}

#[test]
fn crashed_write_placeholder_header_is_bad_magic() {
    let root = scratch_root();
    build_world(&root);
    // A writer that died before finalize leaves the zeroed placeholder.
    let path = segment_path(&root);
    let mut bytes = fs::read(&path).expect("read segment");
    for b in bytes.iter_mut().take(64) {
        *b = 0;
    }
    fs::write(&path, bytes).expect("write crashed segment");
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::BadMagic { found } if *found == [0u8; 8]))
    });
}

#[test]
fn flipped_version_is_bad_version() {
    let root = scratch_root();
    build_world(&root);
    flip_byte(&segment_path(&root), 8);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::BadVersion { .. }), "got {e:?}")
    });
}

#[test]
fn flipped_shard_index_is_shard_mismatch() {
    let root = scratch_root();
    build_world(&root);
    flip_byte(&segment_path(&root), 12);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(
            matches!(e, LakeError::ShardMismatch { expected: 0, .. }),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_world_hash_is_world_mismatch() {
    let root = scratch_root();
    build_world(&root);
    flip_byte(&segment_path(&root), 16);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(
            matches!(
                e,
                LakeError::WorldMismatch {
                    expected: WORLD,
                    ..
                }
            ),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_event_count_is_header_mismatch() {
    let root = scratch_root();
    build_world(&root);
    flip_byte(&segment_path(&root), 24);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(
            matches!(
                e,
                LakeError::HeaderMismatch {
                    what: "event count"
                }
            ),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_min_timestamp_is_header_mismatch() {
    let root = scratch_root();
    build_world(&root);
    flip_byte(&segment_path(&root), 32);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::HeaderMismatch { .. }), "got {e:?}")
    });
}

#[test]
fn flipped_max_timestamp_is_header_mismatch() {
    let root = scratch_root();
    build_world(&root);
    flip_byte(&segment_path(&root), 40);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::HeaderMismatch { .. }), "got {e:?}")
    });
}

#[test]
fn flipped_stored_checksum_is_checksum_mismatch() {
    let root = scratch_root();
    build_world(&root);
    flip_byte(&segment_path(&root), 48);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::ChecksumMismatch { .. }), "got {e:?}")
    });
}

#[test]
fn flipped_payload_length_is_truncation() {
    let root = scratch_root();
    build_world(&root);
    flip_byte(&segment_path(&root), 56);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::Truncated { .. }), "got {e:?}")
    });
}

#[test]
fn flipped_payload_byte_is_detected() {
    let root = scratch_root();
    build_world(&root);
    let path = segment_path(&root);
    let len = fs::read(&path).expect("read segment").len();
    // Deep inside the payload, clear of header (64) and footer (16).
    flip_byte(&path, 64 + (len - 80) / 2);
    // Depending on which field the byte lands in, the structural walk
    // (codec error) or the streaming checksum catches it — both typed.
    assert_detected_and_rebuilt(&root, |e| {
        assert!(
            matches!(
                e,
                LakeError::Codec(_)
                    | LakeError::ChecksumMismatch { .. }
                    | LakeError::HeaderMismatch { .. }
                    | LakeError::Truncated { .. }
            ),
            "got {e:?}"
        )
    });
}

#[test]
fn truncated_mid_payload_is_detected() {
    let root = scratch_root();
    build_world(&root);
    let path = segment_path(&root);
    let mut bytes = fs::read(&path).expect("read segment");
    let cut = 64 + (bytes.len() - 80) / 2;
    bytes.truncate(cut);
    fs::write(&path, bytes).expect("write truncated segment");
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::Truncated { .. }), "got {e:?}")
    });
}

#[test]
fn truncated_footer_is_detected() {
    let root = scratch_root();
    build_world(&root);
    let path = segment_path(&root);
    let mut bytes = fs::read(&path).expect("read segment");
    let keep = bytes.len() - 5;
    bytes.truncate(keep);
    fs::write(&path, bytes).expect("write truncated segment");
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::Truncated { .. }), "got {e:?}")
    });
}

#[test]
fn corrupted_footer_magic_is_bad_magic() {
    let root = scratch_root();
    build_world(&root);
    let path = segment_path(&root);
    let len = fs::read(&path).expect("read segment").len();
    flip_byte(&path, len - 16);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::BadMagic { .. }), "got {e:?}")
    });
}

#[test]
fn missing_segment_is_missing() {
    let root = scratch_root();
    build_world(&root);
    fs::remove_file(segment_path(&root)).expect("remove segment");
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::Missing { .. }), "got {e:?}")
    });
}

#[test]
fn missing_manifest_is_missing_not_absent() {
    let root = scratch_root();
    build_world(&root);
    let dir = downlake_lake::world_dir(&root, WORLD);
    fs::remove_file(dir.join(MANIFEST_NAME)).expect("remove manifest");
    assert_detected_and_rebuilt(&root, |e| {
        assert!(
            matches!(e, LakeError::Missing { what: "manifest" }),
            "got {e:?}"
        )
    });
}

#[test]
fn manifest_segment_disagreement_is_manifest_mismatch() {
    let root = scratch_root();
    build_world(&root);
    let dir = downlake_lake::world_dir(&root, WORLD);
    let manifest = fs::read_to_string(dir.join(MANIFEST_NAME)).expect("read manifest");
    // Claim shard-0 holds 4 events instead of 3: segments themselves
    // are intact, only the manifest lies.
    let doctored = manifest.replacen("\"events\": 3", "\"events\": 4", 1);
    assert_ne!(doctored, manifest, "replacement must hit");
    fs::write(dir.join(MANIFEST_NAME), doctored).expect("write doctored manifest");
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::ManifestMismatch { .. }), "got {e:?}")
    });
}

#[test]
fn corrupted_sidecar_is_checksum_mismatch() {
    let root = scratch_root();
    build_world(&root);
    let dir = downlake_lake::world_dir(&root, WORLD);
    flip_byte(&dir.join(AUX_NAME), 4);
    assert_detected_and_rebuilt(&root, |e| {
        assert!(matches!(e, LakeError::ChecksumMismatch { .. }), "got {e:?}")
    });
}

#[test]
fn wrong_world_hash_request_is_absent_not_corrupt() {
    let root = scratch_root();
    build_world(&root);
    // A different world hash maps to a different directory: cold, not
    // corrupt — the cache never lies about which world it holds.
    let err = Lake::open(&root, WORLD ^ 1).expect_err("other world is absent");
    assert!(err.is_cold());
}
