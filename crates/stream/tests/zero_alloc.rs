//! Pins the acceptance criterion "the compiled rule engine classifies
//! with zero heap allocation per event": a counting global allocator
//! measures the exact number of heap allocations across a burst of
//! encode+classify calls on warmed buffers.
//!
//! (The library itself is `#![forbid(unsafe_code)]`; the allocator
//! shim below lives in this test binary only.)

use downlake_rulelearn::{Condition, InstancesBuilder, Rule, RuleSet};
use downlake_stream::CompiledRuleSet;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn compiled() -> CompiledRuleSet {
    let mut b = InstancesBuilder::new(
        &["signer", "packer", "type", "rank"],
        &["benign", "malicious"],
    );
    b.push(&["somoto", "NSIS", "browser", "unranked"], "malicious");
    b.push(&["teamviewer", "INNO", "windows", "top 1k"], "benign");
    b.push(&["binstall", "UPX", "java", "top 10k"], "benign");
    let schema = b.build().schema().clone();
    let rule = |conds: Vec<Condition>, class: u8| Rule {
        conditions: conds,
        class,
        covered: 10,
        errors: 0,
    };
    CompiledRuleSet::compile(&RuleSet::new(
        schema,
        vec![
            rule(
                vec![
                    Condition { attr: 0, value: 0 },
                    Condition { attr: 1, value: 0 },
                ],
                1,
            ),
            rule(vec![Condition { attr: 0, value: 1 }], 0),
            rule(vec![Condition { attr: 2, value: 2 }], 0),
            rule(vec![Condition { attr: 3, value: 0 }], 1),
        ],
    ))
}

#[test]
fn classify_allocates_nothing_per_event() {
    let engine = compiled();
    // Rotating inputs exercising every verdict: class, reject, no-match.
    let inputs: [[&str; 4]; 4] = [
        ["somoto", "NSIS", "other", "unranked"],
        ["teamviewer", "INNO", "java", "top 1k"],
        ["never-seen", "never-seen", "never-seen", "never-seen"],
        // somoto+NSIS (malicious) vs java (benign): conflict → Rejected.
        ["somoto", "NSIS", "java", "top 1k"],
    ];
    let mut scratch = Vec::with_capacity(engine.arity());

    // Warm-up: lets the scratch row reach its steady-state capacity.
    for values in &inputs {
        let _ = engine.classify_features(values.as_slice(), &mut scratch);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut checksum = 0usize;
    for round in 0..10_000usize {
        let values = &inputs[round % inputs.len()];
        let verdict = engine.classify_features(values.as_slice(), &mut scratch);
        // Consume the verdict so the loop cannot be optimized away.
        checksum = checksum.wrapping_add(match verdict {
            downlake_rulelearn::Verdict::Class(c) => c as usize,
            downlake_rulelearn::Verdict::Rejected => 101,
            downlake_rulelearn::Verdict::NoMatch => 211,
        });
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "encode+classify must not touch the heap (checksum {checksum})"
    );
    // One of each verdict per round: Class(1), Class(0), NoMatch, Rejected.
    #[allow(clippy::identity_op)]
    let expected = (1 + 0 + 211 + 101) * 2500;
    assert_eq!(checksum, expected);
}

#[test]
fn compilation_itself_is_the_only_allocating_phase() {
    let engine = compiled();
    let mut scratch = Vec::with_capacity(engine.arity());
    let _ = engine.classify_features(&["somoto", "NSIS", "browser", "unranked"], &mut scratch);

    // A fresh, pre-sized scratch row also stays allocation-free after
    // its first fill.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1000 {
        let _ = engine.classify(&scratch);
    }
    assert_eq!(ALLOCATIONS.load(Ordering::Relaxed) - before, 0);
}
