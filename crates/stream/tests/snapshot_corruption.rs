//! Snapshot corruption honesty, mirroring `crates/lake/tests/corruption.rs`:
//! every header field, the payload, and the footer each get a byte
//! flipped or truncated, and restore must (a) report the exact typed
//! [`SnapshotError`] variant — never panic — and (b) fall back to a
//! cold service through [`StreamService::restore_or_cold`], counting
//! `service.restore.corrupt`.

use downlake_groundtruth::UrlLabeler;
use downlake_obs::Registry;
use downlake_rulelearn::{Condition, InstancesBuilder, Rule, RuleSet};
use downlake_stream::{
    CompiledRuleSet, ServiceConfig, SnapshotError, StreamService, SNAPSHOT_HEADER_LEN,
};
use downlake_telemetry::{RawEvent, ReportingPolicy};
use downlake_types::{FileHash, FileMeta, MachineId, SignerInfo, Timestamp, Url};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, process-unique scratch directory (no tempfile dependency).
fn scratch_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "downlake-snapshot-corruption-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// An 8-attribute engine whose single rule fires on `signer` (interned
/// as value 0 of attribute 0).
fn engine_for(signer: &str) -> CompiledRuleSet {
    let mut b = InstancesBuilder::new(
        &[
            "file's signer",
            "file's CA",
            "file's packer",
            "process's signer",
            "process's CA",
            "process's packer",
            "process's type",
            "domain's Alexa rank",
        ],
        &["benign", "malicious"],
    );
    b.push(
        &[
            signer,
            "ca",
            "(unpacked)",
            "(unsigned)",
            "(unsigned)",
            "(unpacked)",
            "browser",
            "unranked",
        ],
        "malicious",
    );
    let schema = b.build().schema().clone();
    CompiledRuleSet::compile(&RuleSet::new(
        schema,
        vec![Rule {
            conditions: vec![Condition { attr: 0, value: 0 }],
            class: 1,
            covered: 10,
            errors: 0,
        }],
    ))
}

fn event(file: u64, machine: u64, signer: Option<&str>) -> RawEvent {
    RawEvent {
        file: FileHash::from_raw(file),
        file_meta: FileMeta {
            size_bytes: 1,
            disk_name: "setup.exe".into(),
            signer: signer.map(|s| SignerInfo::valid(s, "ca")),
            packer: None,
        },
        machine: MachineId::from_raw(machine),
        process: FileHash::from_raw(999),
        process_meta: FileMeta {
            disk_name: "chrome.exe".into(),
            ..FileMeta::default()
        },
        url: "http://a.com/f.exe".parse::<Url>().unwrap(),
        timestamp: Timestamp::from_day(0),
        executed: true,
    }
}

const CONFIG: ServiceConfig = ServiceConfig {
    shards: 4,
    epoch_len: 16,
};

/// Builds a service with state in every snapshot section (admission
/// lists, vectors, shard logs, a published swap with divergence, and a
/// staged pending engine) and writes its snapshot.
fn write_snapshot(dir: &Path) -> PathBuf {
    let urls = UrlLabeler::new();
    let engine = engine_for("somoto");
    let mut svc = StreamService::new(CONFIG, ReportingPolicy::paper_whitelist(20), &urls, engine);
    let events: Vec<RawEvent> = (0..40)
        .map(|i| event(i % 7, i, if i % 7 == 0 { Some("somoto") } else { None }))
        .collect();
    for raw in &events[..8] {
        svc.push(raw);
    }
    // One swap published at seq 16, one still staged at snapshot time.
    svc.stage_engine(engine_for("other-signer"));
    for raw in &events[8..30] {
        svc.push(raw);
    }
    assert_eq!(svc.generation(), 1, "first swap must have published");
    svc.stage_engine(engine_for("third-signer"));
    assert!(svc.pending_swap().is_some());
    let path = dir.join("service.snap");
    svc.snapshot_to(&path).expect("write snapshot");
    path
}

fn flip_byte(path: &Path, offset: usize) {
    let mut bytes = fs::read(path).expect("read file to corrupt");
    bytes[offset] ^= 0xff;
    fs::write(path, bytes).expect("write corrupted file");
}

/// The engines a restore must re-supply for the snapshot
/// `write_snapshot` produces.
fn restore_engines() -> (CompiledRuleSet, CompiledRuleSet) {
    (engine_for("other-signer"), engine_for("third-signer"))
}

/// After `flip`/truncate damaged the snapshot: `restore` must return
/// the expected typed error (checked by `check`), and `restore_or_cold`
/// must fall back to a cold service rather than panic, counting the
/// corruption.
fn assert_detected_and_cold(path: &Path, check: impl FnOnce(&SnapshotError)) {
    let urls = UrlLabeler::new();
    let (active, staged) = restore_engines();
    let err = StreamService::restore(path, &urls, &active, Some(&staged))
        .expect_err("corruption must be detected");
    assert!(!err.is_cold(), "corruption must not look like a cold start");
    check(&err);
    let registry = Registry::new();
    let svc = StreamService::restore_or_cold(
        path,
        CONFIG,
        ReportingPolicy::paper_whitelist(20),
        &urls,
        &active,
        Some(&staged),
        &registry,
    );
    assert_eq!(registry.counter("service.restore.corrupt"), 1);
    assert_eq!(registry.counter("service.restore.warm"), 0);
    assert_eq!(registry.counter("service.restore.cold"), 0);
    assert_eq!(svc.events_seen(), 0, "fallback must be a cold service");
}

#[test]
fn healthy_snapshot_restores_warm() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    let urls = UrlLabeler::new();
    let (active, staged) = restore_engines();
    let registry = Registry::new();
    let svc = StreamService::restore_or_cold(
        &path,
        CONFIG,
        ReportingPolicy::paper_whitelist(20),
        &urls,
        &active,
        Some(&staged),
        &registry,
    );
    assert_eq!(registry.counter("service.restore.warm"), 1);
    assert_eq!(registry.counter("service.restore.corrupt"), 0);
    assert_eq!(svc.events_seen(), 30);
    assert_eq!(svc.generation(), 1);
    assert_eq!(svc.swap_history().len(), 1);
    assert!(svc.pending_swap().is_some());
}

#[test]
fn flipped_magic_is_bad_magic() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    flip_byte(&path, 0);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(e, SnapshotError::BadMagic { what: "header", .. }),
            "got {e:?}"
        )
    });
}

#[test]
fn crashed_write_placeholder_header_is_bad_magic() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    // A writer that died before finalize leaves the zeroed placeholder.
    let mut bytes = fs::read(&path).expect("read snapshot");
    for b in bytes.iter_mut().take(SNAPSHOT_HEADER_LEN) {
        *b = 0;
    }
    fs::write(&path, bytes).expect("write crashed snapshot");
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(e, SnapshotError::BadMagic { what: "header", found } if *found == [0u8; 8]),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_version_is_bad_version() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    flip_byte(&path, 8);
    assert_detected_and_cold(&path, |e| {
        assert!(matches!(e, SnapshotError::BadVersion { .. }), "got {e:?}")
    });
}

#[test]
fn flipped_shard_count_is_header_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    flip_byte(&path, 12);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(
                e,
                SnapshotError::HeaderMismatch {
                    what: "shard count"
                }
            ),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_sequence_number_is_header_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    flip_byte(&path, 16);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(
                e,
                SnapshotError::HeaderMismatch {
                    what: "sequence number"
                }
            ),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_epoch_length_is_header_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    flip_byte(&path, 24);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(
                e,
                SnapshotError::HeaderMismatch {
                    what: "epoch length"
                }
            ),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_generation_is_header_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    flip_byte(&path, 32);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(e, SnapshotError::HeaderMismatch { what: "generation" }),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_reserved_bytes_are_header_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    flip_byte(&path, 36);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(e, SnapshotError::HeaderMismatch { what: "reserved" }),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_engine_fingerprint_is_header_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    flip_byte(&path, 40);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(
                e,
                SnapshotError::HeaderMismatch {
                    what: "engine fingerprint"
                }
            ),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_stored_checksum_is_checksum_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    flip_byte(&path, 48);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(e, SnapshotError::ChecksumMismatch { what: "footer", .. }),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_payload_length_is_truncation() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    flip_byte(&path, 56);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(e, SnapshotError::Truncated { what: "payload" }),
            "got {e:?}"
        )
    });
}

#[test]
fn flipped_payload_byte_is_checksum_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    let len = fs::read(&path).expect("read snapshot").len();
    // Deep inside the payload, clear of header (64) and footer (16).
    flip_byte(&path, SNAPSHOT_HEADER_LEN + (len - 80) / 2);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(
                e,
                SnapshotError::ChecksumMismatch {
                    what: "payload",
                    ..
                }
            ),
            "got {e:?}"
        )
    });
}

#[test]
fn every_single_payload_byte_flip_is_detected() {
    // Exhaustive over the payload: no byte may flip silently. All land
    // in ChecksumMismatch because verification happens before decode.
    let root = scratch_root();
    let path = write_snapshot(&root);
    let pristine = fs::read(&path).expect("read snapshot");
    let urls = UrlLabeler::new();
    let (active, staged) = restore_engines();
    for offset in (SNAPSHOT_HEADER_LEN..pristine.len() - 16).step_by(97) {
        let mut bytes = pristine.clone();
        bytes[offset] ^= 0xff;
        fs::write(&path, bytes).expect("write corrupted snapshot");
        let err = StreamService::restore(&path, &urls, &active, Some(&staged))
            .expect_err("flip must be detected");
        assert!(
            matches!(
                err,
                SnapshotError::ChecksumMismatch {
                    what: "payload",
                    ..
                }
            ),
            "offset {offset}: got {err:?}"
        );
    }
}

#[test]
fn truncated_below_header_is_truncated_header() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    let mut bytes = fs::read(&path).expect("read snapshot");
    bytes.truncate(SNAPSHOT_HEADER_LEN / 2);
    fs::write(&path, bytes).expect("write truncated snapshot");
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(e, SnapshotError::Truncated { what: "header" }),
            "got {e:?}"
        )
    });
}

#[test]
fn truncated_mid_payload_is_detected() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    let mut bytes = fs::read(&path).expect("read snapshot");
    let cut = SNAPSHOT_HEADER_LEN + (bytes.len() - 80) / 2;
    bytes.truncate(cut);
    fs::write(&path, bytes).expect("write truncated snapshot");
    assert_detected_and_cold(&path, |e| {
        assert!(matches!(e, SnapshotError::Truncated { .. }), "got {e:?}")
    });
}

#[test]
fn truncated_footer_is_detected() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    let mut bytes = fs::read(&path).expect("read snapshot");
    let keep = bytes.len() - 5;
    bytes.truncate(keep);
    fs::write(&path, bytes).expect("write truncated snapshot");
    assert_detected_and_cold(&path, |e| {
        assert!(matches!(e, SnapshotError::Truncated { .. }), "got {e:?}")
    });
}

#[test]
fn corrupted_footer_magic_is_bad_magic() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    let len = fs::read(&path).expect("read snapshot").len();
    flip_byte(&path, len - 16);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(e, SnapshotError::BadMagic { what: "footer", .. }),
            "got {e:?}"
        )
    });
}

#[test]
fn corrupted_footer_checksum_is_checksum_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    let len = fs::read(&path).expect("read snapshot").len();
    flip_byte(&path, len - 8);
    assert_detected_and_cold(&path, |e| {
        assert!(
            matches!(e, SnapshotError::ChecksumMismatch { what: "footer", .. }),
            "got {e:?}"
        )
    });
}

#[test]
fn missing_snapshot_is_absent_and_counts_cold() {
    let root = scratch_root();
    let path = root.join("never-written.snap");
    let urls = UrlLabeler::new();
    let (active, staged) = restore_engines();
    let err = StreamService::restore(&path, &urls, &active, Some(&staged))
        .expect_err("missing file is absent");
    assert!(err.is_cold(), "absent must be a cold start, not corruption");
    let registry = Registry::new();
    let svc = StreamService::restore_or_cold(
        &path,
        CONFIG,
        ReportingPolicy::paper_whitelist(20),
        &urls,
        &active,
        Some(&staged),
        &registry,
    );
    assert_eq!(registry.counter("service.restore.cold"), 1);
    assert_eq!(registry.counter("service.restore.corrupt"), 0);
    assert_eq!(svc.events_seen(), 0);
}

#[test]
fn wrong_active_engine_is_engine_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    let urls = UrlLabeler::new();
    let (_, staged) = restore_engines();
    let stale = engine_for("stale-rules");
    let err = StreamService::restore(&path, &urls, &stale, Some(&staged))
        .expect_err("stale engine must be rejected");
    assert!(
        matches!(
            err,
            SnapshotError::EngineMismatch {
                what: "active engine",
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn missing_staged_engine_is_engine_mismatch() {
    let root = scratch_root();
    let path = write_snapshot(&root);
    let urls = UrlLabeler::new();
    let (active, _) = restore_engines();
    let err = StreamService::restore(&path, &urls, &active, None)
        .expect_err("recorded pending swap needs its engine");
    assert!(
        matches!(
            err,
            SnapshotError::EngineMismatch {
                what: "staged engine",
                found: 0,
                ..
            }
        ),
        "got {err:?}"
    );
}
