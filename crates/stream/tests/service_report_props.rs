//! Property tests for [`ServiceReport`]'s commutative merge — the law
//! licensed by the `ServiceReport` entry in `merge-contracts.json`.
//!
//! `StreamService::report` folds per-shard partials on the pool, so the
//! merged report must be independent of fold order: integer fields add,
//! class tallies merge label-wise and stay sorted. Labels are drawn
//! from a small pool so collisions happen — a law over disjoint labels
//! only would prove nothing. The `proptest!` property has a
//! deterministic grid mirror.

use downlake_stream::ServiceReport;
use proptest::prelude::*;

/// The label pool: real verdict labels a service produces, shared
/// across generated partials so merges must fold duplicates.
const LABELS: [&str; 4] = ["benign", "malicious", "rejected", "no_match"];

/// A strategy for one synthetic per-shard partial with small tallies.
fn report_strategy() -> impl Strategy<Value = ServiceReport> {
    (
        proptest::collection::vec((0usize..LABELS.len(), 0u64..100), 0..6),
        proptest::collection::vec(0u64..1000, 4),
    )
        .prop_map(|(tallies, t)| {
            let mut partial = ServiceReport {
                shards: 1,
                events_routed: t[0],
                files_classified: t[1],
                class_verdicts: Vec::new(),
                rejected: t[2],
                no_match: t[3],
            };
            // Feed raw (label, count) pairs through merge itself so the
            // partial is in canonical form, like shard_report emits.
            let raw = ServiceReport {
                class_verdicts: tallies
                    .into_iter()
                    .map(|(li, n)| (LABELS[li].to_owned(), n))
                    .collect(),
                ..ServiceReport::default()
            };
            // A single-element merge normalizes (sorts + folds dups).
            partial.merge(raw);
            partial.shards = 1;
            partial
        })
}

/// The law: integer fields add and label tallies fold by addition, so
/// every merge order over every partition yields the same report, with
/// the default (all-zero) report as identity.
fn check_merge_laws(partials: &[ServiceReport], split: usize) {
    let split = split % (partials.len() + 1);
    let fold = |parts: &[ServiceReport]| -> ServiceReport {
        let mut merged = ServiceReport::default();
        for p in parts {
            merged.merge(p.clone());
        }
        merged
    };

    // Commutativity: a ⊕ b == b ⊕ a.
    let a = fold(&partials[..split]);
    let b = fold(&partials[split..]);
    let mut ab = a.clone();
    ab.merge(b.clone());
    let mut ba = b.clone();
    ba.merge(a.clone());
    assert_eq!(ab, ba, "merge must commute");

    // Associativity + identity: any partition folds to the sequential
    // result, and the default report is a no-op.
    let sequential = fold(partials);
    assert_eq!(ab, sequential, "partitioning must not matter");
    let mut with_identity = sequential.clone();
    with_identity.merge(ServiceReport::default());
    assert_eq!(with_identity, sequential, "default report must be identity");

    // Tally conservation: nothing lost or double-counted.
    assert_eq!(
        ab.shards,
        partials.iter().map(|p| p.shards).sum::<u64>(),
        "shard partial count must be conserved"
    );
    let per_label: u64 = partials
        .iter()
        .flat_map(|p| p.class_verdicts.iter().map(|(_, n)| n))
        .sum();
    assert_eq!(
        ab.class_verdicts.iter().map(|(_, n)| n).sum::<u64>(),
        per_label,
        "class tallies must be conserved"
    );

    // Tallies stay sorted and label-unique — the canonical form.
    let labels: Vec<&str> = ab.class_verdicts.iter().map(|(l, _)| l.as_str()).collect();
    let mut sorted = labels.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(labels, sorted, "labels must stay sorted and unique");
}

proptest! {
    #[test]
    fn service_report_merge_commutes(
        partials in proptest::collection::vec(report_strategy(), 0..10),
        split in 0usize..16,
    ) {
        check_merge_laws(&partials, split);
    }
}

/// Deterministic mirror: a dense set of partials covering every label
/// and every split point.
#[test]
fn grid_mirror_merge_laws() {
    let mut partials = Vec::new();
    for (i, label) in LABELS.iter().enumerate() {
        partials.push(ServiceReport {
            shards: 1,
            events_routed: 10 * i as u64 + 1,
            files_classified: 3 * i as u64,
            class_verdicts: vec![
                (label.to_string(), i as u64 + 1),
                (LABELS[(i + 1) % LABELS.len()].to_string(), 2),
            ],
            rejected: i as u64,
            no_match: 1,
        });
    }
    // Pre-normalize each hand-built partial the way merge would.
    for p in &mut partials {
        let raw = std::mem::take(p);
        let mut canonical = ServiceReport::default();
        canonical.merge(raw);
        *p = canonical;
    }
    for split in 0..=partials.len() {
        check_merge_laws(&partials, split);
    }
}
