//! Snapshot/restore for [`StreamService`]: stop mid-stream, resume
//! byte-identical.
//!
//! The on-disk format mirrors the lake's crash-safety contract
//! (`downlake-lake` segments): a fixed 64-byte header, a payload of
//! `telemetry::codec` fields, and a 16-byte footer that is written
//! *before* the real header is committed.
//!
//! ```text
//! offset  size  field
//!      0     8  magic          b"DLSVCSNP"
//!      8     4  version        u32 LE
//!     12     4  shard count    u32 LE
//!     16     8  sequence no.   u64 LE (events seen)
//!     24     8  epoch length   u64 LE
//!     32     4  generation     u32 LE
//!     36     4  reserved       u32 LE, must be zero
//!     40     8  engine fp      u64 LE (active engine fingerprint)
//!     48     8  checksum       u64 LE, FNV-1a over the payload bytes
//!     56     8  payload length u64 LE
//!     64     …  payload        codec fields (see `encode_payload`)
//!      …     8  footer magic   b"DLSVCEND"
//!      …     8  footer checksum, equal to the header checksum
//! ```
//!
//! [`StreamService::snapshot_to`] writes a **zeroed** header
//! placeholder first and commits the real header only after the footer,
//! so a crash mid-write leaves either a zero magic or a size that
//! disagrees with the declared payload length — both rejected with a
//! typed [`SnapshotError`], never a panic. The payload opens with a
//! copy of every header field, so flipping any *meaningful* header byte
//! is detected as [`SnapshotError::HeaderMismatch`] even though the
//! payload checksum still verifies.
//!
//! The snapshot is **self-contained for state** (policy, admission
//! lists, feature vectors, shard logs, swap history) but stores only
//! the *fingerprints* of compiled engines: the caller re-supplies the
//! engines on [`StreamService::restore`] and the fingerprints are
//! verified, so resuming with stale rules is a typed
//! [`SnapshotError::EngineMismatch`] instead of silent verdict drift.

use crate::collector::StreamingCollector;
use crate::engine::CompiledRuleSet;
use crate::online::{kind_from_name, OnlineExtractor, ProcessFeatures};
use crate::service::{
    PendingSwap, ServiceConfig, ShardState, ShardVerdict, StreamService, SwapDivergence,
};
use downlake_features::{FeatureVector, FileVectors};
use downlake_groundtruth::UrlLabeler;
use downlake_obs::Registry;
use downlake_rulelearn::Verdict;
use downlake_telemetry::codec::{put_bool, put_str, put_u32, put_u64, FieldReader};
use downlake_telemetry::{CodecError, ReportingPolicy, SuppressionStats};
use downlake_types::{FileHash, MachineId};
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

/// Leading magic of a service snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DLSVCSNP";
/// Magic of the committed footer.
pub const SNAPSHOT_FOOTER_MAGIC: [u8; 8] = *b"DLSVCEND";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Fixed header length in bytes.
pub const SNAPSHOT_HEADER_LEN: usize = 64;
/// Fixed footer length in bytes.
pub const SNAPSHOT_FOOTER_LEN: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` (same checksum the lake's segments use; private
/// copy because the L1 layering keeps `stream` independent of `lake`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a snapshot failed to write, open, or verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot file does not exist: a cold start, not damage.
    Absent,
    /// An I/O operation failed mid-read or mid-write.
    Io {
        /// What was being done.
        what: &'static str,
        /// The OS error, stringified (keeps the variant comparable).
        detail: String,
    },
    /// Leading or footer magic bytes are wrong — including the all-zero
    /// placeholder a crashed, never-finalized write leaves behind.
    BadMagic {
        /// Which magic ("header" or "footer").
        what: &'static str,
        /// The bytes found where the magic belongs.
        found: [u8; 8],
    },
    /// The snapshot speaks a format version this build does not.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file ends before its declared layout does (or the declared
    /// payload length disagrees with the file size).
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// Stored and recomputed checksums disagree.
    ChecksumMismatch {
        /// Which comparison failed ("footer" or "payload").
        what: &'static str,
        /// The checksum stored in the header.
        expected: u64,
        /// The footer or recomputed checksum.
        found: u64,
    },
    /// A header field disagrees with the copy the payload carries.
    HeaderMismatch {
        /// The field that disagrees.
        what: &'static str,
    },
    /// A payload field decoded but is semantically invalid (unknown
    /// process kind, bad verdict tag, unsorted machine list, …).
    BadField {
        /// What was invalid.
        what: &'static str,
    },
    /// The engine (or staged engine) supplied at restore does not match
    /// the fingerprint recorded at snapshot time.
    EngineMismatch {
        /// Which engine ("active engine" or "staged engine").
        what: &'static str,
        /// The fingerprint recorded in the snapshot.
        expected: u64,
        /// The fingerprint of the engine supplied (0 when none was).
        found: u64,
    },
    /// A payload field failed the codec's structural walk.
    Codec(CodecError),
}

impl SnapshotError {
    /// Whether this error is the expected cold-start miss rather than
    /// corruption: [`StreamService::restore_or_cold`] counts the two
    /// differently.
    pub fn is_cold(&self) -> bool {
        matches!(self, SnapshotError::Absent)
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Absent => f.write_str("service snapshot file does not exist"),
            SnapshotError::Io { what, detail } => {
                write!(f, "snapshot i/o failed while {what}: {detail}")
            }
            SnapshotError::BadMagic { what, found } => {
                write!(f, "snapshot {what} magic mismatch (found {found:02x?})")
            }
            SnapshotError::BadVersion { found } => {
                write!(f, "unsupported snapshot format version {found}")
            }
            SnapshotError::Truncated { what } => write!(f, "truncated snapshot {what}"),
            SnapshotError::ChecksumMismatch {
                what,
                expected,
                found,
            } => {
                write!(
                    f,
                    "snapshot {what} checksum {found:016x} != stored {expected:016x}"
                )
            }
            SnapshotError::HeaderMismatch { what } => {
                write!(f, "snapshot header {what} disagrees with payload")
            }
            SnapshotError::BadField { what } => {
                write!(f, "snapshot payload field invalid: {what}")
            }
            SnapshotError::EngineMismatch {
                what,
                expected,
                found,
            } => {
                write!(
                    f,
                    "snapshot {what} fingerprint {expected:016x} != supplied {found:016x}"
                )
            }
            SnapshotError::Codec(e) => write!(f, "snapshot payload malformed: {e}"),
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

/// Wraps an [`std::io::Error`] with what was being attempted.
fn io_err(what: &'static str, e: std::io::Error) -> SnapshotError {
    SnapshotError::Io {
        what,
        detail: e.to_string(),
    }
}

/// Verdict wire tags (one byte, followed by the class id byte).
const TAG_CLASS: u8 = 0;
const TAG_REJECTED: u8 = 1;
const TAG_NO_MATCH: u8 = 2;

fn put_verdict(out: &mut Vec<u8>, v: Verdict) {
    match v {
        Verdict::Class(c) => {
            out.push(TAG_CLASS);
            out.push(c);
        }
        Verdict::Rejected => {
            out.push(TAG_REJECTED);
            out.push(0);
        }
        Verdict::NoMatch => {
            out.push(TAG_NO_MATCH);
            out.push(0);
        }
    }
}

fn take_verdict(r: &mut FieldReader<'_>) -> Result<Verdict, SnapshotError> {
    let tag = r.take_u8("verdict tag")?;
    let class = r.take_u8("verdict class")?;
    match tag {
        TAG_CLASS => Ok(Verdict::Class(class)),
        TAG_REJECTED => Ok(Verdict::Rejected),
        TAG_NO_MATCH => Ok(Verdict::NoMatch),
        _ => Err(SnapshotError::BadField {
            what: "verdict tag",
        }),
    }
}

/// Fields every snapshot header carries (also copied into the payload
/// for flip detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SnapshotHeader {
    shard_count: u32,
    seq: u64,
    epoch_len: u64,
    generation: u32,
    engine_fp: u64,
    checksum: u64,
    payload_len: u64,
}

impl SnapshotHeader {
    fn encode(&self) -> [u8; SNAPSHOT_HEADER_LEN] {
        let mut out = [0u8; SNAPSHOT_HEADER_LEN];
        out[0..8].copy_from_slice(&SNAPSHOT_MAGIC);
        out[8..12].copy_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.shard_count.to_le_bytes());
        out[16..24].copy_from_slice(&self.seq.to_le_bytes());
        out[24..32].copy_from_slice(&self.epoch_len.to_le_bytes());
        out[32..36].copy_from_slice(&self.generation.to_le_bytes());
        // 36..40 reserved, stays zero.
        out[40..48].copy_from_slice(&self.engine_fp.to_le_bytes());
        out[48..56].copy_from_slice(&self.checksum.to_le_bytes());
        out[56..64].copy_from_slice(&self.payload_len.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&bytes[0..8]);
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic {
                what: "header",
                found: magic,
            });
        }
        let version = u32::from_le_bytes(take4(bytes, 8));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        let reserved = u32::from_le_bytes(take4(bytes, 36));
        if reserved != 0 {
            return Err(SnapshotError::HeaderMismatch { what: "reserved" });
        }
        Ok(Self {
            shard_count: u32::from_le_bytes(take4(bytes, 12)),
            seq: u64::from_le_bytes(take8(bytes, 16)),
            epoch_len: u64::from_le_bytes(take8(bytes, 24)),
            generation: u32::from_le_bytes(take4(bytes, 32)),
            engine_fp: u64::from_le_bytes(take8(bytes, 40)),
            checksum: u64::from_le_bytes(take8(bytes, 48)),
            payload_len: u64::from_le_bytes(take8(bytes, 56)),
        })
    }
}

fn take4(bytes: &[u8], at: usize) -> [u8; 4] {
    let mut out = [0u8; 4];
    out.copy_from_slice(&bytes[at..at + 4]);
    out
}

fn take8(bytes: &[u8], at: usize) -> [u8; 8] {
    let mut out = [0u8; 8];
    out.copy_from_slice(&bytes[at..at + 8]);
    out
}

impl<'a> StreamService<'a> {
    /// Writes the full service state to `path` with the lake's
    /// crash-safety ordering: zeroed header placeholder, payload,
    /// footer, then the real header — so a torn write can never verify.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when any filesystem operation
    /// fails; nothing else can fail (encoding is total).
    pub fn snapshot_to(&self, path: &Path) -> Result<(), SnapshotError> {
        let payload = self.encode_payload();
        let checksum = fnv1a(&payload);
        let header = SnapshotHeader {
            shard_count: self.shard_count() as u32,
            seq: self.events_seen(),
            epoch_len: self.epoch_len(),
            generation: self.generation(),
            engine_fp: self.engine().fingerprint(),
            checksum,
            payload_len: payload.len() as u64,
        };
        let file = File::create(path).map_err(|e| io_err("creating snapshot", e))?;
        let mut w = BufWriter::new(file);
        w.write_all(&[0u8; SNAPSHOT_HEADER_LEN])
            .map_err(|e| io_err("writing header placeholder", e))?;
        w.write_all(&payload)
            .map_err(|e| io_err("writing payload", e))?;
        w.write_all(&SNAPSHOT_FOOTER_MAGIC)
            .map_err(|e| io_err("writing footer", e))?;
        w.write_all(&checksum.to_le_bytes())
            .map_err(|e| io_err("writing footer", e))?;
        w.flush().map_err(|e| io_err("flushing snapshot", e))?;
        let mut file = w
            .into_inner()
            .map_err(|e| io_err("flushing snapshot", e.into_error()))?;
        file.seek(SeekFrom::Start(0))
            .map_err(|e| io_err("committing header", e))?;
        file.write_all(&header.encode())
            .map_err(|e| io_err("committing header", e))?;
        file.flush().map_err(|e| io_err("committing header", e))?;
        Ok(())
    }

    /// Serializes everything the header does not carry. Every section is
    /// written in a deterministic order (sorted exports, first-sighting
    /// vector order), so snapshotting the same state twice yields
    /// byte-identical files.
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // Header crosscheck copy.
        put_u32(&mut out, self.shard_count() as u32);
        put_u64(&mut out, self.events_seen());
        put_u64(&mut out, self.epoch_len());
        put_u32(&mut out, self.generation());
        put_u64(&mut out, self.engine().fingerprint());
        // Policy (self-contained: σ + whitelist).
        let policy = self.collector().policy();
        put_u32(&mut out, policy.sigma());
        let domains = policy.whitelisted_sorted();
        put_u32(&mut out, domains.len() as u32);
        for domain in &domains {
            put_str(&mut out, domain);
        }
        // Collector: per-file machine lists (sorted), suppression,
        // admitted count.
        let entries = self.collector().export_state();
        put_u32(&mut out, entries.len() as u32);
        for (file, machines) in &entries {
            put_u64(&mut out, file.raw());
            put_u32(&mut out, machines.len() as u32);
            for m in machines.iter() {
                put_u64(&mut out, m.raw());
            }
        }
        let s = self.suppression_stats();
        put_u64(&mut out, s.not_executed);
        put_u64(&mut out, s.prevalence_cap);
        put_u64(&mut out, s.whitelisted_url);
        put_u64(&mut out, self.events_admitted());
        // Extractor: process features (sorted) + vectors (first-sighting
        // order).
        let processes = self.extractor().export_processes();
        put_u32(&mut out, processes.len() as u32);
        for (hash, p) in &processes {
            put_u64(&mut out, hash.raw());
            put_str(&mut out, &p.signer);
            put_str(&mut out, &p.ca);
            put_str(&mut out, &p.packer);
            put_str(&mut out, p.kind);
        }
        let vectors = self.vectors();
        put_u32(&mut out, vectors.len() as u32);
        for (file, vector) in vectors.iter() {
            put_u64(&mut out, file.raw());
            for value in vector.values() {
                put_str(&mut out, value);
            }
        }
        // Shard logs.
        put_u32(&mut out, self.shard_states().len() as u32);
        for shard in self.shard_states() {
            put_u64(&mut out, shard.events_routed);
            put_u32(&mut out, shard.log.len() as u32);
            for entry in &shard.log {
                put_u64(&mut out, entry.seq);
                put_u64(&mut out, entry.file.raw());
                put_verdict(&mut out, entry.verdict);
                put_u32(&mut out, entry.generation);
            }
        }
        // Class tables per generation.
        put_u32(&mut out, self.class_tables().len() as u32);
        for table in self.class_tables() {
            put_u32(&mut out, table.len() as u32);
            for class in table {
                put_str(&mut out, class);
            }
        }
        // Pending swap (fingerprint only; engines are re-supplied).
        match self.pending_swap() {
            Some((activate_at, fingerprint)) => {
                put_bool(&mut out, true);
                put_u64(&mut out, activate_at);
                put_u64(&mut out, fingerprint);
            }
            None => put_bool(&mut out, false),
        }
        // Swap history.
        put_u32(&mut out, self.swap_history().len() as u32);
        for swap in self.swap_history() {
            put_u64(&mut out, swap.at_seq);
            put_u32(&mut out, swap.from_generation);
            put_u32(&mut out, swap.to_generation);
            put_u64(&mut out, swap.files);
            put_u64(&mut out, swap.changed);
            put_u32(&mut out, swap.transitions.len() as u32);
            for (from, to, n) in &swap.transitions {
                put_str(&mut out, from);
                put_str(&mut out, to);
                put_u64(&mut out, *n);
            }
        }
        out
    }

    /// Opens a snapshot and reassembles the service, re-supplying the
    /// compiled engines: `engine` must match the active-engine
    /// fingerprint recorded at snapshot time, and `pending` must match
    /// the staged engine's when the snapshot records one (it is ignored
    /// otherwise). The resumed service continues the stream with
    /// verdicts byte-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Absent`] when the file does not exist (a cold
    /// start, distinguishable via [`SnapshotError::is_cold`]); any other
    /// variant describes damage or an engine mismatch. Never panics on
    /// bad bytes.
    pub fn restore(
        path: &Path,
        urls: &'a UrlLabeler,
        engine: &CompiledRuleSet,
        pending: Option<&CompiledRuleSet>,
    ) -> Result<Self, SnapshotError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SnapshotError::Absent)
            }
            Err(e) => return Err(io_err("reading snapshot", e)),
        };
        if bytes.len() < SNAPSHOT_HEADER_LEN {
            return Err(SnapshotError::Truncated { what: "header" });
        }
        let header = SnapshotHeader::decode(&bytes)?;
        if bytes.len() < SNAPSHOT_HEADER_LEN + SNAPSHOT_FOOTER_LEN {
            return Err(SnapshotError::Truncated { what: "footer" });
        }
        let payload_end = bytes.len() - SNAPSHOT_FOOTER_LEN;
        let payload = &bytes[SNAPSHOT_HEADER_LEN..payload_end];
        if header.payload_len != payload.len() as u64 {
            return Err(SnapshotError::Truncated { what: "payload" });
        }
        let footer = &bytes[payload_end..];
        if footer[0..8] != SNAPSHOT_FOOTER_MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&footer[0..8]);
            return Err(SnapshotError::BadMagic {
                what: "footer",
                found,
            });
        }
        let footer_checksum = u64::from_le_bytes(take8(footer, 8));
        if footer_checksum != header.checksum {
            return Err(SnapshotError::ChecksumMismatch {
                what: "footer",
                expected: header.checksum,
                found: footer_checksum,
            });
        }
        let computed = fnv1a(payload);
        if computed != header.checksum {
            return Err(SnapshotError::ChecksumMismatch {
                what: "payload",
                expected: header.checksum,
                found: computed,
            });
        }
        decode_payload(payload, &header, urls, engine, pending)
    }

    /// [`StreamService::restore`], falling back to a cold service when
    /// the snapshot is absent **or damaged** — damage is reported
    /// through the registry, never panicked on.
    ///
    /// Observability: exactly one of `service.restore.warm`,
    /// `service.restore.cold`, or `service.restore.corrupt` is
    /// incremented per call.
    pub fn restore_or_cold(
        path: &Path,
        config: ServiceConfig,
        policy: ReportingPolicy,
        urls: &'a UrlLabeler,
        engine: &CompiledRuleSet,
        pending: Option<&CompiledRuleSet>,
        registry: &Registry,
    ) -> Self {
        match Self::restore(path, urls, engine, pending) {
            Ok(service) => {
                registry.counter_add("service.restore.warm", 1);
                service
            }
            Err(e) => {
                if e.is_cold() {
                    registry.counter_add("service.restore.cold", 1);
                } else {
                    registry.counter_add("service.restore.corrupt", 1);
                }
                StreamService::new(config, policy, urls, engine.clone())
            }
        }
    }
}

/// Decodes the payload into a reassembled service. Called only after
/// the checksum verified, so any failure here is either a genuinely
/// malformed field ([`SnapshotError::BadField`] / [`SnapshotError::Codec`])
/// or a header byte flipped without touching the payload
/// ([`SnapshotError::HeaderMismatch`]).
fn decode_payload<'a>(
    payload: &[u8],
    header: &SnapshotHeader,
    urls: &'a UrlLabeler,
    engine: &CompiledRuleSet,
    pending: Option<&CompiledRuleSet>,
) -> Result<StreamService<'a>, SnapshotError> {
    let mut r = FieldReader::new(payload);
    // Header crosscheck: every meaningful header field has a payload
    // copy, so single-byte header flips surface as HeaderMismatch.
    if r.take_u32("shard count copy")? != header.shard_count {
        return Err(SnapshotError::HeaderMismatch {
            what: "shard count",
        });
    }
    if r.take_u64("sequence copy")? != header.seq {
        return Err(SnapshotError::HeaderMismatch {
            what: "sequence number",
        });
    }
    if r.take_u64("epoch length copy")? != header.epoch_len {
        return Err(SnapshotError::HeaderMismatch {
            what: "epoch length",
        });
    }
    if r.take_u32("generation copy")? != header.generation {
        return Err(SnapshotError::HeaderMismatch { what: "generation" });
    }
    if r.take_u64("engine fingerprint copy")? != header.engine_fp {
        return Err(SnapshotError::HeaderMismatch {
            what: "engine fingerprint",
        });
    }
    // Policy.
    let sigma = r.take_u32("sigma")?;
    if sigma == 0 {
        return Err(SnapshotError::BadField { what: "sigma" });
    }
    let mut policy = ReportingPolicy::new(sigma);
    let domain_count = r.take_u32("whitelist count")?;
    for _ in 0..domain_count {
        let domain = r.take_str("whitelist domain")?;
        policy = policy.with_whitelisted_domain(&domain);
    }
    // Collector.
    let file_count = r.take_u32("file count")?;
    let mut entries: Vec<(FileHash, Vec<MachineId>)> = Vec::with_capacity(file_count as usize);
    for _ in 0..file_count {
        let file = FileHash::from_raw(r.take_u64("file hash")?);
        let machine_count = r.take_u32("machine count")?;
        let mut machines: Vec<MachineId> = Vec::with_capacity(machine_count as usize);
        for _ in 0..machine_count {
            machines.push(MachineId::from_raw(r.take_u64("machine id")?));
        }
        if !machines
            .iter()
            .zip(machines.iter().skip(1))
            .all(|(a, b)| a < b)
        {
            return Err(SnapshotError::BadField {
                what: "machine list order",
            });
        }
        entries.push((file, machines));
    }
    let suppressed = SuppressionStats {
        not_executed: r.take_u64("suppressed.not_executed")?,
        prevalence_cap: r.take_u64("suppressed.prevalence_cap")?,
        whitelisted_url: r.take_u64("suppressed.whitelisted_url")?,
    };
    let admitted = r.take_u64("events admitted")?;
    let collector = StreamingCollector::restore(policy, entries, suppressed, admitted);
    // Extractor.
    let process_count = r.take_u32("process count")?;
    let mut processes: Vec<(FileHash, ProcessFeatures)> =
        Vec::with_capacity(process_count as usize);
    for _ in 0..process_count {
        let hash = FileHash::from_raw(r.take_u64("process hash")?);
        let signer = r.take_str("process signer")?;
        let ca = r.take_str("process ca")?;
        let packer = r.take_str("process packer")?;
        let kind_name = r.take_str("process kind")?;
        let Some(kind) = kind_from_name(&kind_name) else {
            return Err(SnapshotError::BadField {
                what: "process kind",
            });
        };
        processes.push((
            hash,
            ProcessFeatures {
                signer,
                ca,
                packer,
                kind,
            },
        ));
    }
    let vector_count = r.take_u32("vector count")?;
    let mut vectors = FileVectors::default();
    for _ in 0..vector_count {
        let file = FileHash::from_raw(r.take_u64("vector file")?);
        let values: [String; 8] = [
            r.take_str("vector value")?,
            r.take_str("vector value")?,
            r.take_str("vector value")?,
            r.take_str("vector value")?,
            r.take_str("vector value")?,
            r.take_str("vector value")?,
            r.take_str("vector value")?,
            r.take_str("vector value")?,
        ];
        if !vectors.push(file, FeatureVector::from_values(values)) {
            return Err(SnapshotError::BadField {
                what: "duplicate vector",
            });
        }
    }
    let extractor = OnlineExtractor::restore(urls, processes, vectors);
    // Shard logs.
    let shard_count = r.take_u32("shard section count")?;
    if shard_count != header.shard_count {
        return Err(SnapshotError::BadField {
            what: "shard section count",
        });
    }
    let mut shards: Vec<ShardState> = Vec::with_capacity(shard_count as usize);
    for _ in 0..shard_count {
        let events_routed = r.take_u64("shard events_routed")?;
        let log_len = r.take_u32("shard log length")?;
        let mut log: Vec<ShardVerdict> = Vec::with_capacity(log_len as usize);
        for _ in 0..log_len {
            let seq = r.take_u64("log seq")?;
            let file = FileHash::from_raw(r.take_u64("log file")?);
            let verdict = take_verdict(&mut r)?;
            let generation = r.take_u32("log generation")?;
            log.push(ShardVerdict {
                seq,
                file,
                verdict,
                generation,
            });
        }
        shards.push(ShardState { log, events_routed });
    }
    // Class tables.
    let table_count = r.take_u32("class table count")?;
    if u64::from(table_count) != u64::from(header.generation) + 1 {
        return Err(SnapshotError::BadField {
            what: "class table count",
        });
    }
    let mut class_tables: Vec<Vec<String>> = Vec::with_capacity(table_count as usize);
    for _ in 0..table_count {
        let len = r.take_u32("class table length")?;
        let mut table: Vec<String> = Vec::with_capacity(len as usize);
        for _ in 0..len {
            table.push(r.take_str("class name")?);
        }
        class_tables.push(table);
    }
    // Pending swap.
    let pending_swap = if r.take_bool("pending flag")? {
        let activate_at = r.take_u64("pending activate_at")?;
        let fingerprint = r.take_u64("pending fingerprint")?;
        let Some(staged) = pending else {
            return Err(SnapshotError::EngineMismatch {
                what: "staged engine",
                expected: fingerprint,
                found: 0,
            });
        };
        if staged.fingerprint() != fingerprint {
            return Err(SnapshotError::EngineMismatch {
                what: "staged engine",
                expected: fingerprint,
                found: staged.fingerprint(),
            });
        }
        Some(PendingSwap {
            engine: staged.clone(),
            activate_at,
        })
    } else {
        None
    };
    // Swap history.
    let swap_count = r.take_u32("swap count")?;
    let mut swaps: Vec<SwapDivergence> = Vec::with_capacity(swap_count as usize);
    for _ in 0..swap_count {
        let at_seq = r.take_u64("swap at_seq")?;
        let from_generation = r.take_u32("swap from_generation")?;
        let to_generation = r.take_u32("swap to_generation")?;
        let files = r.take_u64("swap files")?;
        let changed = r.take_u64("swap changed")?;
        let transition_count = r.take_u32("swap transition count")?;
        let mut transitions: Vec<(String, String, u64)> =
            Vec::with_capacity(transition_count as usize);
        for _ in 0..transition_count {
            let from = r.take_str("transition from")?;
            let to = r.take_str("transition to")?;
            let n = r.take_u64("transition count")?;
            transitions.push((from, to, n));
        }
        swaps.push(SwapDivergence {
            at_seq,
            from_generation,
            to_generation,
            files,
            changed,
            transitions,
        });
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::BadField {
            what: "payload slack",
        });
    }
    // Engine identity, last: every structural check already passed, so
    // a mismatch here is unambiguously "right snapshot, wrong rules".
    if engine.fingerprint() != header.engine_fp {
        return Err(SnapshotError::EngineMismatch {
            what: "active engine",
            expected: header.engine_fp,
            found: engine.fingerprint(),
        });
    }
    Ok(StreamService::from_parts(
        ServiceConfig::new(header.shard_count as usize, header.epoch_len),
        collector,
        extractor,
        engine.clone(),
        shards,
        header.seq,
        header.generation,
        pending_swap,
        swaps,
        class_tables,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::tests_support::{sample_events, sample_service, EVENT_COUNT};
    use downlake_exec::Pool;

    fn scratch_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("downlake-snapshot-unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn snapshot_roundtrip_resumes_byte_identical() {
        let urls = UrlLabeler::new();
        let (mut svc, engine) = sample_service(&urls);
        let events = sample_events();
        let split = EVENT_COUNT / 2;
        for raw in &events[..split] {
            svc.push(raw);
        }
        let path = scratch_file("roundtrip.snap");
        svc.snapshot_to(&path).unwrap();

        let mut resumed = StreamService::restore(&path, &urls, &engine, None).unwrap();
        for raw in &events[split..] {
            svc.push(raw);
            resumed.push(raw);
        }
        assert_eq!(svc.merged_verdicts(), resumed.merged_verdicts());
        assert_eq!(svc.vectors(), resumed.vectors());
        assert_eq!(svc.suppression_stats(), resumed.suppression_stats());
        assert_eq!(svc.events_seen(), resumed.events_seen());
        let pool = Pool::sequential();
        assert_eq!(svc.status(&pool), resumed.status(&pool));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshots_of_identical_state_are_byte_identical() {
        let urls = UrlLabeler::new();
        let (mut svc, _engine) = sample_service(&urls);
        for raw in &sample_events() {
            svc.push(raw);
        }
        let a = scratch_file("stable-a.snap");
        let b = scratch_file("stable-b.snap");
        svc.snapshot_to(&a).unwrap();
        svc.snapshot_to(&b).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn absent_snapshot_is_cold_not_corrupt() {
        let urls = UrlLabeler::new();
        let (_, engine) = sample_service(&urls);
        let err = StreamService::restore(
            Path::new("/nonexistent/downlake.snap"),
            &urls,
            &engine,
            None,
        )
        .unwrap_err();
        assert!(err.is_cold());
    }
}
