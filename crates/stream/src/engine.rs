//! The PART ruleset lowered into a flat, allocation-free evaluator.
//!
//! [`downlake_rulelearn::RuleSet::classify`] walks `Vec<Rule>` →
//! `Vec<Condition>` and collects matched rules into a fresh `Vec` per
//! call. Fine for batch tables; wrong shape for a per-event hot loop.
//! [`CompiledRuleSet`] lowers the same rules once into two flat arrays
//! — all conditions concatenated (sorted by attribute within each
//! rule), and per-rule `(span, class)` records — plus an
//! [`InternedEncoder`] snapshotting the attribute value tables. Rows
//! are encoded densely (`u32` per attribute, [`UNSEEN`] for values
//! never seen in training), so evaluation is a linear scan of equality
//! compares: no `Option` discriminants, no hashing, and **zero heap
//! allocation per event** (pinned by `tests/zero_alloc.rs` and lint
//! rule P2 on this crate).
//!
//! Verdicts are byte-equivalent to
//! `RuleSet::classify(_, ConflictPolicy::Reject)` — the paper's
//! deployment policy: agreeing matches classify, disagreeing matches
//! reject, no match stays unknown.

// A dense row slot holding `downlake_rulelearn::UNSEEN` can never equal
// a condition's value id (ids are bounded by attribute arity), so unseen
// values simply fail every condition — the same semantics as the batch
// path's `None` slots.
use downlake_exec::{mix, mix_str};
use downlake_rulelearn::{InternedEncoder, RuleSet, Verdict};

/// One `attribute == value` test in the flat condition array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledCondition {
    /// Attribute index into the row.
    pub attr: u32,
    /// Required dense value id.
    pub value: u32,
}

/// One rule: a contiguous span of the condition array plus its class.
#[derive(Debug, Clone, Copy)]
struct CompiledRule {
    start: u32,
    end: u32,
    class: u8,
}

/// A ruleset compiled for per-event evaluation.
#[derive(Debug, Clone)]
pub struct CompiledRuleSet {
    arity: usize,
    conditions: Vec<CompiledCondition>,
    rules: Vec<CompiledRule>,
    encoder: InternedEncoder,
    classes: Vec<String>,
    fingerprint: u64,
}

impl CompiledRuleSet {
    /// Lowers a ruleset. Conditions are sorted by `(attr, value)` within
    /// each rule so evaluation touches the row in ascending attribute
    /// order; rule order (and therefore conflict behaviour) is preserved.
    pub fn compile(set: &RuleSet) -> Self {
        let mut conditions = Vec::new();
        let mut rules = Vec::with_capacity(set.len());
        for rule in set.rules() {
            let start = conditions.len() as u32;
            let mut conds: Vec<CompiledCondition> = rule
                .conditions
                .iter()
                .map(|c| CompiledCondition {
                    attr: c.attr as u32,
                    value: c.value,
                })
                .collect();
            conds.sort_unstable_by_key(|c| (c.attr, c.value));
            conditions.extend_from_slice(&conds);
            rules.push(CompiledRule {
                start,
                end: conditions.len() as u32,
                class: rule.class,
            });
        }
        // Fold the full lowered representation — schema value tables,
        // class names, and every (attr, value) condition in rule order
        // — into one stable identity via the workspace's canonical
        // SplitMix64 combinators. Two compilations collide exactly when
        // they would classify every possible row identically under the
        // same names, which is what snapshot restore needs to check.
        let schema = set.schema();
        let mut fingerprint = mix_str(0, "downlake.stream.engine");
        fingerprint = mix(fingerprint, schema.attrs().len() as u64);
        for attr in schema.attrs() {
            fingerprint = mix_str(fingerprint, attr.name());
            fingerprint = mix(fingerprint, attr.arity() as u64);
            for id in 0..attr.arity() as u32 {
                fingerprint = mix_str(fingerprint, attr.value(id));
            }
        }
        for class in schema.classes() {
            fingerprint = mix_str(fingerprint, class);
        }
        fingerprint = mix(fingerprint, rules.len() as u64);
        for rule in &rules {
            fingerprint = mix(fingerprint, u64::from(rule.class));
            fingerprint = mix(fingerprint, u64::from(rule.end - rule.start));
            for cond in &conditions[rule.start as usize..rule.end as usize] {
                fingerprint = mix(fingerprint, u64::from(cond.attr));
                fingerprint = mix(fingerprint, u64::from(cond.value));
            }
        }
        Self {
            arity: schema.attrs().len(),
            conditions,
            rules,
            encoder: set.encoder(),
            classes: schema.classes().to_vec(),
            fingerprint,
        }
    }

    /// Number of attributes an encoded row must carry.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of compiled rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Number of classes in the compiled schema.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Class names in class-id order.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Stable identity of the compiled representation.
    ///
    /// Folded over the schema's value tables, class names, and every
    /// lowered condition during [`CompiledRuleSet::compile`]; snapshot
    /// restore compares it against the engine recorded at snapshot time
    /// so stale rules surface as a typed error instead of silently
    /// diverging verdicts.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The flat condition array (introspection for tests).
    pub fn conditions(&self) -> &[CompiledCondition] {
        &self.conditions
    }

    /// Per-rule `(condition span, class)` records in rule order
    /// (introspection for tests).
    pub fn rule_spans(&self) -> impl Iterator<Item = (std::ops::Range<usize>, u8)> + '_ {
        self.rules
            .iter()
            .map(|r| (r.start as usize..r.end as usize, r.class))
    }

    /// The class name behind a verdict, if one was assigned.
    pub fn class_name(&self, verdict: Verdict) -> Option<&str> {
        verdict
            .class()
            .and_then(|c| self.classes.get(c as usize))
            .map(String::as_str)
    }

    /// Encodes raw feature values into the dense row representation
    /// (reusing `out`'s capacity; see [`InternedEncoder::encode_dense_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.arity()`.
    pub fn encode_into(&self, values: &[&str], out: &mut Vec<u32>) {
        self.encoder.encode_dense_into(values, out);
    }

    /// Classifies a dense-encoded row under conflict rejection.
    ///
    /// Allocation-free: a linear scan over the flat arrays. Equivalent
    /// to `RuleSet::classify(_, ConflictPolicy::Reject)` — the first
    /// disagreeing pair of matched rules decides `Rejected`, which is
    /// the same verdict the batch path reaches after collecting all
    /// matches. Rows shorter than the arity match no condition beyond
    /// their length (a malformed row can only *under*-match).
    pub fn classify(&self, values: &[u32]) -> Verdict {
        debug_assert_eq!(values.len(), self.arity, "row arity mismatch");
        let mut decided: Option<u8> = None;
        for rule in &self.rules {
            let span = &self.conditions[rule.start as usize..rule.end as usize];
            let matched = span
                .iter()
                .all(|c| values.get(c.attr as usize).copied() == Some(c.value));
            if !matched {
                continue;
            }
            match decided {
                None => decided = Some(rule.class),
                Some(class) if class != rule.class => return Verdict::Rejected,
                Some(_) => {}
            }
        }
        match decided {
            Some(class) => Verdict::Class(class),
            None => Verdict::NoMatch,
        }
    }

    /// Encode-and-classify convenience for callers holding raw values
    /// and a reusable scratch row.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.arity()`.
    pub fn classify_features(&self, values: &[&str], scratch: &mut Vec<u32>) -> Verdict {
        self.encoder.encode_dense_into(values, scratch);
        self.classify(scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_rulelearn::{Condition, ConflictPolicy, InstancesBuilder, Rule};

    /// signer × packer schema with enough pushes to intern all values.
    fn ruleset() -> RuleSet {
        let mut b = InstancesBuilder::new(&["signer", "packer"], &["benign", "malicious"]);
        b.push(&["somoto", "NSIS"], "malicious");
        b.push(&["teamviewer", "INNO"], "benign");
        b.push(&["binstall", "UPX"], "benign");
        let schema = b.build().schema().clone();
        let rule = |conds: Vec<Condition>, class: u8| Rule {
            conditions: conds,
            class,
            covered: 10,
            errors: 0,
        };
        RuleSet::new(
            schema,
            vec![
                // Deliberately unsorted conditions: packer before signer.
                rule(
                    vec![
                        Condition { attr: 1, value: 0 },
                        Condition { attr: 0, value: 0 },
                    ],
                    1,
                ),
                rule(vec![Condition { attr: 0, value: 1 }], 0),
                rule(vec![Condition { attr: 0, value: 0 }], 1),
                rule(vec![Condition { attr: 1, value: 1 }], 0),
            ],
        )
    }

    #[test]
    fn representation_is_flat_sorted_and_contiguous() {
        let compiled = CompiledRuleSet::compile(&ruleset());
        assert_eq!(compiled.arity(), 2);
        assert_eq!(compiled.rule_count(), 4);
        // Spans tile the condition array in rule order.
        let mut next = 0usize;
        for (span, _class) in compiled.rule_spans() {
            assert_eq!(span.start, next, "spans must be contiguous");
            next = span.end;
            // Conditions sorted by attribute within the span.
            let conds = &compiled.conditions()[span];
            assert!(
                conds.windows(2).all(|w| w[0].attr <= w[1].attr),
                "conditions must be attr-sorted"
            );
        }
        assert_eq!(next, compiled.conditions().len());
        // The first rule's conditions were reordered to signer-first.
        assert_eq!(
            compiled.conditions()[0],
            CompiledCondition { attr: 0, value: 0 }
        );
    }

    #[test]
    fn verdicts_match_batch_classify_on_the_full_grid() {
        let set = ruleset();
        let compiled = CompiledRuleSet::compile(&set);
        let signers = ["somoto", "teamviewer", "binstall", "never-seen"];
        let packers = ["NSIS", "INNO", "UPX", "never-seen"];
        let mut scratch = Vec::new();
        for signer in signers {
            for packer in packers {
                let values = [signer, packer];
                let batch = set.classify(&set.schema().encode(&values), ConflictPolicy::Reject);
                let streamed = compiled.classify_features(&values, &mut scratch);
                assert_eq!(streamed, batch, "disagreement on {values:?}");
            }
        }
    }

    #[test]
    fn conflicting_rules_reject_and_agreeing_rules_classify() {
        let set = ruleset();
        let compiled = CompiledRuleSet::compile(&set);
        let mut scratch = Vec::new();
        // somoto+INNO matches rule 3 (malicious) and rule 4 (benign).
        assert_eq!(
            compiled.classify_features(&["somoto", "INNO"], &mut scratch),
            Verdict::Rejected
        );
        // somoto+NSIS matches rules 1 and 3, both malicious.
        assert_eq!(
            compiled.classify_features(&["somoto", "NSIS"], &mut scratch),
            Verdict::Class(1)
        );
        assert_eq!(compiled.class_name(Verdict::Class(1)), Some("malicious"));
        assert_eq!(compiled.class_name(Verdict::Rejected), None);
        // Unseen everywhere: no rule can match.
        assert_eq!(
            compiled.classify_features(&["never-seen", "never-seen"], &mut scratch),
            Verdict::NoMatch
        );
    }

    #[test]
    fn empty_ruleset_never_matches() {
        let set = ruleset();
        let empty = RuleSet::new(set.schema().clone(), Vec::new());
        let compiled = CompiledRuleSet::compile(&empty);
        let mut scratch = Vec::new();
        assert_eq!(
            compiled.classify_features(&["somoto", "NSIS"], &mut scratch),
            Verdict::NoMatch
        );
    }
}
