//! Streaming collection state: the §II-A reporting policy applied
//! incrementally, one event at a time, with bounded memory.
//!
//! [`StreamingCollector`] reproduces
//! [`downlake_telemetry::CollectionServer`]'s admission decision exactly
//! — same check order (executed → whitelist → σ-cap), same
//! already-counted-machine re-report rule — but keeps only what the
//! decision needs: per file, the *sorted* list of machines counted
//! toward its prevalence. Because a machine is added only when its
//! event is admitted, and a new machine past the cap is suppressed,
//! each list is bounded at σ entries by construction. Total state is
//! therefore `O(files × σ)` regardless of stream length — no event
//! buffering, no per-URL or per-machine tables.

use downlake_telemetry::{RawEvent, ReportingPolicy, SuppressionReason, SuppressionStats};
use downlake_types::{FileHash, MachineId};
use std::collections::HashMap;

/// Incremental admission state for the reporting policy.
#[derive(Debug)]
pub struct StreamingCollector {
    policy: ReportingPolicy,
    /// Machines counted toward each file's prevalence, sorted for
    /// binary-search membership. Length is bounded by σ.
    machines_per_file: HashMap<FileHash, Vec<MachineId>>,
    suppressed: SuppressionStats,
    admitted: u64,
}

impl StreamingCollector {
    /// Creates a collector applying `policy`.
    pub fn new(policy: ReportingPolicy) -> Self {
        Self {
            policy,
            machines_per_file: HashMap::new(),
            suppressed: SuppressionStats::default(),
            admitted: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &ReportingPolicy {
        &self.policy
    }

    /// Applies the policy to one event, updating the prevalence state.
    ///
    /// # Errors
    ///
    /// Returns the [`SuppressionReason`] when the event is suppressed;
    /// suppressed events leave the prevalence state untouched.
    pub fn admit(&mut self, raw: &RawEvent) -> Result<(), SuppressionReason> {
        match self.check(raw) {
            Ok(()) => {
                let machines = self.machines_per_file.entry(raw.file).or_default();
                if let Err(slot) = machines.binary_search(&raw.machine) {
                    machines.insert(slot, raw.machine);
                }
                self.admitted += 1;
                Ok(())
            }
            Err(reason) => {
                match reason {
                    SuppressionReason::NotExecuted => self.suppressed.not_executed += 1,
                    SuppressionReason::PrevalenceCap => self.suppressed.prevalence_cap += 1,
                    SuppressionReason::WhitelistedUrl => self.suppressed.whitelisted_url += 1,
                }
                Err(reason)
            }
        }
    }

    /// The admission decision alone, in the batch server's check order.
    fn check(&self, raw: &RawEvent) -> Result<(), SuppressionReason> {
        if !raw.executed {
            return Err(SuppressionReason::NotExecuted);
        }
        if self.policy.is_whitelisted(raw.url.e2ld()) {
            return Err(SuppressionReason::WhitelistedUrl);
        }
        // Reported only while the number of distinct machines counted
        // *before* this event is below σ; a machine that was already
        // counted may keep re-reporting past the cap.
        let seen = self.machines_per_file.get(&raw.file);
        let prior = seen.map_or(0, Vec::len);
        let already_counted = seen.is_some_and(|s| s.binary_search(&raw.machine).is_ok());
        if prior >= self.policy.sigma() as usize && !already_counted {
            return Err(SuppressionReason::PrevalenceCap);
        }
        Ok(())
    }

    /// Current (capped) prevalence of a file.
    pub fn prevalence(&self, file: FileHash) -> usize {
        self.machines_per_file.get(&file).map_or(0, Vec::len)
    }

    /// Number of distinct files with at least one admitted event.
    pub fn tracked_files(&self) -> usize {
        self.machines_per_file.len()
    }

    /// Events admitted so far.
    pub fn events_admitted(&self) -> u64 {
        self.admitted
    }

    /// Suppression counters so far.
    pub fn suppression_stats(&self) -> SuppressionStats {
        self.suppressed
    }

    /// Prevalence state in deterministic order for snapshot
    /// serialization: `(file, counted machines)` sorted by file hash.
    /// Each machine list is already sorted (the `admit` invariant).
    pub(crate) fn export_state(&self) -> Vec<(FileHash, &[MachineId])> {
        let mut entries: Vec<(FileHash, &[MachineId])> = self
            .machines_per_file
            .iter()
            .map(|(file, machines)| (*file, machines.as_slice()))
            .collect();
        entries.sort_unstable_by_key(|&(file, _)| file);
        entries
    }

    /// Rebuilds a collector from snapshot state. The caller (snapshot
    /// decode) is responsible for each machine list being sorted; the
    /// debug assertion re-checks the invariant in tests.
    pub(crate) fn restore(
        policy: ReportingPolicy,
        entries: Vec<(FileHash, Vec<MachineId>)>,
        suppressed: SuppressionStats,
        admitted: u64,
    ) -> Self {
        debug_assert!(
            entries
                .iter()
                .all(|(_, m)| m.iter().zip(m.iter().skip(1)).all(|(a, b)| a < b)),
            "machine lists must be strictly sorted"
        );
        Self {
            policy,
            machines_per_file: entries.into_iter().collect(),
            suppressed,
            admitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_types::{Timestamp, Url};

    fn raw(file: u64, machine: u64, executed: bool, url: &str, day: u32) -> RawEvent {
        RawEvent::builder()
            .file(FileHash::from_raw(file))
            .machine(MachineId::from_raw(machine))
            .process(FileHash::from_raw(1000 + file), "chrome.exe")
            .url(url.parse::<Url>().unwrap())
            .timestamp(Timestamp::from_day(day))
            .executed(executed)
            .build()
    }

    #[test]
    fn admission_mirrors_batch_server_rules() {
        let policy = ReportingPolicy::new(3).with_whitelisted_domain("microsoft.com");
        let mut c = StreamingCollector::new(policy);
        assert_eq!(
            c.admit(&raw(1, 1, false, "http://a.com/f.exe", 0)),
            Err(SuppressionReason::NotExecuted)
        );
        assert_eq!(
            c.admit(&raw(1, 1, true, "http://dl.microsoft.com/kb.exe", 0)),
            Err(SuppressionReason::WhitelistedUrl)
        );
        for m in 0..3 {
            assert_eq!(c.admit(&raw(7, m, true, "http://a.com/f.exe", 0)), Ok(()));
        }
        assert_eq!(
            c.admit(&raw(7, 99, true, "http://a.com/f.exe", 1)),
            Err(SuppressionReason::PrevalenceCap)
        );
        // An already-counted machine re-reports past the cap.
        assert_eq!(c.admit(&raw(7, 0, true, "http://a.com/f.exe", 2)), Ok(()));
        assert_eq!(c.prevalence(FileHash::from_raw(7)), 3);
        assert_eq!(c.events_admitted(), 4);
        assert_eq!(c.suppression_stats().total(), 3);
    }

    #[test]
    fn memory_is_bounded_at_sigma_per_file() {
        let mut c = StreamingCollector::new(ReportingPolicy::new(5));
        for m in 0..1000 {
            let _ = c.admit(&raw(1, m, true, "http://a.com/f.exe", 0));
        }
        assert_eq!(c.prevalence(FileHash::from_raw(1)), 5);
        assert_eq!(c.tracked_files(), 1);
        assert_eq!(c.suppression_stats().prevalence_cap, 995);
    }

    #[test]
    fn suppressed_events_leave_state_untouched() {
        let mut c = StreamingCollector::new(ReportingPolicy::new(1));
        assert!(c.admit(&raw(1, 1, false, "http://a.com/f.exe", 0)).is_err());
        assert_eq!(c.tracked_files(), 0);
        assert_eq!(c.prevalence(FileHash::from_raw(1)), 0);
    }
}
