//! Incremental Table XV feature extraction.
//!
//! [`OnlineExtractor`] maintains exactly the state the batch
//! [`downlake_features::Extractor`] derives from a finished dataset,
//! but built one admitted event at a time:
//!
//! * per downloading process image, the feature values of its *first*
//!   sighting (the batch `ProcessTable` interns first-push metadata);
//! * per file, a [`FeatureVector`] captured from the file's *first*
//!   admitted event (the batch extractor uses each file's first
//!   dataset event, and dataset order is admission order).
//!
//! Memory is bounded by the number of distinct processes and files —
//! no events are retained. At end of stream [`OnlineExtractor::vectors`]
//! is equal (same vectors, same first-sighting order) to the batch
//! `Extractor::extract_files` over the dataset the same admitted
//! stream builds; `tests/stream_equivalence.rs` pins this.

use downlake_features::{
    ca_of, category_feature, packer_of, signer_of, FeatureVector, FileVectors,
};
use downlake_groundtruth::UrlLabeler;
use downlake_telemetry::RawEvent;
use downlake_types::{FileHash, ProcessCategory};
use std::collections::HashMap;

/// Feature values of a process image, captured at first sighting.
#[derive(Debug, Clone)]
pub(crate) struct ProcessFeatures {
    pub(crate) signer: String,
    pub(crate) ca: String,
    pub(crate) packer: String,
    pub(crate) kind: &'static str,
}

impl ProcessFeatures {
    fn of(raw: &RawEvent) -> Self {
        Self {
            signer: signer_of(&raw.process_meta),
            ca: ca_of(&raw.process_meta),
            packer: packer_of(&raw.process_meta),
            kind: category_feature(ProcessCategory::from_executable_name(
                &raw.process_meta.disk_name,
            )),
        }
    }
}

/// Maps a serialized category-feature value back onto the `'static`
/// string [`category_feature`] hands out, or `None` for anything that
/// is not one of the five Table X aggregates (a decode error upstream).
pub(crate) fn kind_from_name(name: &str) -> Option<&'static str> {
    ProcessCategory::AGGREGATES
        .iter()
        .map(|&c| category_feature(c))
        .find(|&k| k == name)
}

/// Builds per-file Table XV feature vectors as events arrive.
#[derive(Debug)]
pub struct OnlineExtractor<'a> {
    urls: &'a UrlLabeler,
    processes: HashMap<FileHash, ProcessFeatures>,
    vectors: FileVectors,
}

impl<'a> OnlineExtractor<'a> {
    /// Creates an extractor resolving domain ranks through `urls`.
    pub fn new(urls: &'a UrlLabeler) -> Self {
        Self {
            urls,
            processes: HashMap::new(),
            vectors: FileVectors::default(),
        }
    }

    /// Ingests one *admitted* event. Returns the file's feature vector
    /// when this event is the file's first sighting (the vector that
    /// needs classifying), `None` for repeat downloads.
    pub fn ingest(&mut self, raw: &RawEvent) -> Option<&FeatureVector> {
        // First sighting of the process image fixes its feature values,
        // mirroring the batch table's first-push interning — and it must
        // happen even when the file itself was already seen.
        self.processes
            .entry(raw.process)
            .or_insert_with(|| ProcessFeatures::of(raw));
        if self.vectors.contains(raw.file) {
            return None;
        }
        let process = self.processes.get(&raw.process);
        let (psigner, pca, ppacker, ptype) = match process {
            Some(p) => (
                p.signer.clone(),
                p.ca.clone(),
                p.packer.clone(),
                p.kind.to_owned(),
            ),
            // Unreachable after the insert above, but kept total: the
            // batch extractor's "(no process)" branch for completeness.
            None => (
                downlake_features::NO_PROCESS.to_owned(),
                downlake_features::NO_PROCESS.to_owned(),
                downlake_features::NO_PROCESS.to_owned(),
                downlake_features::NO_PROCESS.to_owned(),
            ),
        };
        let rank = self.urls.rank(raw.url.e2ld()).bucket();
        let vector = FeatureVector::from_values([
            signer_of(&raw.file_meta),
            ca_of(&raw.file_meta),
            packer_of(&raw.file_meta),
            psigner,
            pca,
            ppacker,
            ptype,
            rank.name().to_owned(),
        ]);
        self.vectors.push(raw.file, vector);
        self.vectors.get(raw.file)
    }

    /// Per-file vectors so far, in first-sighting order.
    pub fn vectors(&self) -> &FileVectors {
        &self.vectors
    }

    /// Consumes the extractor, keeping the vectors.
    pub fn into_vectors(self) -> FileVectors {
        self.vectors
    }

    /// Number of distinct process images sighted.
    pub fn distinct_processes(&self) -> usize {
        self.processes.len()
    }

    /// Process-feature state in deterministic order for snapshot
    /// serialization: `(process, features)` sorted by process hash.
    pub(crate) fn export_processes(&self) -> Vec<(FileHash, &ProcessFeatures)> {
        let mut entries: Vec<(FileHash, &ProcessFeatures)> =
            self.processes.iter().map(|(h, p)| (*h, p)).collect();
        entries.sort_unstable_by_key(|&(h, _)| h);
        entries
    }

    /// Rebuilds an extractor from snapshot state. Vector order must be
    /// the original first-sighting order (the snapshot stores it as
    /// written).
    pub(crate) fn restore(
        urls: &'a UrlLabeler,
        processes: Vec<(FileHash, ProcessFeatures)>,
        vectors: FileVectors,
    ) -> Self {
        Self {
            urls,
            processes: processes.into_iter().collect(),
            vectors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_features::{UNPACKED, UNSIGNED};
    use downlake_groundtruth::DomainFacts;
    use downlake_types::{AlexaRank, FileMeta, MachineId, SignerInfo, Timestamp, Url};

    fn meta(signer: Option<&str>, disk: &str) -> FileMeta {
        FileMeta {
            size_bytes: 10,
            disk_name: disk.into(),
            signer: signer.map(|s| SignerInfo::valid(s, "thawte code signing ca g2")),
            packer: None,
        }
    }

    fn event(file: u64, process: u64, pmeta: FileMeta, url: &str) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: meta(None, "setup.exe"),
            machine: MachineId::from_raw(1),
            process: FileHash::from_raw(process),
            process_meta: pmeta,
            url: url.parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(0),
            executed: true,
        }
    }

    fn labeler() -> UrlLabeler {
        let mut l = UrlLabeler::new();
        l.insert(
            "softonic.com",
            DomainFacts {
                rank: AlexaRank::ranked(170),
                ..DomainFacts::default()
            },
        );
        l
    }

    #[test]
    fn first_sighting_yields_a_vector_and_repeats_do_not() {
        let urls = labeler();
        let mut ex = OnlineExtractor::new(&urls);
        let e = event(
            1,
            100,
            meta(Some("Google Inc"), "chrome.exe"),
            "http://dl.softonic.com/f.exe",
        );
        let v = ex.ingest(&e).cloned().unwrap();
        assert_eq!(v.value(0), UNSIGNED);
        assert_eq!(v.value(3), "Google Inc");
        assert_eq!(v.value(6), "browser");
        assert_eq!(v.value(7), "top 1k");
        assert!(ex.ingest(&e).is_none(), "repeat download yields nothing");
        assert_eq!(ex.vectors().len(), 1);
    }

    #[test]
    fn process_features_freeze_at_first_sighting() {
        let urls = labeler();
        let mut ex = OnlineExtractor::new(&urls);
        // Process 100 first seen unsigned...
        ex.ingest(&event(1, 100, meta(None, "java.exe"), "http://a.com/f.exe"));
        // ...then re-appears signed; a new file must still see the
        // first-sighting (unsigned) process features.
        let v = ex
            .ingest(&event(
                2,
                100,
                meta(Some("Oracle"), "java.exe"),
                "http://a.com/g.exe",
            ))
            .cloned()
            .unwrap();
        assert_eq!(v.value(3), UNSIGNED);
        assert_eq!(v.value(5), UNPACKED);
        assert_eq!(v.value(6), "java");
        assert_eq!(ex.distinct_processes(), 1);
    }

    #[test]
    fn repeat_download_still_interns_new_process() {
        let urls = labeler();
        let mut ex = OnlineExtractor::new(&urls);
        ex.ingest(&event(
            1,
            100,
            meta(None, "chrome.exe"),
            "http://a.com/f.exe",
        ));
        // Same file again via a different process: no vector, but the
        // process is interned for later files.
        assert!(ex
            .ingest(&event(
                1,
                200,
                meta(None, "svchost.exe"),
                "http://a.com/f.exe"
            ))
            .is_none());
        assert_eq!(ex.distinct_processes(), 2);
        let v = ex
            .ingest(&event(
                3,
                200,
                meta(Some("X"), "svchost.exe"),
                "http://a.com/h.exe",
            ))
            .cloned()
            .unwrap();
        assert_eq!(v.value(6), "windows");
        assert_eq!(v.value(3), UNSIGNED, "first sighting of 200 was unsigned");
    }
}
