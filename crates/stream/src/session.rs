//! A live classification session: bytes in, verdicts out.
//!
//! [`StreamSession`] chains the three online pieces — admission
//! ([`StreamingCollector`]), incremental features
//! ([`OnlineExtractor`]), and the compiled engine
//! ([`CompiledRuleSet`]) — over an event stream. Two ingestion shapes:
//!
//! * [`StreamSession::push`] — one event at a time, classifying each
//!   new file inline with a session-owned scratch row (steady-state:
//!   zero heap allocation per event);
//! * [`StreamSession::push_batch`] — a micro-batch through a
//!   `downlake-exec` [`Pool`]: admission/extraction/encoding stay
//!   sequential (they are stateful and order-sensitive), then the
//!   encoded rows are classified in parallel with results restored to
//!   arrival order. Because the engine is a pure function of the row,
//!   verdicts are byte-identical to the per-event path at any pool
//!   width.
//!
//! Both shapes also exist bytes-first ([`StreamSession::push_bytes`],
//! [`StreamSession::push_bytes_batched`]) through the telemetry codec.

use crate::collector::StreamingCollector;
use crate::engine::CompiledRuleSet;
use crate::online::OnlineExtractor;
use downlake_exec::Pool;
use downlake_features::FileVectors;
use downlake_groundtruth::UrlLabeler;
use downlake_rulelearn::Verdict;
use downlake_telemetry::codec::{decode_event, CodecError};
use downlake_telemetry::{RawEvent, ReportingPolicy, SuppressionStats};
use downlake_types::FileHash;

/// An online classification session over one event stream.
#[derive(Debug)]
pub struct StreamSession<'a> {
    collector: StreamingCollector,
    extractor: OnlineExtractor<'a>,
    engine: &'a CompiledRuleSet,
    verdicts: Vec<(FileHash, Verdict)>,
    scratch: Vec<u32>,
}

impl<'a> StreamSession<'a> {
    /// Creates a session applying `policy`, resolving domain ranks
    /// through `urls`, and classifying with `engine`.
    pub fn new(policy: ReportingPolicy, urls: &'a UrlLabeler, engine: &'a CompiledRuleSet) -> Self {
        Self {
            collector: StreamingCollector::new(policy),
            extractor: OnlineExtractor::new(urls),
            engine,
            verdicts: Vec::new(),
            scratch: Vec::with_capacity(engine.arity()),
        }
    }

    /// Ingests one event. Returns the verdict when the event was
    /// admitted *and* is its file's first sighting; `None` for
    /// suppressed events and repeat downloads.
    pub fn push(&mut self, raw: &RawEvent) -> Option<Verdict> {
        if self.collector.admit(raw).is_err() {
            return None;
        }
        let vector = self.extractor.ingest(raw)?;
        self.engine.encode_into(&vector.values(), &mut self.scratch);
        let verdict = self.engine.classify(&self.scratch);
        self.verdicts.push((raw.file, verdict));
        Some(verdict)
    }

    /// Ingests a micro-batch, classifying the batch's new files on the
    /// pool. Byte-identical to pushing the same events one at a time.
    pub fn push_batch(&mut self, batch: &[RawEvent], pool: &Pool) {
        let arity = self.engine.arity();
        let mut new_files: Vec<FileHash> = Vec::new();
        let mut rows: Vec<u32> = Vec::new();
        for raw in batch {
            if self.collector.admit(raw).is_err() {
                continue;
            }
            if let Some(vector) = self.extractor.ingest(raw) {
                new_files.push(raw.file);
                self.engine.encode_into(&vector.values(), &mut self.scratch);
                rows.extend_from_slice(&self.scratch);
            }
        }
        let engine = self.engine;
        let indexes: Vec<usize> = (0..new_files.len()).collect();
        let verdicts = pool.map(&indexes, |_, &i| {
            engine.classify(&rows[i * arity..(i + 1) * arity])
        });
        self.verdicts.extend(new_files.into_iter().zip(verdicts));
    }

    /// Decodes and pushes every event in a codec byte stream, one at a
    /// time. Returns the number of events decoded.
    ///
    /// # Errors
    ///
    /// Returns the [`CodecError`] of the first malformed frame; events
    /// before it have already been ingested.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Result<usize, CodecError> {
        let mut pos = 0usize;
        let mut count = 0usize;
        while pos < bytes.len() {
            let (event, consumed) = decode_event(&bytes[pos..])?;
            pos += consumed;
            count += 1;
            self.push(&event);
        }
        Ok(count)
    }

    /// Decodes a codec byte stream in micro-batches of `batch` events,
    /// classifying each batch on the pool. Returns the number of events
    /// decoded. `batch == 0` is treated as 1.
    ///
    /// # Errors
    ///
    /// Returns the [`CodecError`] of the first malformed frame; batches
    /// before it have already been ingested.
    pub fn push_bytes_batched(
        &mut self,
        bytes: &[u8],
        batch: usize,
        pool: &Pool,
    ) -> Result<usize, CodecError> {
        let batch = batch.max(1);
        let mut buffer: Vec<RawEvent> = Vec::with_capacity(batch);
        let mut pos = 0usize;
        let mut count = 0usize;
        while pos < bytes.len() {
            let (event, consumed) = decode_event(&bytes[pos..])?;
            pos += consumed;
            count += 1;
            buffer.push(event);
            if buffer.len() == batch {
                self.push_batch(&buffer, pool);
                buffer.clear();
            }
        }
        self.push_batch(&buffer, pool);
        Ok(count)
    }

    /// Verdicts so far: one per distinct admitted file, in
    /// first-sighting order.
    pub fn verdicts(&self) -> &[(FileHash, Verdict)] {
        &self.verdicts
    }

    /// Per-file feature vectors so far, in first-sighting order.
    pub fn vectors(&self) -> &FileVectors {
        self.extractor.vectors()
    }

    /// Events admitted so far.
    pub fn events_admitted(&self) -> u64 {
        self.collector.events_admitted()
    }

    /// Suppression counters so far.
    pub fn suppression_stats(&self) -> SuppressionStats {
        self.collector.suppression_stats()
    }

    /// The engine this session classifies with.
    pub fn engine(&self) -> &CompiledRuleSet {
        self.engine
    }

    /// Records the session's cumulative tallies into `registry`'s
    /// deterministic plane: events admitted, suppression counters,
    /// files classified, engine size, and per-outcome verdict counts
    /// (`stream.verdict.<class>`, plus `rejected` for conflict
    /// rejections and `no_match`).
    ///
    /// Everything recorded is a pure function of the event stream and
    /// the engine — identical at any batch size or pool width — so a
    /// manifest built from it is byte-comparable across runs. Call once
    /// at the end of ingestion (or at checkpoints); the method never
    /// touches the per-event hot path.
    pub fn observe_into(&self, registry: &downlake_obs::Registry) {
        registry.counter_add("stream.events_admitted", self.events_admitted());
        let s = self.suppression_stats();
        registry.counter_add("stream.suppressed.not_executed", s.not_executed);
        registry.counter_add("stream.suppressed.prevalence_cap", s.prevalence_cap);
        registry.counter_add("stream.suppressed.whitelisted_url", s.whitelisted_url);
        registry.counter_add("stream.files_classified", self.verdicts.len() as u64);
        registry.gauge_max("stream.engine.rules", self.engine.rule_count() as u64);
        let (classes, rejected, no_match) = self.verdict_counts();
        for (c, &n) in classes.iter().enumerate() {
            let name = self
                .engine
                .class_name(Verdict::Class(c as u8))
                .unwrap_or("unknown");
            // downlake-lint: allow(P2) — once-per-run summary over the handful of classes, not the per-event hot path
            registry.counter_add(&format!("stream.verdict.{name}"), n as u64);
        }
        registry.counter_add("stream.verdict.rejected", rejected as u64);
        registry.counter_add("stream.verdict.no_match", no_match as u64);
    }

    /// Counts verdicts per outcome: `(per-class counts, rejected,
    /// no-match)`.
    pub fn verdict_counts(&self) -> (Vec<usize>, usize, usize) {
        let mut classes = vec![0usize; self.engine.class_count()];
        let mut rejected = 0usize;
        let mut no_match = 0usize;
        for &(_, verdict) in &self.verdicts {
            match verdict {
                Verdict::Class(c) => {
                    if let Some(slot) = classes.get_mut(c as usize) {
                        *slot += 1;
                    }
                }
                Verdict::Rejected => rejected += 1,
                Verdict::NoMatch => no_match += 1,
            }
        }
        (classes, rejected, no_match)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_rulelearn::{Condition, InstancesBuilder, Rule, RuleSet};
    use downlake_telemetry::codec::encode_events;
    use downlake_types::{FileMeta, MachineId, SignerInfo, Timestamp, Url};

    fn engine() -> CompiledRuleSet {
        let mut b = InstancesBuilder::new(
            &[
                "file's signer",
                "file's CA",
                "file's packer",
                "process's signer",
                "process's CA",
                "process's packer",
                "process's type",
                "domain's Alexa rank",
            ],
            &["benign", "malicious"],
        );
        // Intern "somoto" (id 0) as the malicious file signer.
        b.push(
            &[
                "somoto",
                "ca",
                "(unpacked)",
                "(unsigned)",
                "(unsigned)",
                "(unpacked)",
                "browser",
                "unranked",
            ],
            "malicious",
        );
        let schema = b.build().schema().clone();
        CompiledRuleSet::compile(&RuleSet::new(
            schema,
            vec![Rule {
                conditions: vec![Condition { attr: 0, value: 0 }],
                class: 1,
                covered: 10,
                errors: 0,
            }],
        ))
    }

    fn event(file: u64, machine: u64, signer: Option<&str>) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta {
                size_bytes: 1,
                disk_name: "setup.exe".into(),
                signer: signer.map(|s| SignerInfo::valid(s, "ca")),
                packer: None,
            },
            machine: MachineId::from_raw(machine),
            process: FileHash::from_raw(999),
            process_meta: FileMeta {
                disk_name: "chrome.exe".into(),
                ..FileMeta::default()
            },
            url: "http://a.com/f.exe".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(0),
            executed: true,
        }
    }

    #[test]
    fn per_event_and_batched_paths_agree() {
        let urls = UrlLabeler::new();
        let engine = engine();
        let events: Vec<RawEvent> = (0..40)
            .map(|i| event(i % 7, i, if i % 7 == 0 { Some("somoto") } else { None }))
            .collect();
        let bytes = encode_events(&events);

        let mut one = StreamSession::new(ReportingPolicy::new(20), &urls, &engine);
        assert_eq!(one.push_bytes(&bytes).unwrap(), 40);

        let mut batched = StreamSession::new(ReportingPolicy::new(20), &urls, &engine);
        let pool = Pool::new(4);
        assert_eq!(batched.push_bytes_batched(&bytes, 8, &pool).unwrap(), 40);

        assert_eq!(one.verdicts(), batched.verdicts());
        assert_eq!(one.vectors(), batched.vectors());
        assert_eq!(one.suppression_stats(), batched.suppression_stats());
        assert_eq!(one.verdicts().len(), 7, "one verdict per distinct file");
        assert_eq!(one.verdicts()[0].1, Verdict::Class(1));
    }

    #[test]
    fn verdict_counts_tally_outcomes() {
        let urls = UrlLabeler::new();
        let engine = engine();
        let mut s = StreamSession::new(ReportingPolicy::new(20), &urls, &engine);
        s.push(&event(1, 1, Some("somoto")));
        s.push(&event(2, 1, None));
        let (classes, rejected, no_match) = s.verdict_counts();
        assert_eq!(classes[1], 1);
        assert_eq!(rejected, 0);
        assert_eq!(no_match, 1);
    }

    #[test]
    fn observe_into_is_batch_invariant() {
        use downlake_obs::Registry;
        let urls = UrlLabeler::new();
        let engine = engine();
        let events: Vec<RawEvent> = (0..40)
            .map(|i| event(i % 7, i, if i % 7 == 0 { Some("somoto") } else { None }))
            .collect();
        let bytes = encode_events(&events);

        let observe = |batch: usize, threads: usize| {
            let mut s = StreamSession::new(ReportingPolicy::new(20), &urls, &engine);
            if batch == 0 {
                s.push_bytes(&bytes).unwrap();
            } else {
                s.push_bytes_batched(&bytes, batch, &Pool::new(threads))
                    .unwrap();
            }
            let registry = Registry::new();
            s.observe_into(&registry);
            registry.snapshot()
        };
        let one = observe(0, 1);
        let batched = observe(8, 4);
        assert_eq!(one, batched, "tallies must not depend on batching");
        assert_eq!(one.counters["stream.files_classified"], 7);
        assert_eq!(one.counters["stream.verdict.malicious"], 1);
        assert_eq!(one.gauges["stream.engine.rules"], 1);
    }

    #[test]
    fn truncated_bytes_surface_codec_errors() {
        let urls = UrlLabeler::new();
        let engine = engine();
        let bytes = encode_events([&event(1, 1, None)]);
        let mut s = StreamSession::new(ReportingPolicy::new(20), &urls, &engine);
        assert!(s.push_bytes(&bytes[..bytes.len() - 2]).is_err());
    }
}
