//! Online ingestion and live rule classification for `downlake`.
//!
//! The paper's rule-based system (§VI–§VII) exists to be *deployed*:
//! label unknown files as telemetry arrives, not after a seven-month
//! batch. This crate is that deployment layer, built from three pieces
//! that each mirror a batch component exactly:
//!
//! | online | batch twin | equivalence |
//! |--------|-----------|-------------|
//! | [`StreamingCollector`] | `CollectionServer` (§II-A policy) | same admit/suppress decision per event |
//! | [`OnlineExtractor`] | `Extractor::extract_files` (Table XV) | same `FileVectors` at stream end |
//! | [`CompiledRuleSet`] | `RuleSet::classify` under `Reject` | same verdict per row |
//!
//! [`StreamSession`] chains them over a raw event stream — in-memory
//! structs, codec bytes, or `downlake-exec` micro-batches — and the
//! workspace test `tests/stream_equivalence.rs` pins the end-of-stream
//! state byte-identical to the batch pipeline on the seed-42 study at
//! every pool width.
//!
//! [`StreamService`] scales the session shape to a fleet: machine-ID
//! sharded verdict logs over a stable hash-partition, snapshot/restore
//! through a lake-style checksummed file format
//! ([`StreamService::snapshot_to`] / [`StreamService::restore`], typed
//! [`SnapshotError`]), and epoch-based [`CompiledRuleSet`] hot-swap
//! with recorded old-vs-new [`SwapDivergence`]. Verdicts stay
//! byte-identical to a single session at any `(threads, shards)`
//! combination, across a snapshot/resume boundary, and per-shard
//! tallies merge into a commutative [`ServiceReport`]
//! (`tests/service_equivalence.rs` pins all three).
//!
//! Memory stays bounded by the number of distinct entities (files ×
//! σ machine ids, processes, rules), never by stream length; the
//! per-event hot path allocates nothing (lint rule P2 covers this
//! crate, and `tests/zero_alloc.rs` counts allocations around the
//! compiled engine).
//!
//! The engine alone is usable without a session — learn a rule set the
//! batch way, compile it, classify feature rows online:
//!
//! ```
//! use downlake_rulelearn::{InstancesBuilder, PartLearner};
//! use downlake_stream::CompiledRuleSet;
//!
//! let mut b = InstancesBuilder::new(&["signer"], &["benign", "malicious"]);
//! for _ in 0..12 {
//!     b.push(&["Somoto Ltd."], "malicious");
//!     b.push(&["Dell Inc."], "benign");
//! }
//! let rules = PartLearner::default().learn(&b.build()).select(0.01);
//! let engine = CompiledRuleSet::compile(&rules);
//!
//! let mut scratch = Vec::new(); // reused across calls: the hot path allocates nothing
//! let verdict = engine.classify_features(&["Somoto Ltd."], &mut scratch);
//! assert_eq!(engine.class_name(verdict), Some("malicious"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod collector;
mod engine;
mod online;
mod service;
mod session;
mod snapshot;

pub use collector::StreamingCollector;
pub use engine::{CompiledCondition, CompiledRuleSet};
pub use online::OnlineExtractor;
pub use service::{ServiceConfig, ServiceReport, ServiceStatus, StreamService, SwapDivergence};
pub use session::StreamSession;
pub use snapshot::{
    SnapshotError, SNAPSHOT_FOOTER_LEN, SNAPSHOT_FOOTER_MAGIC, SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
