//! The multi-tenant stream service: sharded verdict bookkeeping,
//! epoch-based rule hot-swap, and a commutative merged report.
//!
//! [`StreamService`] scales the single [`StreamSession`] shape up to a
//! fleet: machine ids are routed onto a fixed number of **shards** by a
//! stable hash-partition ([`downlake_exec::partition`] over a 65 536-slot
//! space, so the shard count is decoupled from the pool width), and each
//! shard keeps its own verdict log and routing counters. The paper's
//! §II-A admission policy is *global* — a file's prevalence counts
//! distinct machines across the whole fleet — so the σ-cap collector and
//! the feature extractor stay sequential and fleet-wide, exactly like
//! the stateful front of [`StreamSession::push_batch`]. What fans out
//! over the [`Pool`] is the pure part: classifying encoded rows. That
//! split is what makes verdicts byte-identical at any `(threads,
//! shards)` combination — pinned by `tests/service_equivalence.rs`.
//!
//! **Hot swap.** A retrained [`CompiledRuleSet`] staged with
//! [`StreamService::stage_engine`] is published atomically at the next
//! event-count epoch boundary (`epoch_len` events). Activation happens
//! *before* the boundary event is ingested, in both the per-event and
//! batched paths, so the switch point is a pure function of the stream —
//! never of batch size or thread count. Each activation records a
//! [`SwapDivergence`]: every known file re-classified under the outgoing
//! and incoming engines, with the changed count and per-transition
//! tallies.
//!
//! **Report.** [`ServiceReport`] is a commutative monoid over per-shard
//! partials (`merge-contracts.json` entry `ServiceReport`; property test
//! `service_report_merge_commutes`), folded on the pool by
//! [`StreamService::report`].
//!
//! [`StreamSession`]: crate::StreamSession
//! [`StreamSession::push_batch`]: crate::StreamSession::push_batch

use crate::collector::StreamingCollector;
use crate::engine::CompiledRuleSet;
use crate::online::OnlineExtractor;
use downlake_exec::{partition, splitmix64, Pool};
use downlake_features::FileVectors;
use downlake_groundtruth::UrlLabeler;
use downlake_rulelearn::Verdict;
use downlake_telemetry::codec::{decode_event, CodecError};
use downlake_telemetry::{RawEvent, ReportingPolicy, SuppressionStats};
use downlake_types::{FileHash, MachineId};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// Number of slots in the routing space. Machine ids hash onto slots;
/// [`partition`] tiles the slots onto shards. Large enough that any
/// practical shard count divides the space near-evenly.
const ROUTE_SLOTS: usize = 65_536;

/// Transition code for a conflict-rejected verdict (class ids are `u8`,
/// so codes ≥ 256 can never collide with a class).
const CODE_REJECTED: u16 = 0xFFFE;
/// Transition code for a no-match verdict.
const CODE_NO_MATCH: u16 = 0xFFFF;

/// Sizing knobs for a [`StreamService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of shards machine ids are routed onto. Forced to ≥ 1.
    pub shards: usize,
    /// Events per epoch: a staged engine activates at the next multiple
    /// of this count. Forced to ≥ 1.
    pub epoch_len: u64,
}

impl ServiceConfig {
    /// Creates a config, clamping both knobs to at least 1.
    pub fn new(shards: usize, epoch_len: u64) -> Self {
        Self {
            shards: shards.max(1),
            epoch_len: epoch_len.max(1),
        }
    }
}

impl Default for ServiceConfig {
    /// Eight shards, 4 096-event epochs.
    fn default() -> Self {
        Self::new(8, 4096)
    }
}

/// One logged verdict: which event (by global sequence number) classified
/// which file, under which engine generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShardVerdict {
    pub(crate) seq: u64,
    pub(crate) file: FileHash,
    pub(crate) verdict: Verdict,
    pub(crate) generation: u32,
}

/// Per-shard state: the verdict log (ascending `seq`) plus routing
/// counters.
#[derive(Debug, Default)]
pub(crate) struct ShardState {
    pub(crate) log: Vec<ShardVerdict>,
    pub(crate) events_routed: u64,
}

/// An engine staged for publication at the next epoch boundary.
#[derive(Debug)]
pub(crate) struct PendingSwap {
    pub(crate) engine: CompiledRuleSet,
    pub(crate) activate_at: u64,
}

/// What changed when a staged engine was published: every known file
/// re-classified under the outgoing and incoming engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapDivergence {
    /// Global sequence number at which the new engine took over.
    pub at_seq: u64,
    /// Generation of the outgoing engine.
    pub from_generation: u32,
    /// Generation of the incoming engine.
    pub to_generation: u32,
    /// Files re-classified (all files known at activation).
    pub files: u64,
    /// Files whose verdict changed.
    pub changed: u64,
    /// `(old label, new label, count)` per observed transition, sorted.
    /// Labels are class names, `rejected`, or `no_match`.
    pub transitions: Vec<(String, String, u64)>,
}

impl fmt::Display for SwapDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "swap @{}: gen {} -> {} | {} files, {} changed",
            self.at_seq, self.from_generation, self.to_generation, self.files, self.changed
        )?;
        for (from, to, n) in &self.transitions {
            writeln!(f, "  {from} -> {to}: {n}")?;
        }
        Ok(())
    }
}

/// Per-shard verdict tallies that merge commutatively (see
/// `merge-contracts.json`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// Number of shard partials merged into this report.
    pub shards: u64,
    /// Events routed to the merged shards (admitted or not).
    pub events_routed: u64,
    /// Verdicts logged (one per first-sighting admitted file).
    pub files_classified: u64,
    /// `(class label, count)` per classified outcome, sorted by label.
    pub class_verdicts: Vec<(String, u64)>,
    /// Conflict-rejected verdicts.
    pub rejected: u64,
    /// No-match verdicts.
    pub no_match: u64,
}

impl ServiceReport {
    /// Absorbs another partial: integer fields add, class tallies merge
    /// label-wise and re-sort. Commutative and associative, with the
    /// default (all-zero) report as identity.
    pub fn merge(&mut self, other: ServiceReport) {
        self.shards += other.shards;
        self.events_routed += other.events_routed;
        self.files_classified += other.files_classified;
        self.rejected += other.rejected;
        self.no_match += other.no_match;
        self.class_verdicts.extend(other.class_verdicts);
        normalize_labels(&mut self.class_verdicts);
    }
}

/// Sorts `(label, count)` pairs and folds duplicate labels by addition —
/// the canonical form every [`ServiceReport`] keeps its tallies in.
fn normalize_labels(pairs: &mut Vec<(String, u64)>) {
    pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    pairs.dedup_by(|cur, prev| {
        if cur.0 == prev.0 {
            prev.1 += cur.1;
            true
        } else {
            false
        }
    });
}

/// A point-in-time view of the whole service: the merged shard report
/// plus the global (sequential-front) counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Merged per-shard report.
    pub report: ServiceReport,
    /// Events pushed into the service (admitted or not).
    pub events_seen: u64,
    /// Events admitted by the §II-A policy.
    pub events_admitted: u64,
    /// Suppression counters.
    pub suppressed: SuppressionStats,
    /// Current engine generation (0 = the engine the service started
    /// with; +1 per published swap).
    pub generation: u32,
    /// Number of published swaps.
    pub swaps: u64,
}

/// A machine-sharded, hot-swappable classification service.
#[derive(Debug)]
pub struct StreamService<'a> {
    collector: StreamingCollector,
    extractor: OnlineExtractor<'a>,
    engine: CompiledRuleSet,
    /// Slot ranges per shard, from [`partition`] over [`ROUTE_SLOTS`].
    ranges: Vec<Range<usize>>,
    shards: Vec<ShardState>,
    epoch_len: u64,
    /// Global event sequence number (counts every pushed event).
    seq: u64,
    generation: u32,
    pending: Option<PendingSwap>,
    swaps: Vec<SwapDivergence>,
    /// Class-name table per generation, for naming logged verdicts after
    /// later swaps replaced the engine.
    class_tables: Vec<Vec<String>>,
    scratch: Vec<u32>,
}

impl<'a> StreamService<'a> {
    /// Creates a service applying `policy`, resolving domain ranks
    /// through `urls`, and classifying with `engine` (generation 0).
    pub fn new(
        config: ServiceConfig,
        policy: ReportingPolicy,
        urls: &'a UrlLabeler,
        engine: CompiledRuleSet,
    ) -> Self {
        let config = ServiceConfig::new(config.shards, config.epoch_len);
        let mut shards = Vec::with_capacity(config.shards);
        shards.resize_with(config.shards, ShardState::default);
        let scratch = Vec::with_capacity(engine.arity());
        let class_tables = vec![engine.classes().to_vec()];
        Self {
            collector: StreamingCollector::new(policy),
            extractor: OnlineExtractor::new(urls),
            engine,
            ranges: partition(ROUTE_SLOTS, config.shards),
            shards,
            epoch_len: config.epoch_len,
            seq: 0,
            generation: 0,
            pending: None,
            swaps: Vec::new(),
            class_tables,
            scratch,
        }
    }

    /// The shard a machine id routes to: a SplitMix64 hash onto the slot
    /// space, then the [`partition`] range holding that slot. Stable
    /// across runs, independent of pool width and event order.
    pub fn shard_of(&self, machine: MachineId) -> usize {
        let slot = (splitmix64(machine.raw()) % ROUTE_SLOTS as u64) as usize;
        self.ranges.partition_point(|r| r.end <= slot)
    }

    /// Sequential front shared by both push paths: bump the sequence
    /// number and routing counter, run global admission and extraction,
    /// and leave the encoded row in `self.scratch`. Returns the log
    /// coordinates for events that produced a row to classify.
    fn ingest_event(&mut self, raw: &RawEvent) -> Option<(usize, u64, FileHash)> {
        let at = self.seq;
        self.seq += 1;
        let shard = self.shard_of(raw.machine);
        self.shards[shard].events_routed += 1;
        if self.collector.admit(raw).is_err() {
            return None;
        }
        let vector = self.extractor.ingest(raw)?;
        self.engine.encode_into(&vector.values(), &mut self.scratch);
        Some((shard, at, raw.file))
    }

    /// Whether a staged engine is due: the global sequence number has
    /// reached its epoch boundary.
    fn swap_due(&self) -> bool {
        self.pending
            .as_ref()
            .is_some_and(|p| self.seq >= p.activate_at)
    }

    /// Publishes the pending engine: swap it in, bump the generation,
    /// and record the old-vs-new divergence over every known file.
    fn activate(&mut self) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        let outgoing = std::mem::replace(&mut self.engine, pending.engine);
        let mut transitions: BTreeMap<(u16, u16), u64> = BTreeMap::new();
        let mut changed = 0u64;
        let mut old_row: Vec<u32> = Vec::new();
        let mut new_row: Vec<u32> = Vec::new();
        for (_, vector) in self.extractor.vectors().iter() {
            let values = vector.values();
            let before = outgoing.classify_features(&values, &mut old_row);
            let after = self.engine.classify_features(&values, &mut new_row);
            if before != after {
                changed += 1;
            }
            *transitions
                .entry((verdict_code(before), verdict_code(after)))
                .or_insert(0) += 1;
        }
        let from_generation = self.generation;
        self.generation += 1;
        self.class_tables.push(self.engine.classes().to_vec());
        let divergence = SwapDivergence {
            at_seq: self.seq,
            from_generation,
            to_generation: self.generation,
            files: self.extractor.vectors().len() as u64,
            changed,
            transitions: transitions
                .iter()
                .map(|(&(from, to), &n)| {
                    (
                        code_label(from, outgoing.classes()),
                        code_label(to, self.engine.classes()),
                        n,
                    )
                })
                .collect(),
        };
        self.swaps.push(divergence);
    }

    /// Stages a retrained engine for publication at the next epoch
    /// boundary (the first sequence number that is a multiple of
    /// `epoch_len` and strictly after the current one). Restaging before
    /// activation replaces the previously staged engine. Returns the
    /// activation sequence number.
    pub fn stage_engine(&mut self, engine: CompiledRuleSet) -> u64 {
        let activate_at = (self.seq / self.epoch_len + 1) * self.epoch_len;
        self.pending = Some(PendingSwap {
            engine,
            activate_at,
        });
        activate_at
    }

    /// Ingests one event. Returns the verdict when the event was
    /// admitted *and* is its file's first sighting; `None` for
    /// suppressed events and repeat downloads. A due engine swap is
    /// published before the event is processed.
    pub fn push(&mut self, raw: &RawEvent) -> Option<Verdict> {
        if self.swap_due() {
            self.activate();
        }
        let (shard, at, file) = self.ingest_event(raw)?;
        let verdict = self.engine.classify(&self.scratch);
        self.shards[shard].log.push(ShardVerdict {
            seq: at,
            file,
            verdict,
            generation: self.generation,
        });
        Some(verdict)
    }

    /// Ingests a micro-batch, classifying the batch's new files on the
    /// pool. Byte-identical to pushing the same events one at a time: the
    /// sequential front runs per event (including the epoch-boundary
    /// check, so a due swap splits the batch at exactly the sequence
    /// number the per-event path would), and only the pure
    /// row-classification fans out.
    pub fn push_batch(&mut self, batch: &[RawEvent], pool: &Pool) {
        let mut arity = self.engine.arity();
        let mut meta: Vec<(usize, u64, FileHash)> = Vec::new();
        let mut rows: Vec<u32> = Vec::new();
        for raw in batch {
            if self.swap_due() {
                self.flush(&mut meta, &mut rows, arity, pool);
                self.activate();
                arity = self.engine.arity();
            }
            if let Some(entry) = self.ingest_event(raw) {
                meta.push(entry);
                rows.extend_from_slice(&self.scratch);
            }
        }
        self.flush(&mut meta, &mut rows, arity, pool);
    }

    /// Classifies the accumulated rows on the pool (pure, order
    /// restored) and appends the verdicts to their shards' logs.
    fn flush(
        &mut self,
        meta: &mut Vec<(usize, u64, FileHash)>,
        rows: &mut Vec<u32>,
        arity: usize,
        pool: &Pool,
    ) {
        if meta.is_empty() {
            rows.clear();
            return;
        }
        let engine = &self.engine;
        let indexes: Vec<usize> = (0..meta.len()).collect();
        let verdicts = pool.map(&indexes, |_, &i| {
            engine.classify(&rows[i * arity..(i + 1) * arity])
        });
        let generation = self.generation;
        for ((shard, at, file), verdict) in meta.drain(..).zip(verdicts) {
            self.shards[shard].log.push(ShardVerdict {
                seq: at,
                file,
                verdict,
                generation,
            });
        }
        rows.clear();
    }

    /// Decodes and pushes every event in a codec byte stream, one at a
    /// time. Returns the number of events decoded.
    ///
    /// # Errors
    ///
    /// Returns the [`CodecError`] of the first malformed frame; events
    /// before it have already been ingested.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Result<usize, CodecError> {
        let mut pos = 0usize;
        let mut count = 0usize;
        while pos < bytes.len() {
            let (event, consumed) = decode_event(&bytes[pos..])?;
            pos += consumed;
            count += 1;
            self.push(&event);
        }
        Ok(count)
    }

    /// Decodes a codec byte stream in micro-batches of `batch` events,
    /// classifying each batch on the pool. Returns the number of events
    /// decoded. `batch == 0` is treated as 1.
    ///
    /// # Errors
    ///
    /// Returns the [`CodecError`] of the first malformed frame; batches
    /// before it have already been ingested.
    pub fn push_bytes_batched(
        &mut self,
        bytes: &[u8],
        batch: usize,
        pool: &Pool,
    ) -> Result<usize, CodecError> {
        let batch = batch.max(1);
        let mut buffer: Vec<RawEvent> = Vec::with_capacity(batch);
        let mut pos = 0usize;
        let mut count = 0usize;
        while pos < bytes.len() {
            let (event, consumed) = decode_event(&bytes[pos..])?;
            pos += consumed;
            count += 1;
            buffer.push(event);
            if buffer.len() == batch {
                self.push_batch(&buffer, pool);
                buffer.clear();
            }
        }
        self.push_batch(&buffer, pool);
        Ok(count)
    }

    /// All verdicts across shards, merged back into arrival order —
    /// byte-identical to a single [`StreamSession`](crate::StreamSession)
    /// replaying the same stream with the same engine history.
    pub fn merged_verdicts(&self) -> Vec<(FileHash, Verdict)> {
        let mut all: Vec<(u64, FileHash, Verdict)> = self
            .shards
            .iter()
            .flat_map(|s| s.log.iter().map(|v| (v.seq, v.file, v.verdict)))
            .collect();
        all.sort_unstable_by_key(|&(seq, _, _)| seq);
        all.into_iter().map(|(_, file, v)| (file, v)).collect()
    }

    /// One shard's tallies as a mergeable partial.
    fn shard_report(&self, shard: usize) -> ServiceReport {
        let state = &self.shards[shard];
        let mut class_counts: BTreeMap<(u32, u8), u64> = BTreeMap::new();
        let mut rejected = 0u64;
        let mut no_match = 0u64;
        for entry in &state.log {
            match entry.verdict {
                Verdict::Class(c) => {
                    *class_counts.entry((entry.generation, c)).or_insert(0) += 1;
                }
                Verdict::Rejected => rejected += 1,
                Verdict::NoMatch => no_match += 1,
            }
        }
        let mut class_verdicts: Vec<(String, u64)> = class_counts
            .iter()
            .map(|(&(generation, class), &n)| (self.class_label(generation, class), n))
            .collect();
        normalize_labels(&mut class_verdicts);
        ServiceReport {
            shards: 1,
            events_routed: state.events_routed,
            files_classified: state.log.len() as u64,
            class_verdicts,
            rejected,
            no_match,
        }
    }

    /// The class name a logged verdict carried under its generation's
    /// engine.
    fn class_label(&self, generation: u32, class: u8) -> String {
        self.class_tables
            .get(generation as usize)
            .and_then(|t| t.get(class as usize))
            .cloned()
            .unwrap_or_else(|| "unknown".to_owned())
    }

    /// Builds per-shard partials on the pool and folds them with
    /// [`ServiceReport::merge`]. The merge is commutative, so the result
    /// is independent of pool width and shard count (for a fixed
    /// stream).
    pub fn report(&self, pool: &Pool) -> ServiceReport {
        let indexes: Vec<usize> = (0..self.shards.len()).collect();
        let partials = pool.map(&indexes, |_, &i| self.shard_report(i));
        let mut merged = ServiceReport::default();
        for partial in partials {
            merged.merge(partial);
        }
        merged
    }

    /// The merged report plus the global sequential-front counters.
    pub fn status(&self, pool: &Pool) -> ServiceStatus {
        ServiceStatus {
            report: self.report(pool),
            events_seen: self.seq,
            events_admitted: self.collector.events_admitted(),
            suppressed: self.collector.suppression_stats(),
            generation: self.generation,
            swaps: self.swaps.len() as u64,
        }
    }

    /// Events pushed into the service so far (admitted or not).
    pub fn events_seen(&self) -> u64 {
        self.seq
    }

    /// Events admitted by the policy so far.
    pub fn events_admitted(&self) -> u64 {
        self.collector.events_admitted()
    }

    /// Suppression counters so far.
    pub fn suppression_stats(&self) -> SuppressionStats {
        self.collector.suppression_stats()
    }

    /// Per-file feature vectors so far, in first-sighting order.
    pub fn vectors(&self) -> &FileVectors {
        self.extractor.vectors()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Events per epoch (hot-swap activation granularity).
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// Current engine generation.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The engine currently classifying.
    pub fn engine(&self) -> &CompiledRuleSet {
        &self.engine
    }

    /// The staged swap, if any: `(activation seq, engine fingerprint)`.
    pub fn pending_swap(&self) -> Option<(u64, u64)> {
        self.pending
            .as_ref()
            .map(|p| (p.activate_at, p.engine.fingerprint()))
    }

    /// Divergence records of published swaps, in publication order.
    pub fn swap_history(&self) -> &[SwapDivergence] {
        &self.swaps
    }

    /// Records the service's cumulative tallies into `registry`'s
    /// deterministic plane: the global front (`service.events_seen`,
    /// admission and suppression counters), the merged verdict tallies
    /// (`service.verdict.<label>`), swap counters, and per-shard routing
    /// counters (`service.shard.<i>.events_routed` / `.files`).
    ///
    /// Everything recorded is a pure function of the stream and the
    /// engine history — identical at any batch size, pool width, or
    /// shard count for fixed config — so manifests are byte-comparable
    /// across runs. Call at checkpoints; never on the per-event path.
    pub fn observe_into(&self, registry: &downlake_obs::Registry) {
        registry.counter_add("service.events_seen", self.seq);
        registry.counter_add("service.events_admitted", self.events_admitted());
        let s = self.suppression_stats();
        registry.counter_add("service.suppressed.not_executed", s.not_executed);
        registry.counter_add("service.suppressed.prevalence_cap", s.prevalence_cap);
        registry.counter_add("service.suppressed.whitelisted_url", s.whitelisted_url);
        registry.gauge_max("service.shards", self.shards.len() as u64);
        registry.gauge_max("service.generation", u64::from(self.generation));
        registry.counter_add("service.swaps", self.swaps.len() as u64);
        let report = self.report(&Pool::sequential());
        registry.counter_add("service.files_classified", report.files_classified);
        report.class_verdicts.iter().for_each(|(label, n)| {
            registry.counter_add(&format!("service.verdict.{label}"), *n);
        });
        registry.counter_add("service.verdict.rejected", report.rejected);
        registry.counter_add("service.verdict.no_match", report.no_match);
        self.shards.iter().enumerate().for_each(|(i, shard)| {
            registry.counter_add(
                &format!("service.shard.{i}.events_routed"),
                shard.events_routed,
            );
            registry.counter_add(&format!("service.shard.{i}.files"), shard.log.len() as u64);
        });
    }

    // --- snapshot plumbing (crate-private) ---------------------------

    /// The global admission state (snapshot export).
    pub(crate) fn collector(&self) -> &StreamingCollector {
        &self.collector
    }

    /// The global extraction state (snapshot export).
    pub(crate) fn extractor(&self) -> &OnlineExtractor<'a> {
        &self.extractor
    }

    /// Per-shard logs (snapshot export).
    pub(crate) fn shard_states(&self) -> &[ShardState] {
        &self.shards
    }

    /// Class tables per generation (snapshot export).
    pub(crate) fn class_tables(&self) -> &[Vec<String>] {
        &self.class_tables
    }

    /// Reassembles a service from snapshot parts. The caller has already
    /// validated that `engine` (and `pending`, if any) match the
    /// fingerprints recorded at snapshot time.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        config: ServiceConfig,
        collector: StreamingCollector,
        extractor: OnlineExtractor<'a>,
        engine: CompiledRuleSet,
        shards: Vec<ShardState>,
        seq: u64,
        generation: u32,
        pending: Option<PendingSwap>,
        swaps: Vec<SwapDivergence>,
        class_tables: Vec<Vec<String>>,
    ) -> Self {
        let scratch = Vec::with_capacity(engine.arity());
        Self {
            collector,
            extractor,
            engine,
            ranges: partition(ROUTE_SLOTS, config.shards.max(1)),
            shards,
            epoch_len: config.epoch_len.max(1),
            seq,
            generation,
            pending,
            swaps,
            class_tables,
            scratch,
        }
    }
}

/// Collision-free transition code for a verdict: the class id, or a
/// sentinel ≥ 256 for the two non-class outcomes.
fn verdict_code(v: Verdict) -> u16 {
    match v {
        Verdict::Class(c) => u16::from(c),
        Verdict::Rejected => CODE_REJECTED,
        Verdict::NoMatch => CODE_NO_MATCH,
    }
}

/// Human label for a transition code under a class table.
fn code_label(code: u16, classes: &[String]) -> String {
    match code {
        CODE_REJECTED => "rejected".to_owned(),
        CODE_NO_MATCH => "no_match".to_owned(),
        c => classes
            .get(c as usize)
            .cloned()
            .unwrap_or_else(|| "unknown".to_owned()),
    }
}

/// Shared fixtures for this crate's service and snapshot unit tests: a
/// tiny 8-attribute engine plus a deterministic event stream.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use downlake_rulelearn::{Condition, InstancesBuilder, Rule, RuleSet};
    use downlake_types::{FileMeta, SignerInfo, Timestamp, Url};

    /// Length of [`sample_events`].
    pub(crate) const EVENT_COUNT: usize = 60;

    pub(crate) fn engine_for(signer: &str) -> CompiledRuleSet {
        let mut b = InstancesBuilder::new(
            &[
                "file's signer",
                "file's CA",
                "file's packer",
                "process's signer",
                "process's CA",
                "process's packer",
                "process's type",
                "domain's Alexa rank",
            ],
            &["benign", "malicious"],
        );
        b.push(
            &[
                signer,
                "ca",
                "(unpacked)",
                "(unsigned)",
                "(unsigned)",
                "(unpacked)",
                "browser",
                "unranked",
            ],
            "malicious",
        );
        let schema = b.build().schema().clone();
        CompiledRuleSet::compile(&RuleSet::new(
            schema,
            vec![Rule {
                conditions: vec![Condition { attr: 0, value: 0 }],
                class: 1,
                covered: 10,
                errors: 0,
            }],
        ))
    }

    pub(crate) fn event(file: u64, machine: u64, signer: Option<&str>) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(file),
            file_meta: FileMeta {
                size_bytes: 1,
                disk_name: "setup.exe".into(),
                signer: signer.map(|s| SignerInfo::valid(s, "ca")),
                packer: None,
            },
            machine: MachineId::from_raw(machine),
            process: FileHash::from_raw(999),
            process_meta: FileMeta {
                disk_name: "chrome.exe".into(),
                ..FileMeta::default()
            },
            url: "http://a.com/f.exe".parse::<Url>().unwrap(),
            timestamp: Timestamp::from_day(0),
            executed: true,
        }
    }

    pub(crate) fn events(n: u64) -> Vec<RawEvent> {
        (0..n)
            .map(|i| event(i % 7, i, if i % 7 == 0 { Some("somoto") } else { None }))
            .collect()
    }

    /// The deterministic event stream shared by service and snapshot
    /// tests.
    pub(crate) fn sample_events() -> Vec<RawEvent> {
        events(EVENT_COUNT as u64)
    }

    /// A small 4-shard, 16-event-epoch service over the sample engine.
    /// Returns the engine too so restore paths can re-supply it.
    pub(crate) fn sample_service(urls: &UrlLabeler) -> (StreamService<'_>, CompiledRuleSet) {
        let engine = engine_for("somoto");
        let service = StreamService::new(
            ServiceConfig::new(4, 16),
            ReportingPolicy::new(20),
            urls,
            engine.clone(),
        );
        (service, engine)
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{engine_for, events};
    use super::*;
    use downlake_telemetry::codec::encode_events;
    use downlake_types::MachineId;

    #[test]
    fn sharded_verdicts_match_a_single_session() {
        use crate::StreamSession;
        let urls = UrlLabeler::new();
        let engine = engine_for("somoto");
        let stream = events(60);
        let bytes = encode_events(&stream);

        let mut session = StreamSession::new(ReportingPolicy::new(20), &urls, &engine);
        session.push_bytes(&bytes).unwrap();

        for shards in [1usize, 3, 8] {
            for threads in [1usize, 4] {
                let mut svc = StreamService::new(
                    ServiceConfig::new(shards, 16),
                    ReportingPolicy::new(20),
                    &urls,
                    engine.clone(),
                );
                let pool = Pool::new(threads);
                svc.push_bytes_batched(&bytes, 8, &pool).unwrap();
                assert_eq!(
                    svc.merged_verdicts().as_slice(),
                    session.verdicts(),
                    "shards={shards} threads={threads}"
                );
                assert_eq!(svc.vectors(), session.vectors());
                assert_eq!(svc.suppression_stats(), session.suppression_stats());
            }
        }
    }

    #[test]
    fn routing_is_stable_and_total() {
        let urls = UrlLabeler::new();
        let svc = StreamService::new(
            ServiceConfig::new(8, 100),
            ReportingPolicy::new(20),
            &urls,
            engine_for("somoto"),
        );
        for m in 0..1000u64 {
            let shard = svc.shard_of(MachineId::from_raw(m));
            assert!(shard < 8);
            assert_eq!(shard, svc.shard_of(MachineId::from_raw(m)));
        }
    }

    #[test]
    fn swap_activates_at_the_epoch_boundary_and_records_divergence() {
        let urls = UrlLabeler::new();
        let mut svc = StreamService::new(
            ServiceConfig::new(4, 10),
            ReportingPolicy::new(20),
            &urls,
            engine_for("somoto"),
        );
        let stream = events(30);
        for raw in &stream[..5] {
            svc.push(raw);
        }
        // Staged at seq 5 -> activates at the boundary seq 10.
        let at = svc.stage_engine(engine_for("never-matches"));
        assert_eq!(at, 10);
        for raw in &stream[5..] {
            svc.push(raw);
        }
        assert_eq!(svc.generation(), 1);
        let swaps = svc.swap_history();
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].at_seq, 10);
        assert_eq!(swaps[0].from_generation, 0);
        assert_eq!(swaps[0].to_generation, 1);
        // The malicious file flips to no_match under the new engine.
        assert!(swaps[0].changed >= 1);
        // Events 0..10 cycle through files 0..7, so all 7 distinct files
        // were known at activation.
        assert_eq!(swaps[0].files, 7);
        // Verdict stream with the swap is identical per-event vs batched.
        let bytes = encode_events(&stream);
        let mut batched = StreamService::new(
            ServiceConfig::new(4, 10),
            ReportingPolicy::new(20),
            &urls,
            engine_for("somoto"),
        );
        let mut pos = 0usize;
        let mut pushed = 0u64;
        let pool = Pool::new(4);
        // Replay with the same staging point (after 5 events).
        let mut buffer = Vec::new();
        while pos < bytes.len() {
            let (event, consumed) = decode_event(&bytes[pos..]).unwrap();
            pos += consumed;
            pushed += 1;
            buffer.push(event);
            if pushed == 5 {
                batched.push_batch(&buffer, &pool);
                buffer.clear();
                batched.stage_engine(engine_for("never-matches"));
            }
        }
        batched.push_batch(&buffer, &pool);
        assert_eq!(svc.merged_verdicts(), batched.merged_verdicts());
        assert_eq!(svc.swap_history(), batched.swap_history());
    }

    #[test]
    fn report_merges_commutatively_across_pool_widths() {
        let urls = UrlLabeler::new();
        let engine = engine_for("somoto");
        let stream = events(60);
        let mut svc = StreamService::new(
            ServiceConfig::new(8, 100),
            ReportingPolicy::new(20),
            &urls,
            engine,
        );
        for raw in &stream {
            svc.push(raw);
        }
        let seq = svc.report(&Pool::sequential());
        let wide = svc.report(&Pool::new(4));
        assert_eq!(seq, wide);
        assert_eq!(seq.shards, 8);
        assert_eq!(seq.events_routed, 60);
        assert_eq!(seq.files_classified, 7);
        let total: u64 =
            seq.class_verdicts.iter().map(|(_, n)| n).sum::<u64>() + seq.rejected + seq.no_match;
        assert_eq!(total, seq.files_classified);
    }
}
