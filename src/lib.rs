//! Workspace façade crate: re-exports the whole `downlake` reproduction of
//! *Exploring the Long Tail of (Malicious) Software Downloads* (DSN 2017)
//! so root-level `examples/` and `tests/` can use one import path.

pub use downlake as core;
pub use downlake_analysis as analysis;
pub use downlake_avtype as avtype;
pub use downlake_features as features;
pub use downlake_groundtruth as groundtruth;
pub use downlake_lake as lake;
pub use downlake_obs as obs;
pub use downlake_rulelearn as rulelearn;
pub use downlake_stream as stream;
pub use downlake_sweep as sweep;
pub use downlake_synth as synth;
pub use downlake_telemetry as telemetry;
pub use downlake_types as types;
