//! `downlake` — the command-line front door to the reproduction.
//!
//! ```text
//! downlake [--scale tiny|small|default|large|paper|<fraction>] [--seed N] [--threads N] [--lake DIR] [--obs PATH] <experiment>...
//! downlake sweep --manifest PATH [--threads N] [--lake DIR] [--obs PATH]
//! downlake --list
//! ```
//!
//! `--threads 0` uses one worker per available core; the thread count
//! only changes wall-clock time, never a byte of output.
//!
//! `--lake DIR` roots the seed-addressed event lake: the raw event
//! stream is spilled to (and on later runs read back from)
//! disk-resident segments under `DIR/<world-hash>/`, so repeated runs —
//! and sweep permutations sharing a seed — skip event generation
//! entirely. Output bytes are identical with and without the flag.
//!
//! `--obs PATH` writes a JSON run manifest after the experiments finish:
//! every deterministic counter/gauge/histogram the pipeline (and, for
//! `stream`, the live replay) recorded about itself, plus a clearly
//! quarantined `timing` section. Everything outside `timing` is
//! byte-identical at any `--threads` setting.
//!
//! Experiments are the paper's artifact ids (`table1` … `table17`,
//! `fig1` … `fig6`, `packers`, `evasion`, `reach`, `rules`, `all`),
//! plus `run` (build the study and print headline counts only — the
//! cheapest way to produce a manifest) and `stream` (live replay).
//!
//! `sweep` stands alone: it reads a JSON sweep manifest (σ values, τ
//! thresholds, seeds, window lengths) via `--manifest`, fans the runs
//! out over the pool, and prints the (σ, τ) sensitivity surface;
//! `--obs` then writes the sweep's own run manifest, byte-identical
//! outside `timing` at every `--threads` setting.

use downlake_repro::core::{experiments, live, report, Study, StudyConfig};
use downlake_repro::obs::{RealClock, Registry};
use downlake_repro::sweep::{run_sweep, run_sweep_with_lake, SweepManifest};
use downlake_repro::synth::Scale;

const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "run",
        "build the study and print headline counts (pairs with --obs)",
    ),
    ("table1", "monthly collection summary"),
    ("fig1", "top-25 malware families"),
    ("table2", "malicious type breakdown"),
    ("fig2", "file prevalence distributions"),
    ("table3", "domains with highest download popularity"),
    ("table4", "files served per domain"),
    ("fig3", "Alexa ranks of benign vs malicious hosting domains"),
    ("table5", "popular domains per malicious type"),
    ("table6", "signing rates per class"),
    ("table7", "signer overlap per type"),
    ("table8", "top signers per type"),
    ("table9", "exclusive benign/malicious signers"),
    ("fig4", "shared-signer scatter"),
    ("packers", "packer usage overlap"),
    ("table10", "download behavior of benign process categories"),
    ("table11", "download behavior per browser"),
    ("table12", "download behavior of malicious process types"),
    ("fig5", "escalation time-delta CDFs"),
    ("fig6", "Alexa ranks of unknown-hosting domains"),
    ("table13", "top domains serving unknowns"),
    ("table14", "process categories downloading unknowns"),
    ("table15", "the eight classifier features"),
    ("rules", "rule experiments (Tables XVI + XVII)"),
    ("evasion", "§VII evasion strategies vs the rules"),
    ("reach", "§VII expanded-labeling population reach"),
    (
        "stream",
        "live replay: online classification, checked against batch",
    ),
    (
        "sweep",
        "sensitivity sweep over a --manifest: the (σ, τ) surface",
    ),
    ("all", "the full report (everything above)"),
];

fn parse_scale(arg: &str) -> Option<Scale> {
    match arg {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "default" => Some(Scale::Default),
        "large" => Some(Scale::Large),
        "paper" => Some(Scale::Paper),
        _ => arg
            .parse::<f64>()
            .ok()
            .filter(|f| *f > 0.0)
            .map(Scale::Fraction),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: downlake [--scale SCALE] [--seed N] [--threads N] [--lake DIR] [--obs PATH] <experiment>..."
    );
    eprintln!("       downlake sweep --manifest PATH [--threads N] [--lake DIR] [--obs PATH]");
    eprintln!("       downlake --list");
    eprintln!("       --threads 0 = one worker per core (output is identical at any count)");
    eprintln!("       --lake DIR  = cache the event stream as on-disk segments under DIR");
    eprintln!("       --obs PATH  = write a JSON run manifest (metrics + quarantined timings)");
    eprintln!("       --manifest PATH = JSON sweep manifest (σ/τ/seed/month axes) for `sweep`");
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::Small;
    let mut seed = 42u64;
    let mut threads: Option<usize> = None;
    let mut obs_path: Option<std::path::PathBuf> = None;
    let mut manifest_path: Option<std::path::PathBuf> = None;
    let mut lake_root: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for (id, what) in EXPERIMENTS {
                    println!("{id:<10} {what}");
                }
                return;
            }
            "--scale" => {
                let Some(value) = args.next().and_then(|v| parse_scale(&v)) else {
                    usage()
                };
                scale = value;
            }
            "--seed" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                seed = value;
            }
            "--threads" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                threads = Some(value);
            }
            "--obs" => {
                let Some(value) = args.next() else { usage() };
                obs_path = Some(std::path::PathBuf::from(value));
            }
            "--manifest" => {
                let Some(value) = args.next() else { usage() };
                manifest_path = Some(std::path::PathBuf::from(value));
            }
            "--lake" => {
                let Some(value) = args.next() else { usage() };
                lake_root = Some(std::path::PathBuf::from(value));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    for id in &wanted {
        if !EXPERIMENTS.iter().any(|(known, _)| known == id) {
            eprintln!("unknown experiment {id:?}; try --list");
            std::process::exit(2);
        }
    }

    // `sweep` builds its own studies from the manifest's axes, so it
    // dispatches before (and instead of) the single-study path.
    if wanted.iter().any(|id| id == "sweep") {
        if wanted.len() != 1 {
            eprintln!("`sweep` runs alone; drop the other experiment ids");
            std::process::exit(2);
        }
        run_sweep_command(manifest_path, threads, lake_root, obs_path);
        return;
    }
    if manifest_path.is_some() {
        eprintln!("--manifest only applies to the `sweep` experiment");
        std::process::exit(2);
    }

    let threads = threads.unwrap_or(1);
    eprintln!("running study (scale {scale:?}, seed {seed}, threads {threads})…");
    let mut config = StudyConfig::new(seed)
        .with_scale(scale)
        .with_threads(threads);
    if let Some(root) = lake_root {
        eprintln!("event lake rooted at {}", root.display());
        config = config.with_lake(root);
    }
    let study = Study::run(&config);

    // Live-replay observations land here; absorbed into the manifest
    // alongside the study's own if --obs was given. Observation is
    // transparent (pinned per crate), so running it unconditionally
    // cannot change any experiment's output.
    let live_registry = Registry::new();
    let wall_clock = RealClock::new();

    for id in wanted {
        match id.as_str() {
            "run" => {
                let stats = study.dataset().stats();
                println!("== Study ==");
                println!("events     {}", stats.events);
                println!("machines   {}", stats.machines);
                println!("files      {}", stats.files);
                println!("processes  {}", stats.processes);
                println!("urls       {}", stats.urls);
                println!("domains    {}", stats.domains);
                println!("suppressed {}", study.suppression().total());
            }
            "table1" => println!("{}", experiments::table1(&study)),
            "fig1" => println!("{}", experiments::fig1(&study)),
            "table2" => println!("{}", experiments::table2(&study)),
            "fig2" => println!("{}", experiments::fig2(&study)),
            "table3" => println!("{}", experiments::table3(&study)),
            "table4" => println!("{}", experiments::table4(&study)),
            "fig3" => println!("{}", experiments::fig3(&study)),
            "table5" => println!("{}", experiments::table5(&study)),
            "table6" => println!("{}", experiments::table6(&study)),
            "table7" => println!("{}", experiments::table7(&study)),
            "table8" => println!("{}", experiments::table8(&study)),
            "table9" => println!("{}", experiments::table9(&study)),
            "fig4" => println!("{}", experiments::fig4(&study)),
            "packers" => println!("{}", experiments::packers(&study)),
            "table10" => println!("{}", experiments::table10(&study)),
            "table11" => println!("{}", experiments::table11(&study)),
            "table12" => println!("{}", experiments::table12(&study)),
            "fig5" => {
                println!("{}", experiments::fig5(&study));
                println!("{}", experiments::fig5_quantiles(&study));
            }
            "fig6" => println!("{}", experiments::fig6(&study)),
            "table13" => println!("{}", experiments::table13(&study)),
            "table14" => println!("{}", experiments::table14(&study)),
            "table15" => println!("{}", experiments::table15()),
            "rules" => {
                let outcome = experiments::rule_experiments(&study);
                println!("{}", experiments::render_table16(&outcome));
                println!("{}", experiments::render_table17(&outcome));
            }
            "evasion" => println!("{}", experiments::evasion_table(&study)),
            "reach" => println!("{}", experiments::expansion_reach_table(&study)),
            "stream" => {
                let config = live::LiveConfig::default();
                eprintln!(
                    "staging live replay (train {}, τ 0.1%)…",
                    config.train_month
                );
                let prep = live::prepare_observed(&study, config, &live_registry, &wall_clock);
                match prep.replay_observed(threads, &live_registry, &wall_clock) {
                    Ok(outcome) => {
                        println!("== Live replay ({threads} thread(s)) ==");
                        println!("{}", live::render_summary(&prep, &outcome));
                        if !outcome.matches_batch {
                            eprintln!("stream replay diverged from the batch pipeline");
                            std::process::exit(1);
                        }
                    }
                    Err(err) => {
                        eprintln!("stream replay failed: {err}");
                        std::process::exit(1);
                    }
                }
            }
            "all" => println!("{}", report::full_report(&study)),
            _ => unreachable!("validated above"),
        }
    }

    if let Some(path) = obs_path {
        let mut manifest = study.manifest();
        manifest.absorb(&live_registry.snapshot());
        if let Err(err) = manifest.write(&path) {
            eprintln!("failed to write manifest {}: {err}", path.display());
            std::process::exit(1);
        }
        eprintln!("manifest written to {}", path.display());
    }
}

/// The `sweep` subcommand: parse the manifest, fan out, print the
/// surface, optionally write the sweep's run manifest.
fn run_sweep_command(
    manifest_path: Option<std::path::PathBuf>,
    threads: Option<usize>,
    lake_root: Option<std::path::PathBuf>,
    obs_path: Option<std::path::PathBuf>,
) {
    let Some(path) = manifest_path else {
        eprintln!("`sweep` requires --manifest PATH");
        std::process::exit(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(err) => {
            eprintln!("failed to read manifest {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    let mut manifest = match SweepManifest::parse(&src) {
        Ok(manifest) => manifest,
        Err(err) => {
            eprintln!("bad sweep manifest {}: {err}", path.display());
            std::process::exit(2);
        }
    };
    // --threads overrides the manifest's own fan-out width (both are
    // timing plane: the surface is identical either way).
    if let Some(threads) = threads {
        manifest.threads = threads;
    }
    eprintln!(
        "running sweep {:?} ({} runs over {} cells, scale {:?}, threads {})…",
        manifest.name,
        manifest.run_count(),
        manifest.sigmas.len() * manifest.taus.len(),
        manifest.scale,
        manifest.threads,
    );
    let report = match &lake_root {
        Some(root) => {
            eprintln!("event lake rooted at {}", root.display());
            run_sweep_with_lake(&manifest, &RealClock::new(), root)
        }
        None => run_sweep(&manifest, &RealClock::new()),
    };
    println!("{}", report.table());
    if let Some(obs) = obs_path {
        if let Err(err) = report.manifest(&manifest).write(&obs) {
            eprintln!("failed to write manifest {}: {err}", obs.display());
            std::process::exit(1);
        }
        eprintln!("manifest written to {}", obs.display());
    }
}
