//! `downlake` — the command-line front door to the reproduction.
//!
//! ```text
//! downlake [--scale tiny|small|default|large|paper|<fraction>] [--seed N] [--threads N] [--obs PATH] <experiment>...
//! downlake --list
//! ```
//!
//! `--threads 0` uses one worker per available core; the thread count
//! only changes wall-clock time, never a byte of output.
//!
//! `--obs PATH` writes a JSON run manifest after the experiments finish:
//! every deterministic counter/gauge/histogram the pipeline (and, for
//! `stream`, the live replay) recorded about itself, plus a clearly
//! quarantined `timing` section. Everything outside `timing` is
//! byte-identical at any `--threads` setting.
//!
//! Experiments are the paper's artifact ids (`table1` … `table17`,
//! `fig1` … `fig6`, `packers`, `evasion`, `reach`, `rules`, `all`),
//! plus `run` (build the study and print headline counts only — the
//! cheapest way to produce a manifest) and `stream` (live replay).

use downlake_repro::core::{experiments, live, report, Study, StudyConfig};
use downlake_repro::obs::{RealClock, Registry};
use downlake_repro::synth::Scale;

const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "run",
        "build the study and print headline counts (pairs with --obs)",
    ),
    ("table1", "monthly collection summary"),
    ("fig1", "top-25 malware families"),
    ("table2", "malicious type breakdown"),
    ("fig2", "file prevalence distributions"),
    ("table3", "domains with highest download popularity"),
    ("table4", "files served per domain"),
    ("fig3", "Alexa ranks of benign vs malicious hosting domains"),
    ("table5", "popular domains per malicious type"),
    ("table6", "signing rates per class"),
    ("table7", "signer overlap per type"),
    ("table8", "top signers per type"),
    ("table9", "exclusive benign/malicious signers"),
    ("fig4", "shared-signer scatter"),
    ("packers", "packer usage overlap"),
    ("table10", "download behavior of benign process categories"),
    ("table11", "download behavior per browser"),
    ("table12", "download behavior of malicious process types"),
    ("fig5", "escalation time-delta CDFs"),
    ("fig6", "Alexa ranks of unknown-hosting domains"),
    ("table13", "top domains serving unknowns"),
    ("table14", "process categories downloading unknowns"),
    ("table15", "the eight classifier features"),
    ("rules", "rule experiments (Tables XVI + XVII)"),
    ("evasion", "§VII evasion strategies vs the rules"),
    ("reach", "§VII expanded-labeling population reach"),
    (
        "stream",
        "live replay: online classification, checked against batch",
    ),
    ("all", "the full report (everything above)"),
];

fn parse_scale(arg: &str) -> Option<Scale> {
    match arg {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "default" => Some(Scale::Default),
        "large" => Some(Scale::Large),
        "paper" => Some(Scale::Paper),
        _ => arg
            .parse::<f64>()
            .ok()
            .filter(|f| *f > 0.0)
            .map(Scale::Fraction),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: downlake [--scale SCALE] [--seed N] [--threads N] [--obs PATH] <experiment>..."
    );
    eprintln!("       downlake --list");
    eprintln!("       --threads 0 = one worker per core (output is identical at any count)");
    eprintln!("       --obs PATH  = write a JSON run manifest (metrics + quarantined timings)");
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::Small;
    let mut seed = 42u64;
    let mut threads = 1usize;
    let mut obs_path: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for (id, what) in EXPERIMENTS {
                    println!("{id:<10} {what}");
                }
                return;
            }
            "--scale" => {
                let Some(value) = args.next().and_then(|v| parse_scale(&v)) else {
                    usage()
                };
                scale = value;
            }
            "--seed" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                seed = value;
            }
            "--threads" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                threads = value;
            }
            "--obs" => {
                let Some(value) = args.next() else { usage() };
                obs_path = Some(std::path::PathBuf::from(value));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    for id in &wanted {
        if !EXPERIMENTS.iter().any(|(known, _)| known == id) {
            eprintln!("unknown experiment {id:?}; try --list");
            std::process::exit(2);
        }
    }

    eprintln!("running study (scale {scale:?}, seed {seed}, threads {threads})…");
    let study = Study::run(
        &StudyConfig::new(seed)
            .with_scale(scale)
            .with_threads(threads),
    );

    // Live-replay observations land here; absorbed into the manifest
    // alongside the study's own if --obs was given. Observation is
    // transparent (pinned per crate), so running it unconditionally
    // cannot change any experiment's output.
    let live_registry = Registry::new();
    let wall_clock = RealClock::new();

    for id in wanted {
        match id.as_str() {
            "run" => {
                let stats = study.dataset().stats();
                println!("== Study ==");
                println!("events     {}", stats.events);
                println!("machines   {}", stats.machines);
                println!("files      {}", stats.files);
                println!("processes  {}", stats.processes);
                println!("urls       {}", stats.urls);
                println!("domains    {}", stats.domains);
                println!("suppressed {}", study.suppression().total());
            }
            "table1" => println!("{}", experiments::table1(&study)),
            "fig1" => println!("{}", experiments::fig1(&study)),
            "table2" => println!("{}", experiments::table2(&study)),
            "fig2" => println!("{}", experiments::fig2(&study)),
            "table3" => println!("{}", experiments::table3(&study)),
            "table4" => println!("{}", experiments::table4(&study)),
            "fig3" => println!("{}", experiments::fig3(&study)),
            "table5" => println!("{}", experiments::table5(&study)),
            "table6" => println!("{}", experiments::table6(&study)),
            "table7" => println!("{}", experiments::table7(&study)),
            "table8" => println!("{}", experiments::table8(&study)),
            "table9" => println!("{}", experiments::table9(&study)),
            "fig4" => println!("{}", experiments::fig4(&study)),
            "packers" => println!("{}", experiments::packers(&study)),
            "table10" => println!("{}", experiments::table10(&study)),
            "table11" => println!("{}", experiments::table11(&study)),
            "table12" => println!("{}", experiments::table12(&study)),
            "fig5" => {
                println!("{}", experiments::fig5(&study));
                println!("{}", experiments::fig5_quantiles(&study));
            }
            "fig6" => println!("{}", experiments::fig6(&study)),
            "table13" => println!("{}", experiments::table13(&study)),
            "table14" => println!("{}", experiments::table14(&study)),
            "table15" => println!("{}", experiments::table15()),
            "rules" => {
                let outcome = experiments::rule_experiments(&study);
                println!("{}", experiments::render_table16(&outcome));
                println!("{}", experiments::render_table17(&outcome));
            }
            "evasion" => println!("{}", experiments::evasion_table(&study)),
            "reach" => println!("{}", experiments::expansion_reach_table(&study)),
            "stream" => {
                let config = live::LiveConfig::default();
                eprintln!(
                    "staging live replay (train {}, τ 0.1%)…",
                    config.train_month
                );
                let prep = live::prepare_observed(&study, config, &live_registry, &wall_clock);
                match prep.replay_observed(threads, &live_registry, &wall_clock) {
                    Ok(outcome) => {
                        println!("== Live replay ({threads} thread(s)) ==");
                        println!("{}", live::render_summary(&prep, &outcome));
                        if !outcome.matches_batch {
                            eprintln!("stream replay diverged from the batch pipeline");
                            std::process::exit(1);
                        }
                    }
                    Err(err) => {
                        eprintln!("stream replay failed: {err}");
                        std::process::exit(1);
                    }
                }
            }
            "all" => println!("{}", report::full_report(&study)),
            _ => unreachable!("validated above"),
        }
    }

    if let Some(path) = obs_path {
        let mut manifest = study.manifest();
        manifest.absorb(&live_registry.snapshot());
        if let Err(err) = manifest.write(&path) {
            eprintln!("failed to write manifest {}: {err}", path.display());
            std::process::exit(1);
        }
        eprintln!("manifest written to {}", path.display());
    }
}
