//! `downlake` — the command-line front door to the reproduction.
//!
//! ```text
//! downlake [--scale tiny|small|default|large|paper|<fraction>] [--seed N] [--threads N] [--lake DIR] [--obs PATH] <experiment>...
//! downlake sweep --manifest PATH [--threads N] [--lake DIR] [--obs PATH]
//! downlake serve [--shards N] [--epoch-events N] [--swap-month MON] [--snapshot FILE ...]
//! downlake --list
//! ```
//!
//! `--threads 0` uses one worker per available core; the thread count
//! only changes wall-clock time, never a byte of output.
//!
//! `--lake DIR` roots the seed-addressed event lake: the raw event
//! stream is spilled to (and on later runs read back from)
//! disk-resident segments under `DIR/<world-hash>/`, so repeated runs —
//! and sweep permutations sharing a seed — skip event generation
//! entirely. Output bytes are identical with and without the flag.
//!
//! `--obs PATH` writes a JSON run manifest after the experiments finish:
//! every deterministic counter/gauge/histogram the pipeline (and, for
//! `stream`, the live replay) recorded about itself, plus a clearly
//! quarantined `timing` section. Everything outside `timing` is
//! byte-identical at any `--threads` setting.
//!
//! Experiments are the paper's artifact ids (`table1` … `table17`,
//! `fig1` … `fig6`, `packers`, `evasion`, `reach`, `rules`, `all`),
//! plus `run` (build the study and print headline counts only — the
//! cheapest way to produce a manifest) and `stream` (live replay).
//!
//! `sweep` stands alone: it reads a JSON sweep manifest (σ values, τ
//! thresholds, seeds, window lengths) via `--manifest`, fans the runs
//! out over the pool, and prints the (σ, τ) sensitivity surface;
//! `--obs` then writes the sweep's own run manifest, byte-identical
//! outside `timing` at every `--threads` setting.
//!
//! `serve` stands alone too: it runs the machine-sharded stream service
//! (`downlake::serve`) over the study's wire stream — `--shards` picks
//! the routing width, `--swap-month` retrains a second ruleset and
//! hot-swaps it at the `--epoch-events` boundary, and `--snapshot FILE`
//! drives the crash drill: alone it snapshots mid-stream, resumes from
//! the file, and verifies the result byte-identical to an uninterrupted
//! run; with `--kill-after-snapshot` it stops after writing the file
//! (simulating the crash), and with `--resume` it restores and replays
//! only the remainder, then verifies. See `docs/SERVICE.md` for the
//! operator runbook.

use downlake_repro::core::{experiments, live, report, serve, Study, StudyConfig};
use downlake_repro::obs::{RealClock, Registry};
use downlake_repro::sweep::{run_sweep, run_sweep_with_lake, SweepManifest};
use downlake_repro::synth::Scale;
use downlake_repro::types::Month;

const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "run",
        "build the study and print headline counts (pairs with --obs)",
    ),
    ("table1", "monthly collection summary"),
    ("fig1", "top-25 malware families"),
    ("table2", "malicious type breakdown"),
    ("fig2", "file prevalence distributions"),
    ("table3", "domains with highest download popularity"),
    ("table4", "files served per domain"),
    ("fig3", "Alexa ranks of benign vs malicious hosting domains"),
    ("table5", "popular domains per malicious type"),
    ("table6", "signing rates per class"),
    ("table7", "signer overlap per type"),
    ("table8", "top signers per type"),
    ("table9", "exclusive benign/malicious signers"),
    ("fig4", "shared-signer scatter"),
    ("packers", "packer usage overlap"),
    ("table10", "download behavior of benign process categories"),
    ("table11", "download behavior per browser"),
    ("table12", "download behavior of malicious process types"),
    ("fig5", "escalation time-delta CDFs"),
    ("fig6", "Alexa ranks of unknown-hosting domains"),
    ("table13", "top domains serving unknowns"),
    ("table14", "process categories downloading unknowns"),
    ("table15", "the eight classifier features"),
    ("rules", "rule experiments (Tables XVI + XVII)"),
    ("evasion", "§VII evasion strategies vs the rules"),
    ("reach", "§VII expanded-labeling population reach"),
    (
        "stream",
        "live replay: online classification, checked against batch",
    ),
    (
        "sweep",
        "sensitivity sweep over a --manifest: the (σ, τ) surface",
    ),
    (
        "serve",
        "sharded stream service: snapshot/resume + epoch-based rule hot-swap",
    ),
    ("all", "the full report (everything above)"),
];

fn parse_scale(arg: &str) -> Option<Scale> {
    match arg {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "default" => Some(Scale::Default),
        "large" => Some(Scale::Large),
        "paper" => Some(Scale::Paper),
        _ => arg
            .parse::<f64>()
            .ok()
            .filter(|f| *f > 0.0)
            .map(Scale::Fraction),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: downlake [--scale SCALE] [--seed N] [--threads N] [--lake DIR] [--obs PATH] <experiment>..."
    );
    eprintln!("       downlake sweep --manifest PATH [--threads N] [--lake DIR] [--obs PATH]");
    eprintln!(
        "       downlake serve [--shards N] [--threads N] [--epoch-events N] [--swap-month MON]"
    );
    eprintln!(
        "                      [--snapshot FILE [--snapshot-at N] [--kill-after-snapshot | --resume]]"
    );
    eprintln!("       downlake --list");
    eprintln!("       --threads 0 = one worker per core (output is identical at any count)");
    eprintln!("       --lake DIR  = cache the event stream as on-disk segments under DIR");
    eprintln!("       --obs PATH  = write a JSON run manifest (metrics + quarantined timings)");
    eprintln!("       --manifest PATH = JSON sweep manifest (σ/τ/seed/month axes) for `sweep`");
    eprintln!(
        "       serve: --shards N (default 8), --epoch-events N = hot-swap epoch (default 4096),"
    );
    eprintln!(
        "              --swap-month Jan..Jul = retrain on that month and hot-swap at the epoch,"
    );
    eprintln!(
        "              --snapshot FILE = write (and verify a resume of) a snapshot mid-stream,"
    );
    eprintln!("              --snapshot-at N = snapshot after N events (default: the midpoint),");
    eprintln!("              --kill-after-snapshot = stop right after writing the snapshot,");
    eprintln!("              --resume = restore FILE and replay only the remainder");
    std::process::exit(2);
}

fn parse_month(arg: &str) -> Option<Month> {
    Month::ALL
        .into_iter()
        .find(|m| arg.eq_ignore_ascii_case(m.short_name()))
}

/// Flags consumed only by the `serve` subcommand.
#[derive(Default)]
struct ServeFlags {
    shards: Option<usize>,
    epoch_events: Option<u64>,
    swap_month: Option<Month>,
    snapshot: Option<std::path::PathBuf>,
    snapshot_at: Option<u64>,
    kill_after_snapshot: bool,
    resume: bool,
}

impl ServeFlags {
    fn any_set(&self) -> bool {
        self.shards.is_some()
            || self.epoch_events.is_some()
            || self.swap_month.is_some()
            || self.snapshot.is_some()
            || self.snapshot_at.is_some()
            || self.kill_after_snapshot
            || self.resume
    }
}

fn main() {
    let mut scale = Scale::Small;
    let mut seed = 42u64;
    let mut threads: Option<usize> = None;
    let mut obs_path: Option<std::path::PathBuf> = None;
    let mut manifest_path: Option<std::path::PathBuf> = None;
    let mut lake_root: Option<std::path::PathBuf> = None;
    let mut serve_flags = ServeFlags::default();
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for (id, what) in EXPERIMENTS {
                    println!("{id:<10} {what}");
                }
                return;
            }
            "--scale" => {
                let Some(value) = args.next().and_then(|v| parse_scale(&v)) else {
                    usage()
                };
                scale = value;
            }
            "--seed" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                seed = value;
            }
            "--threads" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                threads = Some(value);
            }
            "--obs" => {
                let Some(value) = args.next() else { usage() };
                obs_path = Some(std::path::PathBuf::from(value));
            }
            "--manifest" => {
                let Some(value) = args.next() else { usage() };
                manifest_path = Some(std::path::PathBuf::from(value));
            }
            "--lake" => {
                let Some(value) = args.next() else { usage() };
                lake_root = Some(std::path::PathBuf::from(value));
            }
            "--shards" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                serve_flags.shards = Some(value);
            }
            "--epoch-events" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                serve_flags.epoch_events = Some(value);
            }
            "--swap-month" => {
                let Some(value) = args.next().and_then(|v| parse_month(&v)) else {
                    eprintln!("--swap-month takes Jan, Feb, … Jul");
                    usage()
                };
                serve_flags.swap_month = Some(value);
            }
            "--snapshot" => {
                let Some(value) = args.next() else { usage() };
                serve_flags.snapshot = Some(std::path::PathBuf::from(value));
            }
            "--snapshot-at" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                serve_flags.snapshot_at = Some(value);
            }
            "--kill-after-snapshot" => serve_flags.kill_after_snapshot = true,
            "--resume" => serve_flags.resume = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    for id in &wanted {
        if !EXPERIMENTS.iter().any(|(known, _)| known == id) {
            eprintln!("unknown experiment {id:?}; try --list");
            std::process::exit(2);
        }
    }

    // `sweep` builds its own studies from the manifest's axes, so it
    // dispatches before (and instead of) the single-study path.
    if wanted.iter().any(|id| id == "sweep") {
        if wanted.len() != 1 {
            eprintln!("`sweep` runs alone; drop the other experiment ids");
            std::process::exit(2);
        }
        run_sweep_command(manifest_path, threads, lake_root, obs_path);
        return;
    }
    if manifest_path.is_some() {
        eprintln!("--manifest only applies to the `sweep` experiment");
        std::process::exit(2);
    }

    // `serve` owns its own flags and run shapes (grid, kill, resume), so
    // it dispatches standalone too.
    if wanted.iter().any(|id| id == "serve") {
        if wanted.len() != 1 {
            eprintln!("`serve` runs alone; drop the other experiment ids");
            std::process::exit(2);
        }
        run_serve_command(scale, seed, threads, lake_root, obs_path, serve_flags);
        return;
    }
    if serve_flags.any_set() {
        eprintln!(
            "--shards/--epoch-events/--swap-month/--snapshot/--snapshot-at/\
             --kill-after-snapshot/--resume only apply to the `serve` experiment"
        );
        std::process::exit(2);
    }

    let threads = threads.unwrap_or(1);
    eprintln!("running study (scale {scale:?}, seed {seed}, threads {threads})…");
    let mut config = StudyConfig::new(seed)
        .with_scale(scale)
        .with_threads(threads);
    if let Some(root) = lake_root {
        eprintln!("event lake rooted at {}", root.display());
        config = config.with_lake(root);
    }
    let study = Study::run(&config);

    // Live-replay observations land here; absorbed into the manifest
    // alongside the study's own if --obs was given. Observation is
    // transparent (pinned per crate), so running it unconditionally
    // cannot change any experiment's output.
    let live_registry = Registry::new();
    let wall_clock = RealClock::new();

    for id in wanted {
        match id.as_str() {
            "run" => {
                let stats = study.dataset().stats();
                println!("== Study ==");
                println!("events     {}", stats.events);
                println!("machines   {}", stats.machines);
                println!("files      {}", stats.files);
                println!("processes  {}", stats.processes);
                println!("urls       {}", stats.urls);
                println!("domains    {}", stats.domains);
                println!("suppressed {}", study.suppression().total());
            }
            "table1" => println!("{}", experiments::table1(&study)),
            "fig1" => println!("{}", experiments::fig1(&study)),
            "table2" => println!("{}", experiments::table2(&study)),
            "fig2" => println!("{}", experiments::fig2(&study)),
            "table3" => println!("{}", experiments::table3(&study)),
            "table4" => println!("{}", experiments::table4(&study)),
            "fig3" => println!("{}", experiments::fig3(&study)),
            "table5" => println!("{}", experiments::table5(&study)),
            "table6" => println!("{}", experiments::table6(&study)),
            "table7" => println!("{}", experiments::table7(&study)),
            "table8" => println!("{}", experiments::table8(&study)),
            "table9" => println!("{}", experiments::table9(&study)),
            "fig4" => println!("{}", experiments::fig4(&study)),
            "packers" => println!("{}", experiments::packers(&study)),
            "table10" => println!("{}", experiments::table10(&study)),
            "table11" => println!("{}", experiments::table11(&study)),
            "table12" => println!("{}", experiments::table12(&study)),
            "fig5" => {
                println!("{}", experiments::fig5(&study));
                println!("{}", experiments::fig5_quantiles(&study));
            }
            "fig6" => println!("{}", experiments::fig6(&study)),
            "table13" => println!("{}", experiments::table13(&study)),
            "table14" => println!("{}", experiments::table14(&study)),
            "table15" => println!("{}", experiments::table15()),
            "rules" => {
                let outcome = experiments::rule_experiments(&study);
                println!("{}", experiments::render_table16(&outcome));
                println!("{}", experiments::render_table17(&outcome));
            }
            "evasion" => println!("{}", experiments::evasion_table(&study)),
            "reach" => println!("{}", experiments::expansion_reach_table(&study)),
            "stream" => {
                let config = live::LiveConfig::default();
                eprintln!(
                    "staging live replay (train {}, τ 0.1%)…",
                    config.train_month
                );
                let prep = live::prepare_observed(&study, config, &live_registry, &wall_clock);
                match prep.replay_observed(threads, &live_registry, &wall_clock) {
                    Ok(outcome) => {
                        println!("== Live replay ({threads} thread(s)) ==");
                        println!("{}", live::render_summary(&prep, &outcome));
                        if !outcome.matches_batch {
                            eprintln!("stream replay diverged from the batch pipeline");
                            std::process::exit(1);
                        }
                    }
                    Err(err) => {
                        eprintln!("stream replay failed: {err}");
                        std::process::exit(1);
                    }
                }
            }
            "all" => println!("{}", report::full_report(&study)),
            _ => unreachable!("validated above"),
        }
    }

    if let Some(path) = obs_path {
        let mut manifest = study.manifest();
        manifest.absorb(&live_registry.snapshot());
        if let Err(err) = manifest.write(&path) {
            eprintln!("failed to write manifest {}: {err}", path.display());
            std::process::exit(1);
        }
        eprintln!("manifest written to {}", path.display());
    }
}

/// The `serve` subcommand: build the study, stage the service prep
/// (optionally retraining a hot-swap engine on `--swap-month`), then
/// run the requested shape — a plain run, a full snapshot/kill/resume
/// drill, or one half of it.
fn run_serve_command(
    scale: Scale,
    seed: u64,
    threads: Option<usize>,
    lake_root: Option<std::path::PathBuf>,
    obs_path: Option<std::path::PathBuf>,
    flags: ServeFlags,
) {
    if flags.resume && flags.kill_after_snapshot {
        eprintln!("--resume and --kill-after-snapshot are mutually exclusive");
        std::process::exit(2);
    }
    if flags.snapshot.is_none()
        && (flags.resume || flags.kill_after_snapshot || flags.snapshot_at.is_some())
    {
        eprintln!("--resume/--kill-after-snapshot/--snapshot-at require --snapshot FILE");
        std::process::exit(2);
    }
    let threads = threads.unwrap_or(1);
    let shards = flags.shards.unwrap_or(8);
    eprintln!("running study (scale {scale:?}, seed {seed}, threads {threads})…");
    let mut config = StudyConfig::new(seed)
        .with_scale(scale)
        .with_threads(threads);
    if let Some(root) = lake_root {
        eprintln!("event lake rooted at {}", root.display());
        config = config.with_lake(root);
    }
    let study = Study::run(&config);

    let options = serve::ServeOptions {
        epoch_len: flags.epoch_events.unwrap_or(4096),
        swap_month: flags.swap_month,
        ..serve::ServeOptions::default()
    };
    match options.swap_month {
        Some(month) => eprintln!(
            "staging service (train {}, hot-swap retrain {month} at epoch {})…",
            options.train_month, options.epoch_len
        ),
        None => eprintln!("staging service (train {})…", options.train_month),
    }
    let prep = serve::stage(&study, options);
    eprintln!(
        "  staged: {} events, {} rules (generation 0), {} shard(s)",
        prep.events_total(),
        prep.live().engine().rule_count(),
        shards
    );

    let registry = Registry::new();
    let fail = |err: &dyn std::fmt::Display| -> ! {
        eprintln!("serve failed: {err}");
        std::process::exit(1);
    };
    let run = match &flags.snapshot {
        Some(path) if flags.kill_after_snapshot => {
            let run = prep
                .run_to_snapshot(threads, shards, path, flags.snapshot_at)
                .unwrap_or_else(|e| fail(&e));
            eprintln!(
                "snapshot written to {} at event {}; killed (resume with --resume)",
                path.display(),
                run.status.events_seen
            );
            run
        }
        Some(path) if flags.resume => {
            let run = prep
                .resume(threads, shards, path, &registry)
                .unwrap_or_else(|e| fail(&e));
            let how = ["warm", "cold", "corrupt"]
                .into_iter()
                .find(|kind| registry.counter(&format!("service.restore.{kind}")) == 1)
                .unwrap_or("warm");
            eprintln!("restored {} ({how})", path.display());
            verify_against_uninterrupted(&prep, threads, shards, &run);
            run
        }
        Some(path) => {
            // Full drill in one process: kill at the split point, then
            // resume from the file and verify against an unbroken run.
            let killed = prep
                .run_to_snapshot(threads, shards, path, flags.snapshot_at)
                .unwrap_or_else(|e| fail(&e));
            eprintln!(
                "snapshot written to {} at event {}",
                path.display(),
                killed.status.events_seen
            );
            let run = prep
                .resume(threads, shards, path, &registry)
                .unwrap_or_else(|e| fail(&e));
            verify_against_uninterrupted(&prep, threads, shards, &run);
            run
        }
        None => prep.run(threads, shards).unwrap_or_else(|e| fail(&e)),
    };

    println!("== Stream service ({threads} thread(s), {shards} shard(s)) ==");
    println!("{}", serve::render_summary(&run));

    if let Some(path) = obs_path {
        let mut manifest = study.manifest();
        manifest.absorb(&registry.snapshot());
        if let Err(err) = manifest.write(&path) {
            eprintln!("failed to write manifest {}: {err}", path.display());
            std::process::exit(1);
        }
        eprintln!("manifest written to {}", path.display());
    }
}

/// Replays the stream uninterrupted and checks the resumed run ended in
/// the identical logical state — the service's central invariant.
fn verify_against_uninterrupted(
    prep: &serve::ServePrep<'_>,
    threads: usize,
    shards: usize,
    run: &serve::ServeRun,
) {
    match prep.run(threads, shards) {
        Ok(reference) if run.same_state(&reference) => {
            eprintln!("resume verified: byte-identical to an uninterrupted run");
        }
        Ok(_) => {
            eprintln!("serve failed: resumed run DIVERGED from the uninterrupted run");
            std::process::exit(1);
        }
        Err(err) => {
            eprintln!("serve failed: {err}");
            std::process::exit(1);
        }
    }
}

/// The `sweep` subcommand: parse the manifest, fan out, print the
/// surface, optionally write the sweep's run manifest.
fn run_sweep_command(
    manifest_path: Option<std::path::PathBuf>,
    threads: Option<usize>,
    lake_root: Option<std::path::PathBuf>,
    obs_path: Option<std::path::PathBuf>,
) {
    let Some(path) = manifest_path else {
        eprintln!("`sweep` requires --manifest PATH");
        std::process::exit(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(err) => {
            eprintln!("failed to read manifest {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    let mut manifest = match SweepManifest::parse(&src) {
        Ok(manifest) => manifest,
        Err(err) => {
            eprintln!("bad sweep manifest {}: {err}", path.display());
            std::process::exit(2);
        }
    };
    // --threads overrides the manifest's own fan-out width (both are
    // timing plane: the surface is identical either way).
    if let Some(threads) = threads {
        manifest.threads = threads;
    }
    eprintln!(
        "running sweep {:?} ({} runs over {} cells, scale {:?}, threads {})…",
        manifest.name,
        manifest.run_count(),
        manifest.sigmas.len() * manifest.taus.len(),
        manifest.scale,
        manifest.threads,
    );
    let report = match &lake_root {
        Some(root) => {
            eprintln!("event lake rooted at {}", root.display());
            run_sweep_with_lake(&manifest, &RealClock::new(), root)
        }
        None => run_sweep(&manifest, &RealClock::new()),
    };
    println!("{}", report.table());
    if let Some(obs) = obs_path {
        if let Err(err) = report.manifest(&manifest).write(&obs) {
            eprintln!("failed to write manifest {}: {err}", obs.display());
            std::process::exit(1);
        }
        eprintln!("manifest written to {}", obs.display());
    }
}
