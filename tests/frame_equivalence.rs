//! Equivalence gate for the columnar [`AnalysisFrame`] refactor: at a
//! fixed seed, every analysis must produce *identical* output through the
//! dense-column frame path and through the pre-refactor per-event
//! hash-map path preserved in `downlake_analysis::legacy`.
//!
//! Where a result type has no `PartialEq` (ECDF reports), equality is
//! asserted on the `Debug` rendering, which exposes every field.

use downlake_repro::analysis::{legacy, AnalysisFrame};
use downlake_repro::core::Study;
use downlake_repro::types::{FileLabel, MalwareType};

mod common;

fn study() -> &'static Study {
    common::tiny_study()
}

fn frame(study: &Study) -> &AnalysisFrame {
    study.frame()
}

#[test]
fn study_frame_matches_label_view_frame() {
    // The frame the pipeline builds from raw ground truth must equal a
    // frame built through the LabelView shim, column by column.
    let s = study();
    let view = s.label_view();
    let rebuilt = AnalysisFrame::from_label_view(s.dataset(), &view);
    let built = frame(s);
    assert_eq!(built.file_labels(), rebuilt.file_labels());
    assert_eq!(built.file_types(), rebuilt.file_types());
    assert_eq!(built.file_prevalences(), rebuilt.file_prevalences());
    assert_eq!(built.process_labels(), rebuilt.process_labels());
    assert_eq!(built.process_types(), rebuilt.process_types());
    assert_eq!(built.process_categories(), rebuilt.process_categories());
    assert_eq!(built.event_files(), rebuilt.event_files());
    assert_eq!(built.event_file_labels(), rebuilt.event_file_labels());
    assert_eq!(built.event_e2lds(), rebuilt.event_e2lds());
    assert_eq!(built.event_months(), rebuilt.event_months());
    assert_eq!(built.url_e2lds(), rebuilt.url_e2lds());
    assert_eq!(built.event_count(), rebuilt.event_count());
    assert_eq!(built.machine_count(), rebuilt.machine_count());
    assert_eq!(built.e2ld_count(), rebuilt.e2ld_count());
}

#[test]
fn domains_match_legacy() {
    let s = study();
    let view = s.label_view();
    assert_eq!(
        frame(s).domain_popularity(10),
        legacy::domain_popularity(s.dataset(), &view, 10)
    );
    assert_eq!(
        frame(s).files_per_domain(10),
        legacy::files_per_domain(s.dataset(), &view, 10)
    );
    assert_eq!(
        frame(s).top_domains_by_downloads(FileLabel::Unknown, 10),
        legacy::top_domains_by_downloads(s.dataset(), &view, FileLabel::Unknown, 10)
    );
    let new = frame(s).type_domain_tables(5);
    let old = legacy::type_domain_tables(s.dataset(), &view, 5);
    assert_eq!(new.len(), old.len());
    for ty in MalwareType::ALL {
        assert_eq!(new.get(&ty), old.get(&ty), "type tables for {ty:?}");
    }
}

#[test]
fn rank_distributions_match_legacy() {
    let s = study();
    let view = s.label_view();
    let ranks = downlake_repro::analysis::RankSource::new(|e2ld| s.url_labeler().rank(e2ld).rank());
    for class in [FileLabel::Benign, FileLabel::Malicious, FileLabel::Unknown] {
        let (new_cdf, new_unranked) = frame(s).rank_distribution(&ranks, class);
        let (old_cdf, old_unranked) = legacy::rank_distribution(s.dataset(), &view, &ranks, class);
        assert_eq!(new_unranked, old_unranked, "unranked count for {class:?}");
        assert_eq!(
            format!("{new_cdf:?}"),
            format!("{old_cdf:?}"),
            "rank ECDF for {class:?}"
        );
    }
}

#[test]
fn signers_match_legacy() {
    let s = study();
    let view = s.label_view();
    assert_eq!(
        frame(s).signing_rates_table(),
        legacy::signing_rates_table(s.dataset(), &view)
    );
    assert_eq!(
        frame(s).signer_overlap(),
        legacy::signer_overlap(s.dataset(), &view)
    );
    for k in [3, 10] {
        assert_eq!(
            frame(s).top_signers(k),
            legacy::top_signers(s.dataset(), &view, k)
        );
    }
}

#[test]
fn packers_match_legacy() {
    let s = study();
    let view = s.label_view();
    assert_eq!(
        frame(s).packer_report(),
        legacy::packer_report(s.dataset(), &view)
    );
}

#[test]
fn processes_match_legacy() {
    let s = study();
    let view = s.label_view();
    assert_eq!(
        frame(s).category_behavior(),
        legacy::category_behavior(s.dataset(), &view)
    );
    assert_eq!(
        frame(s).browser_behavior(),
        legacy::browser_behavior(s.dataset(), &view)
    );
    assert_eq!(
        frame(s).malicious_process_behavior(),
        legacy::malicious_process_behavior(s.dataset(), &view)
    );
    assert_eq!(
        frame(s).unknown_download_categories(),
        legacy::unknown_download_categories(s.dataset(), &view)
    );
}

#[test]
fn prevalence_matches_legacy() {
    let s = study();
    let view = s.label_view();
    let sigma = s.config().synth.sigma as usize;
    assert_eq!(
        frame(s).prevalence_report(sigma),
        legacy::prevalence_report(s.dataset(), &view, sigma)
    );
}

#[test]
fn monthly_matches_legacy() {
    let s = study();
    let view = s.label_view();
    let label_url = |e2ld: &str| s.url_labeler().label_e2ld(e2ld);
    assert_eq!(
        frame(s).monthly_summary(label_url),
        legacy::monthly_summary(s.dataset(), &view, label_url)
    );
}

#[test]
fn escalation_matches_legacy() {
    let s = study();
    let view = s.label_view();
    assert_eq!(
        format!("{:?}", frame(s).escalation_cdf()),
        format!("{:?}", legacy::escalation_cdf(s.dataset(), &view))
    );
}
