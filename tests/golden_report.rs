//! Golden snapshot: the full default-scale report at seed 42 is pinned
//! byte-for-byte in `docs/report_default.txt`.
//!
//! Any change to generation, collection, labeling, analysis, or report
//! assembly that shifts a single byte fails here — which is the point:
//! output changes must be deliberate. To bless a deliberate change:
//!
//! ```text
//! DOWNLAKE_BLESS=1 cargo test --release --test golden_report
//! ```
//!
//! then commit the regenerated `docs/report_default.txt` alongside the
//! change that caused it.

use downlake_repro::core::{report, Study, StudyConfig};
use std::path::PathBuf;

mod common;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("docs")
        .join("report_default.txt")
}

#[test]
fn default_report_matches_golden_snapshot() {
    // Default scale (1/16), canonical seed, sequential defaults.
    let study = Study::run(&StudyConfig::new(common::SEED));
    let got = report::full_report(&study);
    let path = golden_path();

    if std::env::var_os("DOWNLAKE_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write blessed golden report");
        return;
    }

    let want = std::fs::read_to_string(&path).expect(
        "docs/report_default.txt missing — run with DOWNLAKE_BLESS=1 to generate the golden file",
    );
    assert!(
        got == want,
        "default-scale report diverged from docs/report_default.txt \
         ({} vs {} bytes); if the change is deliberate, re-bless with \
         DOWNLAKE_BLESS=1 and commit the new snapshot",
        got.len(),
        want.len()
    );
}
