//! The online/batch equivalence gate for `downlake-stream`: replaying
//! the seed-42 study's raw event stream event-by-event (and in pooled
//! micro-batches) must end in exactly the state the batch pipeline
//! computes — same admitted events, same suppression tallies, same
//! per-file feature vectors, same verdicts, in the same order.
//!
//! The batch oracle is `live::prepare`'s classification of the finished
//! dataset through `RuleSet::classify(_, ConflictPolicy::Reject)`; the
//! replay goes through the compiled engine. A divergence anywhere —
//! admission policy, first-sighting interning, encoder snapshot, rule
//! lowering, micro-batch reordering — fails this suite.

use downlake_repro::core::live::{self, LiveConfig};
use downlake_repro::rulelearn::Verdict;
use std::sync::OnceLock;

mod common;

fn prep() -> &'static live::LivePrep<'static> {
    static PREP: OnceLock<live::LivePrep<'static>> = OnceLock::new();
    PREP.get_or_init(|| live::prepare(common::tiny_study(), LiveConfig::default()))
}

#[test]
fn per_event_replay_matches_the_batch_pipeline() {
    let outcome = prep().replay(1).expect("well-formed stream");
    assert!(
        outcome.matches_batch,
        "event-by-event replay must reproduce batch verdicts and vectors"
    );

    let study = common::tiny_study();
    assert_eq!(outcome.suppression, study.suppression());
    assert_eq!(outcome.files, study.dataset().files().len());
    assert_eq!(
        outcome.events_admitted as usize,
        study.dataset().stats().events
    );
    assert_eq!(outcome.events_total, prep().events_total());
}

#[test]
fn pooled_micro_batches_change_nothing() {
    let one = prep().replay(1).expect("well-formed stream");
    let four = prep().replay(4).expect("well-formed stream");
    assert!(four.matches_batch);
    assert_eq!(one, four, "threads must never change a byte of outcome");
}

#[test]
fn the_ruleset_actually_decides_something() {
    // Guard against a vacuous gate: an empty ruleset would also "match
    // batch" (everything NoMatch). The trained engine must carry rules
    // and issue at least one real classification on the tiny study.
    let engine = prep().engine();
    assert!(engine.rule_count() > 0, "training produced no rules");
    let outcome = prep().replay(1).expect("well-formed stream");
    let classified: usize = outcome.class_counts.iter().sum();
    assert!(classified > 0, "no file matched any rule");
    assert!(outcome.no_match < outcome.files, "every file fell through");
    // And verdicts agree with a spot re-check through the raw ruleset
    // path: counts must tally to the file total.
    assert_eq!(
        classified + outcome.rejected + outcome.no_match,
        outcome.files
    );
    assert!(outcome
        .verdicts
        .iter()
        .any(|&(_, v)| matches!(v, Verdict::Class(_))));
}
