//! Shared fixtures for the integration-test binaries.
//!
//! Every suite that needs "the seed-42 study" gets it from here, built
//! exactly once per scale via `OnceLock` and shared across all tests in
//! the binary. Keeping the canonical `(seed, scale)` pairs in one place
//! means a pipeline knob added to `StudyConfig` (e.g. `threads`) is
//! exercised consistently instead of drifting per suite.

#![allow(dead_code)] // each test binary uses a subset of these fixtures

use downlake_repro::core::{Study, StudyConfig};
use downlake_repro::synth::Scale;
use std::sync::OnceLock;

/// The canonical deterministic seed used by every pinned suite.
pub const SEED: u64 = 42;

/// The shared seed-42 study at `Scale::Small` (1/64), built once.
pub fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(&StudyConfig::new(SEED).with_scale(Scale::Small)))
}

/// The shared seed-42 study at `Scale::Tiny`, built once.
pub fn tiny_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| tiny(SEED))
}

/// A fresh tiny-scale study at an arbitrary seed (not cached; for
/// multi-seed invariant sweeps).
pub fn tiny(seed: u64) -> Study {
    Study::run(&StudyConfig::new(seed).with_scale(Scale::Tiny))
}
