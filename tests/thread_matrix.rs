//! The determinism gate for `downlake-exec` parallelism: the full
//! plain-text report must be **byte-identical** at every thread count
//! and every shard count.
//!
//! The oracle is the sequential path (`threads = 1`, one shard). Every
//! cell of the `threads × shards` matrix below re-runs the entire
//! pipeline — sharded generation, parallel frame build, parallel
//! analysis passes — and must reproduce the oracle's report exactly.
//! A single flipped byte anywhere (event order, intern order, CSR
//! layout, section assembly) fails this test.

use downlake_repro::core::{report, Study, StudyConfig};
use downlake_repro::synth::Scale;

mod common;

const THREADS: &[usize] = &[1, 2, 8];
const SHARDS: &[usize] = &[1, 4, 7];

fn run(threads: usize, shards: usize) -> Study {
    Study::run(
        &StudyConfig::new(common::SEED)
            .with_scale(Scale::Tiny)
            .with_threads(threads)
            .with_shards(shards),
    )
}

#[test]
fn full_report_is_byte_identical_across_thread_and_shard_matrix() {
    let oracle = report::full_report(common::tiny_study());
    for &threads in THREADS {
        for &shards in SHARDS {
            let study = run(threads, shards);
            let got = report::full_report(&study);
            assert_eq!(
                got, oracle,
                "report diverged at threads={threads}, shards={shards}"
            );
        }
    }
}

#[test]
fn dataset_and_ground_truth_match_sequential_oracle() {
    // A cheaper, sharper probe than the full report: raw dataset stats
    // and label counts must already agree before any rendering.
    let oracle = common::tiny_study();
    let study = run(8, 7);
    assert_eq!(study.dataset().stats(), oracle.dataset().stats());
    assert_eq!(
        study.ground_truth().counts(),
        oracle.ground_truth().counts()
    );
    assert_eq!(
        study.types().resolution_stats(),
        oracle.types().resolution_stats()
    );
}

#[test]
fn auto_thread_count_matches_oracle() {
    // `threads = 0` resolves to one worker per available core — whatever
    // that is on the host running this test, the bytes must not change.
    let oracle = report::full_report(common::tiny_study());
    let study = run(0, 0);
    assert_eq!(report::full_report(&study), oracle);
}
