//! The sharded-service equivalence gate for `downlake-stream`'s
//! `StreamService`: for the seed-42 study, the (threads × shards) grid
//! must be pure timing/routing surface — every cell ends byte-identical
//! to the single-shard run, whose verdict stream in turn equals the
//! single `StreamSession` replay's. A snapshot taken mid-stream and
//! resumed (through the `telemetry::codec`-framed on-disk format) must
//! reproduce the uninterrupted run exactly, and the epoch-published hot
//! swap must report the exact pinned divergence — the re-classification
//! of every known file under the outgoing and incoming engines is part
//! of the deterministic surface, not best-effort logging.

use downlake_repro::core::serve::{self, ServeOptions};
use downlake_repro::obs::Registry;
use downlake_repro::types::Month;
use std::sync::OnceLock;

mod common;

/// Swap-free prep: the service must shadow the single-session replay.
fn plain_prep() -> &'static serve::ServePrep<'static> {
    static PREP: OnceLock<serve::ServePrep<'static>> = OnceLock::new();
    PREP.get_or_init(|| serve::stage(common::tiny_study(), ServeOptions::default()))
}

/// Hot-swap prep: February retrain staged before the first event,
/// publishing at the epoch-500 boundary.
fn swap_prep() -> &'static serve::ServePrep<'static> {
    static PREP: OnceLock<serve::ServePrep<'static>> = OnceLock::new();
    PREP.get_or_init(|| {
        serve::stage(
            common::tiny_study(),
            ServeOptions {
                epoch_len: 500,
                swap_month: Some(Month::February),
                ..ServeOptions::default()
            },
        )
    })
}

#[test]
fn sharded_grid_is_byte_identical_to_the_single_session() {
    let prep = plain_prep();
    let session = prep.live().replay(1).expect("well-formed stream");
    let base = prep.run(1, 1).expect("run");
    assert_eq!(
        base.verdicts, session.verdicts,
        "sharding must not change one verdict relative to the single session"
    );
    assert_eq!(base.status.events_seen as usize, prep.events_total());

    for shards in [1usize, 8] {
        for threads in [1usize, 4] {
            let run = prep.run(threads, shards).expect("run");
            assert_eq!(run.shards, shards);
            assert!(
                run.same_state(&base),
                "threads={threads} shards={shards} changed the outcome"
            );
        }
    }
}

#[test]
fn snapshot_and_resume_reproduce_the_uninterrupted_run() {
    let prep = swap_prep();
    let uninterrupted = prep.run(4, 8).expect("run");
    assert_eq!(uninterrupted.status.generation, 1, "swap must publish");

    let dir = std::env::temp_dir().join(format!(
        "downlake-service-equivalence-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // Split at several event counts, including one before the epoch-500
    // swap boundary (the pending swap must travel in the snapshot) and
    // one after (the post-swap generation must restore).
    let total = prep.events_total() as u64;
    for (i, at) in [100u64, 499, 500, total / 2, total - 1]
        .into_iter()
        .enumerate()
    {
        let path = dir.join(format!("split-{i}.snap"));
        let killed = prep.run_to_snapshot(1, 8, &path, Some(at)).expect("kill");
        assert_eq!(killed.status.events_seen, at);

        let registry = Registry::new();
        let resumed = prep.resume(4, 8, &path, &registry).expect("resume");
        assert_eq!(
            registry.counter("service.restore.warm"),
            1,
            "split at {at} must restore warm"
        );
        assert!(
            resumed.same_state(&uninterrupted),
            "resume from split at {at} diverged from the uninterrupted run"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_from_a_missing_snapshot_falls_back_cold_and_still_agrees() {
    let prep = swap_prep();
    let uninterrupted = prep.run(1, 8).expect("run");
    let registry = Registry::new();
    let resumed = prep
        .resume(
            4,
            8,
            std::path::Path::new("/nonexistent/service.snap"),
            &registry,
        )
        .expect("cold fallback covers the whole stream");
    assert_eq!(registry.counter("service.restore.cold"), 1);
    assert_eq!(registry.counter("service.restore.warm"), 0);
    assert!(resumed.same_state(&uninterrupted));
}

#[test]
fn hot_swap_divergence_is_pinned() {
    let prep = swap_prep();
    let run = prep.run(1, 1).expect("run");
    assert_eq!(run.status.swaps, 1, "exactly one swap must publish");
    assert_eq!(run.swaps.len(), 1);

    let swap = &run.swaps[0];
    assert_eq!(
        swap.at_seq, 500,
        "publication is pinned to the epoch boundary"
    );
    assert_eq!((swap.from_generation, swap.to_generation), (0, 1));
    assert_eq!(
        (swap.files, swap.changed),
        (400, 53),
        "re-classification surface drifted for the seed-42 tiny study"
    );
    let expected: Vec<(String, String, u64)> = [
        ("malicious", "malicious", 34u64),
        ("malicious", "no_match", 47),
        ("no_match", "malicious", 6),
        ("no_match", "no_match", 313),
    ]
    .into_iter()
    .map(|(a, b, n)| (a.to_owned(), b.to_owned(), n))
    .collect();
    assert_eq!(
        swap.transitions, expected,
        "verdict transition matrix drifted"
    );

    // The divergence record is itself part of the deterministic
    // surface: every grid cell reports the same one.
    for (threads, shards) in [(4usize, 1usize), (1, 8), (4, 8)] {
        let other = prep.run(threads, shards).expect("run");
        assert_eq!(
            other.swaps, run.swaps,
            "threads={threads} shards={shards} changed the divergence record"
        );
    }
}
