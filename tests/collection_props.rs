//! Property-based tests of the collection server's reporting policy over
//! arbitrary raw event streams.

use downlake_repro::telemetry::{CollectionServer, RawEvent, ReportingPolicy};
use downlake_repro::types::{FileHash, MachineId, Timestamp, Url};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawSpec {
    file: u64,
    machine: u64,
    day: u32,
    executed: bool,
    whitelisted_host: bool,
}

fn raw_spec() -> impl Strategy<Value = RawSpec> {
    (0u64..12, 0u64..30, 0u32..212, any::<bool>(), any::<bool>()).prop_map(
        |(file, machine, day, executed, whitelisted_host)| RawSpec {
            file,
            machine,
            day,
            executed,
            whitelisted_host,
        },
    )
}

fn materialise(spec: &RawSpec) -> RawEvent {
    let host = if spec.whitelisted_host {
        "dl.update-host.com"
    } else {
        "files.example.net"
    };
    RawEvent::builder()
        .file(FileHash::from_raw(spec.file))
        .machine(MachineId::from_raw(spec.machine))
        .process(FileHash::from_raw(1000), "chrome.exe")
        .url(Url::from_parts("http", host, "/f.exe").expect("static host"))
        .timestamp(Timestamp::from_day(spec.day))
        .executed(spec.executed)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No file's reported prevalence ever exceeds σ, regardless of the
    /// stream; unexecuted and whitelisted events never land.
    #[test]
    fn reporting_policy_invariants(specs in proptest::collection::vec(raw_spec(), 0..300), sigma in 1u32..8) {
        let policy = ReportingPolicy::new(sigma).with_whitelisted_domain("update-host.com");
        let mut server = CollectionServer::new(policy);
        let mut sorted = specs.clone();
        sorted.sort_by_key(|s| s.day);
        for spec in &sorted {
            server.observe(materialise(spec));
        }
        let dataset = server.into_dataset();
        for record in dataset.files().iter() {
            prop_assert!(dataset.prevalence(record.hash) <= sigma as usize);
        }
        for event in dataset.events() {
            let url = dataset.url_of(event);
            prop_assert_ne!(url.e2ld(), "update-host.com");
        }
        // Reported events are a subset of executed, non-whitelisted ones.
        let max_reportable = sorted
            .iter()
            .filter(|s| s.executed && !s.whitelisted_host)
            .count();
        prop_assert!(dataset.events().len() <= max_reportable);
    }

    /// The suppression counters plus reported events account for every
    /// observed raw event.
    #[test]
    fn conservation_of_events(specs in proptest::collection::vec(raw_spec(), 0..200)) {
        let policy = ReportingPolicy::new(3).with_whitelisted_domain("update-host.com");
        let mut server = CollectionServer::new(policy);
        let mut reported = 0usize;
        for spec in &specs {
            if server.observe(materialise(spec)) {
                reported += 1;
            }
        }
        let suppressed = server.suppression_stats().total() as usize;
        prop_assert_eq!(reported + suppressed, specs.len());
        let dataset = server.into_dataset();
        prop_assert_eq!(dataset.events().len(), reported);
    }

    /// Re-observing the same stream yields the identical dataset.
    #[test]
    fn server_is_deterministic(specs in proptest::collection::vec(raw_spec(), 0..150)) {
        let run = || {
            let mut server =
                CollectionServer::new(ReportingPolicy::new(4));
            for spec in &specs {
                server.observe(materialise(spec));
            }
            server.into_dataset()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.events(), b.events());
        prop_assert_eq!(a.stats(), b.stats());
    }
}
