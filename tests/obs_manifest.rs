//! The determinism gate for `downlake-obs`: at seed 42, the run
//! manifest's non-`timing` sections must be **byte-identical** across
//! the thread/shard matrix — for the batch study and for the live
//! stream replay alike.
//!
//! The manifest's whole design rests on the split between a
//! deterministic plane (counters, gauges, value histograms: pure
//! functions of the configuration) and a quarantined `timing` plane
//! (spans, thread counts: scheduling-dependent by nature). This suite
//! pins the split from the outside, through the same entry points the
//! CLI's `--obs` flag uses.

use downlake_repro::core::{live, Study, StudyConfig};
use downlake_repro::obs::json::{parse, Json};
use downlake_repro::obs::{Registry, TestClock};
use downlake_repro::synth::Scale;

mod common;

fn observed_study(threads: usize, shards: usize) -> Study {
    Study::run_observed(
        &StudyConfig::new(common::SEED)
            .with_scale(Scale::Tiny)
            .with_threads(threads)
            .with_shards(shards),
        &TestClock::with_tick(1),
    )
}

#[test]
fn study_manifest_is_byte_identical_across_threads_after_stripping_timing() {
    let one = observed_study(1, 1);
    let four = observed_study(4, 4);
    let stripped_one = one.manifest().to_json_stripped();
    let stripped_four = four.manifest().to_json_stripped();
    assert_eq!(
        stripped_one, stripped_four,
        "non-timing manifest sections must not depend on threads/shards"
    );
    // The full documents *do* differ — the per-unit queue timings see
    // different clock sequences — which is exactly why `timing` exists.
    assert!(!stripped_one.contains("\"timing\""));
    assert!(one.manifest().to_json().contains("\"timing\""));
}

#[test]
fn stream_manifest_is_byte_identical_across_threads_after_stripping_timing() {
    let render = |threads: usize| {
        let study = observed_study(threads, threads);
        let registry = Registry::new();
        let clock = TestClock::with_tick(1);
        let prep = live::prepare_observed(&study, live::LiveConfig::default(), &registry, &clock);
        let outcome = prep
            .replay_observed(threads, &registry, &clock)
            .expect("well-formed stream");
        assert!(outcome.matches_batch);
        let mut manifest = study.manifest();
        manifest.absorb(&registry.snapshot());
        manifest
    };
    let one = render(1);
    let four = render(4);
    assert_eq!(
        one.to_json_stripped(),
        four.to_json_stripped(),
        "live-replay observations must not depend on the pool width"
    );
}

#[test]
fn manifest_json_parses_and_has_every_section() {
    let study = common::tiny_study();
    let manifest = study.manifest();
    let doc = parse(&manifest.to_json()).expect("manifest must be valid JSON");
    assert_eq!(doc.get("manifest").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("study"));
    let run = doc.get("run").expect("run section");
    assert_eq!(run.get("seed").and_then(Json::as_u64), Some(common::SEED));
    let counters = doc.get("counters").expect("counters section");
    let stats = study.dataset().stats();
    assert_eq!(
        counters.get("dataset.events").and_then(Json::as_u64),
        Some(stats.events as u64)
    );
    assert!(doc.get("gauges").is_some());
    assert!(doc.get("histograms").is_some());
    let timing = doc.get("timing").expect("timing section");
    assert!(timing.get("threads").is_some());
    let spans = timing.get("spans").expect("phase spans under timing");
    assert!(spans.get("phase.generate").is_some());
    assert!(spans.get("phase.frame").is_some());

    // The stripped form parses too and drops exactly the timing section.
    let stripped = parse(&manifest.to_json_stripped()).expect("stripped manifest parses");
    assert!(stripped.get("timing").is_none());
    assert!(stripped.get("counters").is_some());
}
