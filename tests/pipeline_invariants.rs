//! Cross-crate pipeline invariants, checked over multiple seeds.

use downlake_repro::analysis::AnalysisFrame;
use downlake_repro::core::Study;
use downlake_repro::types::{FileLabel, FileNature};

mod common;

fn tiny(seed: u64) -> Study {
    common::tiny(seed)
}

#[test]
fn sigma_cap_holds_for_every_file() {
    for seed in [1, 2, 3] {
        let study = tiny(seed);
        let sigma = study.config().synth.sigma as usize;
        for record in study.dataset().files().iter() {
            let prevalence = study.dataset().prevalence(record.hash);
            assert!(
                prevalence <= sigma,
                "file {} has prevalence {prevalence} > σ={sigma} (seed {seed})",
                record.hash
            );
        }
    }
}

#[test]
fn events_are_sorted_and_inside_window() {
    let study = tiny(11);
    let events = study.dataset().events();
    for pair in events.windows(2) {
        assert!(pair[0].timestamp <= pair[1].timestamp);
    }
    for event in events {
        assert!(event.timestamp.in_study_window());
    }
}

#[test]
fn every_dataset_file_has_world_truth_and_meta() {
    let study = tiny(12);
    for record in study.dataset().files().iter() {
        assert!(
            study.world().latent(record.hash).is_some(),
            "dataset file without latent profile"
        );
    }
    for event in study.dataset().events() {
        assert!(study.dataset().files().get(event.file).is_some());
        assert!(study.dataset().processes().get(event.process).is_some());
    }
}

#[test]
fn labels_never_contradict_latent_truth_strongly() {
    // The oracle may *miss* malicious files (that's the unknown tail) but
    // must never confidently label a latent-benign file malicious or a
    // latent-malicious file benign — it simulates evidence, not noise.
    for seed in [21, 22] {
        let study = tiny(seed);
        for (hash, label) in study.ground_truth().iter() {
            let Some(latent) = study.world().latent(hash) else {
                continue;
            };
            match (label, latent.nature) {
                (FileLabel::Malicious, FileNature::Benign) => {
                    panic!("latent-benign file {hash} labeled malicious (seed {seed})")
                }
                (FileLabel::Benign, FileNature::Malicious(_)) => {
                    panic!("latent-malicious file {hash} labeled benign (seed {seed})")
                }
                _ => {}
            }
        }
    }
}

#[test]
fn typed_files_are_exactly_the_malicious_ones() {
    let study = tiny(31);
    for (hash, label) in study.ground_truth().iter() {
        let typed = study.types().malware_type(hash).is_some();
        assert_eq!(
            typed,
            label == FileLabel::Malicious,
            "type assignment must track the malicious label for {hash}"
        );
    }
}

#[test]
fn suppressed_streams_never_reach_the_dataset() {
    let study = tiny(41);
    for event in study.dataset().events() {
        let url = study.dataset().url_of(event);
        assert_ne!(
            url.e2ld(),
            "microsoft.com",
            "whitelisted update-host event leaked into the dataset"
        );
    }
    assert!(study.suppression().total() > 0);
}

#[test]
fn different_seeds_produce_different_worlds_same_shape() {
    let a = tiny(101);
    let b = tiny(102);
    assert_ne!(
        a.dataset().stats().events,
        b.dataset().stats().events,
        "different seeds should differ in detail"
    );
    // …but the same gross shape: unknown-dominated labeling.
    for study in [&a, &b] {
        let view = study.label_view();
        let total = study.dataset().files().len();
        let unknown = study
            .dataset()
            .files()
            .iter()
            .filter(|r| view.label(r.hash) == FileLabel::Unknown)
            .count();
        let share = unknown as f64 / total as f64;
        assert!((0.6..=0.95).contains(&share), "unknown share {share}");
    }
}

#[test]
fn study_frame_matches_label_view_frame() {
    // The frame the pipeline builds from raw ground truth must equal a
    // frame built through the LabelView shim, column by column.
    let s = common::tiny_study();
    let view = s.label_view();
    let rebuilt = AnalysisFrame::from_label_view(s.dataset(), &view);
    let built = s.frame();
    assert_eq!(built.file_labels(), rebuilt.file_labels());
    assert_eq!(built.file_types(), rebuilt.file_types());
    assert_eq!(built.file_prevalences(), rebuilt.file_prevalences());
    assert_eq!(built.process_labels(), rebuilt.process_labels());
    assert_eq!(built.process_types(), rebuilt.process_types());
    assert_eq!(built.process_categories(), rebuilt.process_categories());
    assert_eq!(built.event_files(), rebuilt.event_files());
    assert_eq!(built.event_file_labels(), rebuilt.event_file_labels());
    assert_eq!(built.event_e2lds(), rebuilt.event_e2lds());
    assert_eq!(built.event_months(), rebuilt.event_months());
    assert_eq!(built.url_e2lds(), rebuilt.url_e2lds());
    assert_eq!(built.event_count(), rebuilt.event_count());
    assert_eq!(built.machine_count(), rebuilt.machine_count());
    assert_eq!(built.e2ld_count(), rebuilt.e2ld_count());
}

#[test]
fn monthly_views_partition_all_events() {
    let study = tiny(51);
    let total: usize = study
        .dataset()
        .months()
        .map(|view| view.events().len())
        .sum();
    assert_eq!(total, study.dataset().events().len());
}
