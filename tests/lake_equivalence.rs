//! The event lake's central promise, pinned end to end: a lake-backed
//! study is **byte-identical** to the in-RAM pipeline — full report,
//! frame shape, and live-replay verdicts — at every thread count; a
//! warm reopen performs **zero event generation** (asserted through the
//! obs counters); and a sweep routed through the lake produces the
//! identical (σ, τ) surface.

use downlake_repro::core::{lake as corelake, live, report, Study, StudyConfig};
use downlake_repro::obs::TestClock;
use downlake_repro::sweep::{run_sweep, run_sweep_with_lake, SweepManifest};
use downlake_repro::synth::Scale;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

mod common;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, process-unique lake root (no tempfile dependency).
fn scratch_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "downlake-lake-equivalence-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn lake_config(root: &Path, threads: usize) -> StudyConfig {
    StudyConfig::new(common::SEED)
        .with_scale(Scale::Tiny)
        .with_threads(threads)
        .with_lake(root.to_path_buf())
}

#[test]
fn lake_backed_study_reproduces_the_in_ram_report_at_threads_1_and_4() {
    let oracle = common::tiny_study();
    let oracle_report = report::full_report(oracle);
    let root = scratch_root();
    for threads in [1usize, 4] {
        let study = Study::run(&lake_config(&root, threads));
        assert!(
            study.lake().is_some(),
            "study must actually run lake-backed (threads={threads})"
        );
        // Report bytes: the entire rendered surface of the paper.
        assert_eq!(
            report::full_report(&study),
            oracle_report,
            "report diverged at threads={threads}"
        );
        // Frame shape: same dense row spaces before any rendering.
        assert_eq!(study.frame().event_count(), oracle.frame().event_count());
        assert_eq!(study.frame().file_count(), oracle.frame().file_count());
        assert_eq!(
            study.frame().process_count(),
            oracle.frame().process_count()
        );
        assert_eq!(
            study.frame().machine_count(),
            oracle.frame().machine_count()
        );
        assert_eq!(study.dataset().stats(), oracle.dataset().stats());
        assert_eq!(study.suppression(), oracle.suppression());
    }
}

#[test]
fn warm_open_does_zero_generation_and_live_replay_matches() {
    let root = scratch_root();

    // Cold run: builds the segments, counts the generation it did.
    let cold = Study::run_observed(&lake_config(&root, 1), &TestClock::with_tick(1));
    let cold_obs = cold.obs();
    assert_eq!(cold_obs.counters["lake.build.cold"], 1);
    assert!(cold_obs.counters["synth.events"] > 0, "cold run generates");
    assert!(!cold_obs.counters.contains_key("lake.open.warm"));

    // Warm run: opens the cached segments; the generator never runs.
    let warm = Study::run_observed(&lake_config(&root, 1), &TestClock::with_tick(1));
    let warm_obs = warm.obs();
    assert_eq!(warm_obs.counters["lake.open.warm"], 1);
    assert!(!warm_obs.counters.contains_key("lake.build.cold"));
    assert!(!warm_obs.counters.contains_key("lake.rebuild.corrupt"));
    assert!(!warm_obs.counters.contains_key("lake.fallback"));
    assert!(
        !warm_obs.counters.contains_key("synth.events"),
        "a warm open must perform zero event generation"
    );
    assert_eq!(
        warm_obs.counters["lake.events"],
        cold_obs.counters["dataset.events"]
            + cold_obs.counters["telemetry.suppressed.not_executed"]
            + cold_obs.counters["telemetry.suppressed.prevalence_cap"]
            + cold_obs.counters["telemetry.suppressed.whitelisted_url"],
        "the lake holds the full pre-admission stream"
    );

    // Both lake runs and the in-RAM oracle agree on the surface.
    let oracle = common::tiny_study();
    assert_eq!(report::full_report(&warm), report::full_report(oracle));
    assert_eq!(report::full_report(&cold), report::full_report(oracle));

    // Live replay off the lake's merged frames: identical verdicts to
    // the in-RAM replay, and both match the batch oracle.
    let prep_lake = live::prepare(&warm, live::LiveConfig::default());
    let prep_ram = live::prepare(oracle, live::LiveConfig::default());
    assert_eq!(prep_lake.events_total(), prep_ram.events_total());
    assert_eq!(prep_lake.stream_bytes(), prep_ram.stream_bytes());
    let out_lake = prep_lake.replay(1).expect("lake-backed replay");
    let out_ram = prep_ram.replay(1).expect("in-RAM replay");
    assert!(out_lake.matches_batch);
    assert_eq!(out_lake.verdicts, out_ram.verdicts);
    assert_eq!(out_lake, out_ram);
}

#[test]
fn shard_knob_changes_layout_but_not_bytes() {
    // Explicit shard counts change the on-disk segment layout (and the
    // world directory is shared — the world hash ignores shards), so use
    // separate roots; the report must not move.
    let oracle_report = report::full_report(common::tiny_study());
    for shards in [1usize, 3] {
        let root = scratch_root();
        let config = lake_config(&root, 2).with_shards(shards);
        let study = Study::run(&config);
        let lake = study.lake().expect("lake-backed");
        assert_eq!(lake.shard_count(), shards);
        assert_eq!(
            report::full_report(&study),
            oracle_report,
            "shards={shards}"
        );
    }
    // The auto setting spills LAKE_DEFAULT_SHARDS segments, never the
    // pool width.
    let root = scratch_root();
    let study = Study::run(&lake_config(&root, 2));
    assert_eq!(
        study.lake().expect("lake-backed").shard_count(),
        corelake::LAKE_DEFAULT_SHARDS
    );
}

#[test]
fn sweep_surface_is_byte_identical_with_and_without_the_lake() {
    let manifest = SweepManifest::parse(
        r#"{"name": "lake-2x2", "scale": "tiny", "seeds": [42], "sigmas": [5, 20], "taus": [0.0, 0.001]}"#,
    )
    .expect("valid manifest");
    let clock = TestClock::with_tick(1);
    let plain = run_sweep(&manifest, &clock);
    let root = scratch_root();
    // First pass builds each world once (one seed → one world, shared by
    // all four (σ, τ) cells); second pass runs fully warm.
    let cold = run_sweep_with_lake(&manifest, &clock, &root);
    let warm = run_sweep_with_lake(&manifest, &clock, &root);
    assert_eq!(cold.table(), plain.table(), "cold lake sweep surface");
    assert_eq!(warm.table(), plain.table(), "warm lake sweep surface");
    // One seed at one scale: exactly one world directory on disk.
    let worlds = std::fs::read_dir(&root).expect("lake root exists").count();
    assert_eq!(worlds, 1, "all (σ, τ) permutations share one cached world");
}
