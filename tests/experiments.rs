//! Integration shape-tests: every table and figure of the paper must come
//! out of the pipeline with the paper's qualitative shape. Exact numbers
//! are not asserted (our substrate is a calibrated simulator, not the
//! authors' telemetry); orderings, dominances, and crossovers are.

use downlake_repro::analysis::{
    domain_popularity, escalation_cdf, packer_report, prevalence_report, signer_overlap,
    signing_rates_table, top_signers, EscalationKind,
};
use downlake_repro::core::{experiments, Study};
use downlake_repro::types::{FileLabel, MalwareType};
use std::collections::HashSet;

mod common;

/// One shared study for all shape tests (seeded, 1/64 scale).
fn study() -> &'static Study {
    common::small_study()
}

#[test]
fn table1_monthly_decline_and_unknown_dominance() {
    let table = experiments::table1(study());
    assert_eq!(table.rows.len(), 8, "seven monthly rows plus Overall");
    assert_eq!(table.rows[7][0], "Overall");
    // Machines decline from January to July (Table I's trend); the
    // Overall machine count exceeds any single month.
    let machines: Vec<usize> = table
        .rows
        .iter()
        .map(|r| r[1].parse().expect("machine count"))
        .collect();
    assert!(machines[7] > machines[0]);
    assert!(
        machines[0] > machines[6],
        "January actives {} should exceed July {}",
        machines[0],
        machines[6]
    );
    // File label shares leave >70% unknown each month.
    for row in table.rows.iter().take(7) {
        let pct = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let labeled = pct(&row[9]) + pct(&row[10]) + pct(&row[11]) + pct(&row[12]);
        assert!(
            labeled < 30.0,
            "labeled share {labeled} too high in {row:?}"
        );
    }
}

#[test]
fn fig1_family_head_and_unnameable_majority() {
    let table = experiments::fig1(study());
    assert!(!table.rows.is_empty());
    assert!(table.rows.len() <= 25);
    // Counts are sorted descending.
    let counts: Vec<u64> = table.rows.iter().map(|r| r[1].parse().unwrap()).collect();
    for pair in counts.windows(2) {
        assert!(pair[0] >= pair[1]);
    }
    // ~58% of samples have no AVclass-derivable family.
    assert!(table.title.contains("unnameable"));
}

#[test]
fn table2_type_mix_shape() {
    let s = study();
    let view = s.label_view();
    let count = |ty: MalwareType| {
        s.dataset()
            .files()
            .iter()
            .filter(|r| {
                view.label(r.hash) == FileLabel::Malicious && view.malware_type(r.hash) == Some(ty)
            })
            .count()
    };
    let dropper = count(MalwareType::Dropper);
    let pup = count(MalwareType::Pup);
    let undefined = count(MalwareType::Undefined);
    let spyware = count(MalwareType::Spyware);
    let banker = count(MalwareType::Banker);
    // Droppers are the most common defined type; undefined is large;
    // bankers/spyware are rare (Table II ordering).
    assert!(
        dropper > banker * 5,
        "droppers {dropper} vs bankers {banker}"
    );
    assert!(
        undefined > pup,
        "undefined {undefined} should be the biggest bucket"
    );
    assert!(spyware < dropper / 20);
}

#[test]
fn fig2_long_tail_shape() {
    let s = study();
    let view = s.label_view();
    let report = prevalence_report(s.dataset(), &view, 20);
    assert!(
        report.prevalence_one_share > 80.0,
        "P(prevalence=1) = {:.1}%",
        report.prevalence_one_share
    );
    assert!(
        report.capped_share < 2.0,
        "capped {:.2}%",
        report.capped_share
    );
    // Unknowns drive the singleton head; labeled classes sit higher.
    assert!(
        report.means.3 < report.means.1,
        "unknown mean below benign mean"
    );
    assert!(
        report.means.3 < report.means.2,
        "unknown mean below malicious mean"
    );
    // The aggregate impact: most machines touched an unknown file.
    assert!(
        report.machines_touching_unknown > 55.0,
        "machines touching unknown = {:.1}%",
        report.machines_touching_unknown
    );
}

#[test]
fn table3_mixed_reputation_domains() {
    let s = study();
    let view = s.label_view();
    let [_, benign, malicious] = domain_popularity(s.dataset(), &view, 10);
    let benign_set: HashSet<&str> = benign.iter().map(|d| d.domain.as_str()).collect();
    let overlap = malicious
        .iter()
        .filter(|d| benign_set.contains(d.domain.as_str()))
        .count();
    assert!(
        overlap >= 2,
        "top benign and malicious domains must overlap (mixed reputation); got {overlap}"
    );
}

#[test]
fn table6_signing_rates_shape() {
    let s = study();
    let view = s.label_view();
    let rows = signing_rates_table(s.dataset(), &view);
    let rate = |class: &str| {
        rows.iter()
            .find(|r| r.class == class)
            .map(|r| r.signed_pct)
            .unwrap_or(0.0)
    };
    assert!(
        rate("dropper") > 70.0,
        "droppers {:.1}% signed",
        rate("dropper")
    );
    assert!(rate("pup") > 60.0);
    assert!(rate("bot") < 16.0, "bots {:.1}% signed", rate("bot"));
    assert!(rate("banker") < 10.0);
    // Malicious overall signed more than benign (§IV-C).
    assert!(rate("malicious") > rate("benign"));
    // Browser-delivered files are signed more, per class.
    let dropper = rows.iter().find(|r| r.class == "dropper").unwrap();
    assert!(dropper.browser_signed_pct >= dropper.signed_pct - 2.0);
}

#[test]
fn table7_and_fig4_signer_overlap() {
    let s = study();
    let view = s.label_view();
    let rows = signer_overlap(s.dataset(), &view);
    let total = rows.iter().find(|r| r.class == "total").unwrap();
    assert!(total.signers > 20);
    assert!(
        total.common_with_benign > 0,
        "some signers must sign both classes"
    );
    assert!(total.common_with_benign < total.signers);

    let report = top_signers(s.dataset(), &view, 10);
    assert!(
        !report.scatter.is_empty(),
        "Fig. 4 scatter must be non-empty"
    );
    assert!(!report.malicious_exclusive.is_empty());
    assert!(!report.benign_exclusive.is_empty());
    // The known PPI heads should sit in the malicious-exclusive list.
    let names: Vec<&str> = report
        .malicious_exclusive
        .iter()
        .map(|(s, _)| s.as_str())
        .collect();
    assert!(
        names
            .iter()
            .any(|n| n.contains("Somoto") || *n == "ISBRInstaller"),
        "expected PPI signer heads, got {names:?}"
    );
}

#[test]
fn packer_overlap_shape() {
    let s = study();
    let view = s.label_view();
    let report = packer_report(s.dataset(), &view);
    // Benign and malicious packed at similar rates (54% vs 58%).
    assert!((40.0..=75.0).contains(&report.benign_packed_pct));
    assert!((40.0..=75.0).contains(&report.malicious_packed_pct));
    assert!((report.benign_packed_pct - report.malicious_packed_pct).abs() < 15.0);
    // A substantial shared pool, plus malicious-exclusive protectors.
    assert!(report.shared_packers >= 10);
    assert!(!report.malicious_only.is_empty());
    assert!(report
        .shared
        .iter()
        .any(|p| p == "INNO" || p == "UPX" || p == "NSIS"));
    assert!(
        report
            .malicious_only
            .iter()
            .any(|p| p == "Themida" || p == "Molebox" || p == "NSPack"),
        "expected protector names in {:?}",
        report.malicious_only
    );
}

#[test]
fn table10_process_category_shape() {
    let table = experiments::table10(study());
    let row = |label: &str| {
        table
            .rows
            .iter()
            .find(|r| r[0] == label)
            .unwrap_or_else(|| panic!("missing row {label}"))
            .clone()
    };
    let browsers = row("Browsers");
    let acrobat = row("Acrobat Reader");
    let infected = |r: &[String]| r[6].trim_end_matches('%').parse::<f64>().unwrap();
    let machines = |r: &[String]| r[2].parse::<usize>().unwrap();
    // Browsers dominate by machines; Acrobat machines are rare but far
    // more likely to be infected (exploit vector).
    assert!(machines(&browsers) > machines(&acrobat) * 50);
    assert!(infected(&acrobat) > infected(&browsers) + 20.0);
    // Acrobat downloads essentially no benign files.
    let acrobat_benign: usize = acrobat[4].parse().unwrap();
    let acrobat_malicious: usize = acrobat[5].parse().unwrap();
    assert!(acrobat_benign * 10 <= acrobat_malicious.max(1));
}

#[test]
fn table11_browser_infection_ordering() {
    let table = experiments::table11(study());
    let infected = |label: &str| {
        table
            .rows
            .iter()
            .find(|r| r[0] == label)
            .map(|r| r[6].trim_end_matches('%').parse::<f64>().unwrap())
            .unwrap_or_else(|| panic!("missing browser {label}"))
    };
    // Chrome users were infected at the highest rate; IE the lowest of
    // the two big browsers (Table XI's surprising finding).
    assert!(
        infected("Chrome") > infected("IE"),
        "Chrome {:.1}% vs IE {:.1}%",
        infected("Chrome"),
        infected("IE")
    );
}

#[test]
fn table12_self_propagation_dominance() {
    let table = experiments::table12(study());
    // For the strongly-typed rows present, the top downloaded type of a
    // malicious process matches the process's own type (Table XII's
    // diagonal dominance).
    for label in ["ransomware", "bot", "banker"] {
        if let Some(row) = table.rows.iter().find(|r| r[0] == label) {
            let mix = &row[7];
            let malicious_files: usize = row[5].parse().unwrap();
            // Rows with very few samples are too noisy to order strictly.
            if mix.is_empty() || malicious_files < 30 {
                continue;
            }
            assert!(
                mix.starts_with(&format!("{label}=")),
                "{label} processes should mostly download {label}: {mix}"
            );
        }
    }
    // The adware/PUP rows: dominated by adware/pup downloads.
    if let Some(row) = table.rows.iter().find(|r| r[0] == "pup") {
        assert!(row[7].starts_with("adware=") || row[7].starts_with("pup="));
    }
}

#[test]
fn fig5_escalation_ordering() {
    let s = study();
    let view = s.label_view();
    let report = escalation_cdf(s.dataset(), &view);
    let eval =
        |kind: EscalationKind, days: f64| report.curve(kind).map(|c| c.eval(days)).unwrap_or(0.0);
    // Day-0: adware/pup ≥ ~0.3, far above benign; dropper fastest.
    assert!(eval(EscalationKind::Adware, 0.0) > 0.25);
    assert!(eval(EscalationKind::Pup, 0.0) > 0.25);
    assert!(eval(EscalationKind::Dropper, 0.0) >= eval(EscalationKind::Adware, 0.0) - 0.05);
    assert!(eval(EscalationKind::Benign, 0.0) < 0.15);
    // Five-day mark: adware/pup majority escalated; benign far behind.
    assert!(eval(EscalationKind::Adware, 5.0) > 0.5);
    assert!(
        eval(EscalationKind::Benign, 5.0) < eval(EscalationKind::Adware, 5.0) - 0.2,
        "benign {:.2} vs adware {:.2}",
        eval(EscalationKind::Benign, 5.0),
        eval(EscalationKind::Adware, 5.0)
    );
}

#[test]
fn tables_13_and_14_unknown_sources() {
    let t13 = experiments::table13(study());
    assert!(!t13.rows.is_empty());
    let t14 = experiments::table14(study());
    // Browsers download the most unknowns; total row present.
    let browsers: usize = t14.rows[0][1].parse().unwrap();
    let windows: usize = t14.rows[1][1].parse().unwrap();
    let total: usize = t14.rows.last().unwrap()[1].parse().unwrap();
    assert!(browsers > windows);
    assert!(total >= browsers + windows);
}

#[test]
fn rule_experiments_match_paper_shape() {
    let outcome = experiments::rule_experiments(study());
    assert_eq!(outcome.rounds.len(), 12, "6 month pairs × 2 τ settings");
    for round in &outcome.rounds {
        assert!(round.rules_selected > 10, "{round:?}");
        assert!(round.malicious_rules > 0 && round.benign_rules > 0);
        // TP high on decided malicious samples.
        assert!(
            round.confusion.tp_rate() > 0.9,
            "TP {:.3} in {:?}-{:?}",
            round.confusion.tp_rate(),
            round.train_month,
            round.test_month
        );
        // Unknown matching in the paper's 20–60% band (paper: 22–38%).
        let matched = round.unknown_match_pct();
        assert!(
            (10.0..=65.0).contains(&matched),
            "unknown matched {matched:.1}%"
        );
        // Rule labels agree with the hidden latent truth.
        assert!(
            round.unknown_latent_agreement > 85.0,
            "latent agreement {:.1}%",
            round.unknown_latent_agreement
        );
    }
    // Labeling expansion comparable to the paper's 2.33×.
    let expansion = outcome.expansion_factor();
    assert!(
        (1.3..=3.5).contains(&expansion),
        "expansion {expansion:.2}x"
    );
    assert!(!outcome.example_rules.is_empty());
    // Rules are the paper's kind: signer conditions dominate.
    assert!(
        outcome
            .example_rules
            .iter()
            .any(|r| r.contains("file's signer")),
        "{:?}",
        outcome.example_rules
    );
}

#[test]
fn avtype_resolution_stats_shape() {
    let stats = study().types().resolution_stats();
    let total = stats.total() as f64;
    assert!(total > 0.0);
    // No-conflict + voting + specificity together dominate; manual rare
    // (paper: 44/28/23/5).
    assert!((stats.no_conflict as f64 / total) > 0.2);
    assert!((stats.manual as f64 / total) < 0.1);
}

#[test]
fn full_report_renders_everything() {
    let report = downlake_repro::core::report::full_report(study());
    for needle in [
        "Table I",
        "Fig. 1",
        "Table II",
        "Fig. 2",
        "Table III",
        "Table IV",
        "Fig. 3",
        "Table V",
        "Table VI",
        "Table VII",
        "Table VIII",
        "Table IX",
        "Fig. 4",
        "Packer",
        "Table X ",
        "Table XI",
        "Table XII",
        "Fig. 5",
        "Fig. 6",
        "Table XIII",
        "Table XIV",
        "Table XV",
        "Table XVI",
        "Table XVII",
        "expansion factor",
    ] {
        assert!(report.contains(needle), "report missing {needle:?}");
    }
}

#[test]
fn evasion_strategies_degrade_detection_in_order() {
    use downlake_repro::core::experiments::{evasion_rows, EvasionStrategy};
    let rows = evasion_rows(study());
    let rate = |s: EvasionStrategy| {
        rows.iter()
            .find(|r| r.strategy == s)
            .map(|r| r.detection_rate())
            .expect("strategy present")
    };
    let baseline = rate(EvasionStrategy::None);
    assert!(baseline > 0.2, "baseline detection {baseline:.2}");
    // Re-signing with unseen certificates blinds the signer rules.
    assert!(rate(EvasionStrategy::FreshCertificates) < baseline);
    // Stripping the signature also evades signer rules (per §VII's
    // discussion, both moves carry real-world costs the rules don't see).
    assert!(rate(EvasionStrategy::StripSignature) < baseline);
    // Repacking alone barely helps: signer rules still fire.
    assert!(rate(EvasionStrategy::BenignPacker) > rate(EvasionStrategy::FreshCertificates));
    // Crucially: evaded files fall back to *unknown* (unmatched) or get
    // rejected far more often than they get positively blessed as
    // benign — except for the stolen-certificate move, which is exactly
    // why the paper flags certificate theft as the dangerous case.
    for row in &rows {
        if row.strategy != EvasionStrategy::StolenBenignCertificate {
            assert!(
                row.misclassified_benign <= row.samples / 10,
                "{:?} blessed {} of {} as benign",
                row.strategy,
                row.misclassified_benign,
                row.samples
            );
        }
    }
}

#[test]
fn expansion_reach_is_substantial_minority() {
    use downlake_repro::core::experiments::{expansion_reach, rule_experiments};
    let outcome = rule_experiments(study());
    let reach = expansion_reach(study(), &outcome);
    // Paper: labeled unknowns were downloaded by 31% of all machines.
    let pct = reach.coverage_pct();
    assert!((10.0..=60.0).contains(&pct), "coverage {pct:.1}%");
    assert!(reach.machines_covered <= reach.machines_with_unknowns);
    assert!(reach.machines_with_unknowns <= reach.machines_total);
}

#[test]
fn fig3_and_fig6_rank_distributions_are_populated() {
    let fig3 = experiments::fig3(study());
    assert_eq!(fig3.series.len(), 2);
    for (name, points) in &fig3.series {
        assert!(!points.is_empty(), "series {name} empty");
        // Ranks are positive and CDF values end at 1.
        assert!(points.iter().all(|&(x, _)| x >= 1.0));
        assert_eq!(points.last().unwrap().1, 1.0);
    }
    let fig6 = experiments::fig6(study());
    assert_eq!(fig6.series.len(), 1);
    assert!(!fig6.series[0].1.is_empty());
    // Unknown files are served by plenty of unranked domains too.
    assert!(fig6.title.contains("unranked="));
}

#[test]
fn fig2_series_cover_all_classes() {
    let fig2 = experiments::fig2(study());
    let names: Vec<&str> = fig2.series.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["all", "benign", "malicious", "unknown"]);
    // The unknown curve has the most singleton mass: its CDF at
    // prevalence 1 dominates every other class's.
    let at_one = |name: &str| {
        fig2.series
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, pts)| pts.first().map(|&(x, y)| (x, y)))
            .expect("series present")
    };
    let (x, unknown_head) = at_one("unknown");
    assert_eq!(x, 1.0);
    assert!(unknown_head > at_one("benign").1);
    assert!(unknown_head > at_one("malicious").1);
}

#[test]
fn baselines_reproduce_related_work_failures() {
    use downlake_repro::core::experiments::{domain_reputation, graph_reputation};
    use downlake_repro::types::Month;
    let graph = graph_reputation(study(), Month::January);
    let singleton = graph
        .buckets
        .iter()
        .find(|(b, _)| b == "prevalence 1")
        .map(|(_, e)| *e)
        .expect("bucket present");
    assert_eq!(
        singleton.detected, 0,
        "graph reputation cannot corroborate singletons (Polonium's gap)"
    );

    let domain = domain_reputation(study(), Month::January);
    let fp: usize = domain.buckets.iter().map(|(_, e)| e.false_positives).sum();
    let benign: usize = domain.buckets.iter().map(|(_, e)| e.benign).sum();
    assert!(benign > 0);
    assert!(
        fp as f64 / benign as f64 > 0.10,
        "mixed-reputation hosting must poison domain reputation ({fp}/{benign})"
    );
}
