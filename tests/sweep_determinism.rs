//! Pins the sweep harness's determinism contract end to end:
//!
//! 1. A 2×2 (σ × τ) sweep renders **byte-identical** timing-stripped
//!    reports at `threads = 1` and `threads = 4` — the sweep-level pool
//!    is pure scheduling, exactly like the per-study one.
//! 2. The sweep's paper-configuration cell (σ = 20, τ = 0.1%) equals
//!    the tallies of a plain single-run seed-42 study evaluated through
//!    the re-runnable experiment entry point — fanning out changes
//!    nothing about any individual cell.
//! 3. That re-runnable entry point at the paper settings reproduces
//!    the historical `rule_experiments` outcome exactly, so the sweep
//!    refactor cannot have moved the paper's own numbers.

mod common;

use downlake_repro::core::experiments::{rule_experiments, rule_experiments_over, TAU_SETTINGS};
use downlake_repro::obs::TestClock;
use downlake_repro::sweep::{run_sweep, SweepCell, SweepManifest};
use downlake_repro::types::Month;

/// The pinned 2×2 manifest: paper σ and a tighter cap, both paper τs,
/// the canonical seed, the full window, tiny scale.
fn manifest(threads: usize) -> SweepManifest {
    let mut m = SweepManifest::parse(
        r#"{"name": "pin-2x2", "scale": "tiny", "seeds": [42], "sigmas": [5, 20], "taus": [0.0, 0.001]}"#,
    )
    .expect("pinned manifest is valid");
    m.threads = threads;
    m
}

#[test]
fn sweep_report_is_byte_identical_across_thread_counts() {
    let sequential = manifest(1);
    let pooled = manifest(4);
    // Different clocks too: timing must never leak into the stripped view.
    let a = run_sweep(&sequential, &TestClock::with_tick(1));
    let b = run_sweep(&pooled, &TestClock::with_tick(3));

    let a_json = a.manifest(&sequential).to_json_stripped();
    let b_json = b.manifest(&pooled).to_json_stripped();
    assert_eq!(a_json, b_json, "thread count leaked into the sweep report");

    // Sanity on the surface itself: 4 runs over 4 distinct cells, in
    // (σ, τ) order.
    assert_eq!(a.runs(), 4);
    let keys: Vec<(u32, u64)> = a.cells().iter().map(SweepCell::key).collect();
    assert_eq!(
        keys,
        vec![
            (5, 0.0f64.to_bits()),
            (5, 0.001f64.to_bits()),
            (20, 0.0f64.to_bits()),
            (20, 0.001f64.to_bits()),
        ]
    );
}

#[test]
fn paper_cell_matches_the_single_run_study_exactly() {
    let m = manifest(1);
    let report = run_sweep(&m, &TestClock::with_tick(1));

    // The same numbers computed without the sweep harness: the shared
    // seed-42 tiny study (default σ = 20) evaluated at τ = 0.1% alone.
    let study = common::tiny_study();
    assert_eq!(study.config().synth.sigma, 20, "default σ is the paper's");
    let outcome = rule_experiments_over(study, &[0.001], Month::ALL.len());
    let expected = SweepCell::from_outcome(20, 0.001, &outcome);

    let cell = report.cell(20, 0.001).expect("paper cell present");
    assert_eq!(cell, &expected, "sweep cell diverged from the direct run");
    assert!(cell.rounds > 0, "paper cell must carry real rounds");
    assert!(cell.rules_selected > 0, "τ = 0.1% selects rules at σ = 20");
}

#[test]
fn rerunnable_entry_point_reproduces_the_paper_outcome() {
    let study = common::tiny_study();
    let historical = rule_experiments(study);
    let rerunnable = rule_experiments_over(study, &TAU_SETTINGS, Month::ALL.len());
    assert_eq!(
        historical, rerunnable,
        "rule_experiments_over at paper settings must be rule_experiments"
    );
}
