(function() {
    const implementors = Object.fromEntries([["downlake_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"enum\" href=\"downlake_types/enum.BrowserKind.html\" title=\"enum downlake_types::BrowserKind\">BrowserKind</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"enum\" href=\"downlake_types/enum.MalwareType.html\" title=\"enum downlake_types::MalwareType\">MalwareType</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"struct\" href=\"downlake_types/struct.Url.html\" title=\"struct downlake_types::Url\">Url</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[869]}