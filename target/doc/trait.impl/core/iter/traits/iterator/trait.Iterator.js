(function() {
    const implementors = Object.fromEntries([["downlake_query",[["impl&lt;I: <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"struct\" href=\"downlake_query/struct.Query.html\" title=\"struct downlake_query::Query\">Query</a>&lt;I&gt;",0]]],["downlake_telemetry",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"struct\" href=\"downlake_telemetry/codec/struct.EventReader.html\" title=\"struct downlake_telemetry::codec::EventReader\">EventReader</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[515,375]}