(function() {
    const implementors = Object.fromEntries([["downlake_analysis",[["impl&lt;K: <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Eq.html\" title=\"trait core::cmp::Eq\">Eq</a> + <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> + <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/clone/trait.Clone.html\" title=\"trait core::clone::Clone\">Clone</a> + <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.FromIterator.html\" title=\"trait core::iter::traits::collect::FromIterator\">FromIterator</a>&lt;K&gt; for <a class=\"struct\" href=\"downlake_analysis/stats/struct.Counter.html\" title=\"struct downlake_analysis::stats::Counter\">Counter</a>&lt;K&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[901]}