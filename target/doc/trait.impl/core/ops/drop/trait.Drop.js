(function() {
    const implementors = Object.fromEntries([["downlake_obs",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"downlake_obs/struct.Span.html\" title=\"struct downlake_obs::Span\">Span</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[285]}