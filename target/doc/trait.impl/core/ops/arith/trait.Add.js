(function() {
    const implementors = Object.fromEntries([["downlake_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Add.html\" title=\"trait core::ops::arith::Add\">Add</a>&lt;<a class=\"struct\" href=\"downlake_types/struct.Duration.html\" title=\"struct downlake_types::Duration\">Duration</a>&gt; for <a class=\"struct\" href=\"downlake_types/struct.Timestamp.html\" title=\"struct downlake_types::Timestamp\">Timestamp</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[422]}