/root/repo/target/debug/examples/rule_mining-6db96881e48e4b51.d: examples/rule_mining.rs

/root/repo/target/debug/examples/rule_mining-6db96881e48e4b51: examples/rule_mining.rs

examples/rule_mining.rs:
