/root/repo/target/debug/examples/long_tail_report-c0f658ab993f99f1.d: examples/long_tail_report.rs

/root/repo/target/debug/examples/long_tail_report-c0f658ab993f99f1: examples/long_tail_report.rs

examples/long_tail_report.rs:
