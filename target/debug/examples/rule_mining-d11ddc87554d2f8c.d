/root/repo/target/debug/examples/rule_mining-d11ddc87554d2f8c.d: examples/rule_mining.rs

/root/repo/target/debug/examples/librule_mining-d11ddc87554d2f8c.rmeta: examples/rule_mining.rs

examples/rule_mining.rs:
