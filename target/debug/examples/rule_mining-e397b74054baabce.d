/root/repo/target/debug/examples/rule_mining-e397b74054baabce.d: /root/repo/clippy.toml examples/rule_mining.rs Cargo.toml

/root/repo/target/debug/examples/librule_mining-e397b74054baabce.rmeta: /root/repo/clippy.toml examples/rule_mining.rs Cargo.toml

/root/repo/clippy.toml:
examples/rule_mining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
