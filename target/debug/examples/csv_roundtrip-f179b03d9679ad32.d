/root/repo/target/debug/examples/csv_roundtrip-f179b03d9679ad32.d: examples/csv_roundtrip.rs

/root/repo/target/debug/examples/csv_roundtrip-f179b03d9679ad32: examples/csv_roundtrip.rs

examples/csv_roundtrip.rs:
