/root/repo/target/debug/examples/escalation_watch-fc79899ab9601f21.d: examples/escalation_watch.rs

/root/repo/target/debug/examples/libescalation_watch-fc79899ab9601f21.rmeta: examples/escalation_watch.rs

examples/escalation_watch.rs:
