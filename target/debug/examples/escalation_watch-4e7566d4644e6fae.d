/root/repo/target/debug/examples/escalation_watch-4e7566d4644e6fae.d: /root/repo/clippy.toml examples/escalation_watch.rs Cargo.toml

/root/repo/target/debug/examples/libescalation_watch-4e7566d4644e6fae.rmeta: /root/repo/clippy.toml examples/escalation_watch.rs Cargo.toml

/root/repo/clippy.toml:
examples/escalation_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
