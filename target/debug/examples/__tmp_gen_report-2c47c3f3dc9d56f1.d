/root/repo/target/debug/examples/__tmp_gen_report-2c47c3f3dc9d56f1.d: /root/repo/clippy.toml examples/__tmp_gen_report.rs Cargo.toml

/root/repo/target/debug/examples/lib__tmp_gen_report-2c47c3f3dc9d56f1.rmeta: /root/repo/clippy.toml examples/__tmp_gen_report.rs Cargo.toml

/root/repo/clippy.toml:
examples/__tmp_gen_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
