/root/repo/target/debug/examples/csv_roundtrip-4d1446f3f4675ad6.d: /root/repo/clippy.toml examples/csv_roundtrip.rs Cargo.toml

/root/repo/target/debug/examples/libcsv_roundtrip-4d1446f3f4675ad6.rmeta: /root/repo/clippy.toml examples/csv_roundtrip.rs Cargo.toml

/root/repo/clippy.toml:
examples/csv_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
