/root/repo/target/debug/examples/escalation_watch-ae9e091b8d391a6e.d: examples/escalation_watch.rs

/root/repo/target/debug/examples/escalation_watch-ae9e091b8d391a6e: examples/escalation_watch.rs

examples/escalation_watch.rs:
