/root/repo/target/debug/examples/quickstart-e396ecec5138758a.d: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e396ecec5138758a.rmeta: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
