/root/repo/target/debug/examples/long_tail_report-2af5631bb4e79623.d: examples/long_tail_report.rs

/root/repo/target/debug/examples/liblong_tail_report-2af5631bb4e79623.rmeta: examples/long_tail_report.rs

examples/long_tail_report.rs:
