/root/repo/target/debug/examples/quickstart-7f4f1d3ddde634ad.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7f4f1d3ddde634ad: examples/quickstart.rs

examples/quickstart.rs:
