/root/repo/target/debug/examples/long_tail_report-ca25664e9f03ee4c.d: /root/repo/clippy.toml examples/long_tail_report.rs Cargo.toml

/root/repo/target/debug/examples/liblong_tail_report-ca25664e9f03ee4c.rmeta: /root/repo/clippy.toml examples/long_tail_report.rs Cargo.toml

/root/repo/clippy.toml:
examples/long_tail_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
