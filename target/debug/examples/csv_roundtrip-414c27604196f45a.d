/root/repo/target/debug/examples/csv_roundtrip-414c27604196f45a.d: examples/csv_roundtrip.rs

/root/repo/target/debug/examples/libcsv_roundtrip-414c27604196f45a.rmeta: examples/csv_roundtrip.rs

examples/csv_roundtrip.rs:
