/root/repo/target/debug/examples/quickstart-fa99f825c22068bd.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-fa99f825c22068bd.rmeta: examples/quickstart.rs

examples/quickstart.rs:
