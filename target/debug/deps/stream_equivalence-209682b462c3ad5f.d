/root/repo/target/debug/deps/stream_equivalence-209682b462c3ad5f.d: tests/stream_equivalence.rs tests/common/mod.rs

/root/repo/target/debug/deps/stream_equivalence-209682b462c3ad5f: tests/stream_equivalence.rs tests/common/mod.rs

tests/stream_equivalence.rs:
tests/common/mod.rs:
