/root/repo/target/debug/deps/stream_equivalence-06871f063f6c6769.d: /root/repo/clippy.toml tests/stream_equivalence.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libstream_equivalence-06871f063f6c6769.rmeta: /root/repo/clippy.toml tests/stream_equivalence.rs tests/common/mod.rs Cargo.toml

/root/repo/clippy.toml:
tests/stream_equivalence.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
