/root/repo/target/debug/deps/downlake_lint-b6908ae33bf3fcc8.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/downlake_lint-b6908ae33bf3fcc8: crates/lint/src/main.rs

crates/lint/src/main.rs:
