/root/repo/target/debug/deps/query_props-235526b5f9406973.d: crates/query/tests/query_props.rs

/root/repo/target/debug/deps/query_props-235526b5f9406973: crates/query/tests/query_props.rs

crates/query/tests/query_props.rs:
