/root/repo/target/debug/deps/roundtrip-e072c3d9d141d179.d: crates/avtype/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-e072c3d9d141d179: crates/avtype/tests/roundtrip.rs

crates/avtype/tests/roundtrip.rs:
