/root/repo/target/debug/deps/downlake-f3bf20d37b23d88d.d: src/bin/downlake.rs

/root/repo/target/debug/deps/libdownlake-f3bf20d37b23d88d.rmeta: src/bin/downlake.rs

src/bin/downlake.rs:
