/root/repo/target/debug/deps/downlake_groundtruth-34a27f1237bd9a8d.d: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

/root/repo/target/debug/deps/downlake_groundtruth-34a27f1237bd9a8d: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

crates/groundtruth/src/lib.rs:
crates/groundtruth/src/engines.rs:
crates/groundtruth/src/labeler.rs:
crates/groundtruth/src/oracle.rs:
crates/groundtruth/src/scan.rs:
crates/groundtruth/src/urllabel.rs:
crates/groundtruth/src/whitelist.rs:
