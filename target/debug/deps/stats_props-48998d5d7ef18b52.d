/root/repo/target/debug/deps/stats_props-48998d5d7ef18b52.d: crates/analysis/tests/stats_props.rs

/root/repo/target/debug/deps/stats_props-48998d5d7ef18b52: crates/analysis/tests/stats_props.rs

crates/analysis/tests/stats_props.rs:
