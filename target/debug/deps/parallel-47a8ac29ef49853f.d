/root/repo/target/debug/deps/parallel-47a8ac29ef49853f.d: crates/bench/src/bin/parallel.rs

/root/repo/target/debug/deps/libparallel-47a8ac29ef49853f.rmeta: crates/bench/src/bin/parallel.rs

crates/bench/src/bin/parallel.rs:
