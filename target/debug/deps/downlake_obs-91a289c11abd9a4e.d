/root/repo/target/debug/deps/downlake_obs-91a289c11abd9a4e.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/downlake_obs-91a289c11abd9a4e: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/manifest.rs:
crates/obs/src/registry.rs:
