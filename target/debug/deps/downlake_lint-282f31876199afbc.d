/root/repo/target/debug/deps/downlake_lint-282f31876199afbc.d: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

/root/repo/target/debug/deps/libdownlake_lint-282f31876199afbc.rmeta: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

crates/lint/src/lib.rs:
crates/lint/src/baseline.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
crates/lint/src/scan.rs:
crates/lint/src/walk.rs:
