/root/repo/target/debug/deps/oracle_props-211f2ec3ea8b185e.d: crates/groundtruth/tests/oracle_props.rs

/root/repo/target/debug/deps/liboracle_props-211f2ec3ea8b185e.rmeta: crates/groundtruth/tests/oracle_props.rs

crates/groundtruth/tests/oracle_props.rs:
