/root/repo/target/debug/deps/parallel-69dc7dc7a1466e76.d: /root/repo/clippy.toml crates/bench/src/bin/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libparallel-69dc7dc7a1466e76.rmeta: /root/repo/clippy.toml crates/bench/src/bin/parallel.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
