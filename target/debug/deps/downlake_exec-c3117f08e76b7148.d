/root/repo/target/debug/deps/downlake_exec-c3117f08e76b7148.d: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

/root/repo/target/debug/deps/libdownlake_exec-c3117f08e76b7148.rmeta: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

crates/exec/src/lib.rs:
crates/exec/src/pool.rs:
crates/exec/src/seed.rs:
crates/exec/src/shard.rs:
