/root/repo/target/debug/deps/downlake_types-1a86c992a429dddf.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/label.rs crates/types/src/meta.rs crates/types/src/process.rs crates/types/src/rank.rs crates/types/src/time.rs crates/types/src/url.rs

/root/repo/target/debug/deps/libdownlake_types-1a86c992a429dddf.rlib: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/label.rs crates/types/src/meta.rs crates/types/src/process.rs crates/types/src/rank.rs crates/types/src/time.rs crates/types/src/url.rs

/root/repo/target/debug/deps/libdownlake_types-1a86c992a429dddf.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/label.rs crates/types/src/meta.rs crates/types/src/process.rs crates/types/src/rank.rs crates/types/src/time.rs crates/types/src/url.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/label.rs:
crates/types/src/meta.rs:
crates/types/src/process.rs:
crates/types/src/rank.rs:
crates/types/src/time.rs:
crates/types/src/url.rs:
