/root/repo/target/debug/deps/obs_manifest-191e59885f60eff0.d: tests/obs_manifest.rs tests/common/mod.rs

/root/repo/target/debug/deps/libobs_manifest-191e59885f60eff0.rmeta: tests/obs_manifest.rs tests/common/mod.rs

tests/obs_manifest.rs:
tests/common/mod.rs:
