/root/repo/target/debug/deps/downlake_telemetry-81b9574b0889eba7.d: /root/repo/clippy.toml crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_telemetry-81b9574b0889eba7.rmeta: /root/repo/clippy.toml crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs Cargo.toml

/root/repo/clippy.toml:
crates/telemetry/src/lib.rs:
crates/telemetry/src/codec.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/server.rs:
crates/telemetry/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
