/root/repo/target/debug/deps/downlake_stream-4b274a1f82b81256.d: /root/repo/clippy.toml crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_stream-4b274a1f82b81256.rmeta: /root/repo/clippy.toml crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs Cargo.toml

/root/repo/clippy.toml:
crates/stream/src/lib.rs:
crates/stream/src/collector.rs:
crates/stream/src/engine.rs:
crates/stream/src/online.rs:
crates/stream/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
