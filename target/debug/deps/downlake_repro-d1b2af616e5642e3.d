/root/repo/target/debug/deps/downlake_repro-d1b2af616e5642e3.d: src/lib.rs

/root/repo/target/debug/deps/downlake_repro-d1b2af616e5642e3: src/lib.rs

src/lib.rs:
