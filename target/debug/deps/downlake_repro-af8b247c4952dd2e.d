/root/repo/target/debug/deps/downlake_repro-af8b247c4952dd2e.d: src/lib.rs

/root/repo/target/debug/deps/libdownlake_repro-af8b247c4952dd2e.rmeta: src/lib.rs

src/lib.rs:
