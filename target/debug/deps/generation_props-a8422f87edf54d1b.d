/root/repo/target/debug/deps/generation_props-a8422f87edf54d1b.d: /root/repo/clippy.toml crates/synth/tests/generation_props.rs Cargo.toml

/root/repo/target/debug/deps/libgeneration_props-a8422f87edf54d1b.rmeta: /root/repo/clippy.toml crates/synth/tests/generation_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/synth/tests/generation_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
