/root/repo/target/debug/deps/downlake_stream-3a6dbf3b04c3c0a2.d: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

/root/repo/target/debug/deps/libdownlake_stream-3a6dbf3b04c3c0a2.rmeta: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

crates/stream/src/lib.rs:
crates/stream/src/collector.rs:
crates/stream/src/engine.rs:
crates/stream/src/online.rs:
crates/stream/src/session.rs:
