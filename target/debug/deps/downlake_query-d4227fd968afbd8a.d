/root/repo/target/debug/deps/downlake_query-d4227fd968afbd8a.d: /root/repo/clippy.toml crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_query-d4227fd968afbd8a.rmeta: /root/repo/clippy.toml crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs Cargo.toml

/root/repo/clippy.toml:
crates/query/src/lib.rs:
crates/query/src/adjacency.rs:
crates/query/src/col.rs:
crates/query/src/dense.rs:
crates/query/src/key.rs:
crates/query/src/partition.rs:
crates/query/src/pipeline.rs:
crates/query/src/stamp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
