/root/repo/target/debug/deps/avtype-321b12bc9263ab3c.d: crates/avtype/src/bin/avtype.rs

/root/repo/target/debug/deps/libavtype-321b12bc9263ab3c.rmeta: crates/avtype/src/bin/avtype.rs

crates/avtype/src/bin/avtype.rs:
