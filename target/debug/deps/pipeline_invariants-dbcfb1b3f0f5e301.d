/root/repo/target/debug/deps/pipeline_invariants-dbcfb1b3f0f5e301.d: tests/pipeline_invariants.rs tests/common/mod.rs

/root/repo/target/debug/deps/pipeline_invariants-dbcfb1b3f0f5e301: tests/pipeline_invariants.rs tests/common/mod.rs

tests/pipeline_invariants.rs:
tests/common/mod.rs:
