/root/repo/target/debug/deps/ablations-c6a329308da86124.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-c6a329308da86124.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
