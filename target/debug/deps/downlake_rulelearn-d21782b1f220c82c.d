/root/repo/target/debug/deps/downlake_rulelearn-d21782b1f220c82c.d: crates/rulelearn/src/lib.rs crates/rulelearn/src/data.rs crates/rulelearn/src/entropy.rs crates/rulelearn/src/metrics.rs crates/rulelearn/src/part.rs crates/rulelearn/src/rule.rs crates/rulelearn/src/ruleset.rs crates/rulelearn/src/tree.rs

/root/repo/target/debug/deps/libdownlake_rulelearn-d21782b1f220c82c.rmeta: crates/rulelearn/src/lib.rs crates/rulelearn/src/data.rs crates/rulelearn/src/entropy.rs crates/rulelearn/src/metrics.rs crates/rulelearn/src/part.rs crates/rulelearn/src/rule.rs crates/rulelearn/src/ruleset.rs crates/rulelearn/src/tree.rs

crates/rulelearn/src/lib.rs:
crates/rulelearn/src/data.rs:
crates/rulelearn/src/entropy.rs:
crates/rulelearn/src/metrics.rs:
crates/rulelearn/src/part.rs:
crates/rulelearn/src/rule.rs:
crates/rulelearn/src/ruleset.rs:
crates/rulelearn/src/tree.rs:
