/root/repo/target/debug/deps/thread_matrix-46c6774a5a724c3a.d: tests/thread_matrix.rs tests/common/mod.rs

/root/repo/target/debug/deps/libthread_matrix-46c6774a5a724c3a.rmeta: tests/thread_matrix.rs tests/common/mod.rs

tests/thread_matrix.rs:
tests/common/mod.rs:
