/root/repo/target/debug/deps/downlake_repro-1d81952ec08ed9e1.d: src/lib.rs

/root/repo/target/debug/deps/libdownlake_repro-1d81952ec08ed9e1.rmeta: src/lib.rs

src/lib.rs:
