/root/repo/target/debug/deps/codec_props-3d68cf2b42990265.d: /root/repo/clippy.toml crates/telemetry/tests/codec_props.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_props-3d68cf2b42990265.rmeta: /root/repo/clippy.toml crates/telemetry/tests/codec_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/telemetry/tests/codec_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
