/root/repo/target/debug/deps/downlake_bench-f4082950a8e5bf4f.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdownlake_bench-f4082950a8e5bf4f.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/report.rs:
