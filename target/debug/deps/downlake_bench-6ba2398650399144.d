/root/repo/target/debug/deps/downlake_bench-6ba2398650399144.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/downlake_bench-6ba2398650399144: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/report.rs:
