/root/repo/target/debug/deps/downlake_avtype-b82ec9ff472f80bd.d: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

/root/repo/target/debug/deps/libdownlake_avtype-b82ec9ff472f80bd.rmeta: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

crates/avtype/src/lib.rs:
crates/avtype/src/behavior.rs:
crates/avtype/src/family.rs:
crates/avtype/src/map.rs:
crates/avtype/src/parse.rs:
