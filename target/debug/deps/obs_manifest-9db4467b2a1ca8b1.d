/root/repo/target/debug/deps/obs_manifest-9db4467b2a1ca8b1.d: tests/obs_manifest.rs tests/common/mod.rs

/root/repo/target/debug/deps/obs_manifest-9db4467b2a1ca8b1: tests/obs_manifest.rs tests/common/mod.rs

tests/obs_manifest.rs:
tests/common/mod.rs:
