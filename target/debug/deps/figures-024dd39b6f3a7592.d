/root/repo/target/debug/deps/figures-024dd39b6f3a7592.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-024dd39b6f3a7592.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
