/root/repo/target/debug/deps/fixture_findings-a8ad496e71ce59fa.d: crates/lint/tests/fixture_findings.rs

/root/repo/target/debug/deps/libfixture_findings-a8ad496e71ce59fa.rmeta: crates/lint/tests/fixture_findings.rs

crates/lint/tests/fixture_findings.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
