/root/repo/target/debug/deps/components-8ebb35c437b9f39d.d: /root/repo/clippy.toml crates/bench/benches/components.rs Cargo.toml

/root/repo/target/debug/deps/libcomponents-8ebb35c437b9f39d.rmeta: /root/repo/clippy.toml crates/bench/benches/components.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
