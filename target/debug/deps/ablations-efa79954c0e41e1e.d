/root/repo/target/debug/deps/ablations-efa79954c0e41e1e.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-efa79954c0e41e1e: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
