/root/repo/target/debug/deps/stream-2a06f01d0b901e92.d: crates/bench/src/bin/stream.rs

/root/repo/target/debug/deps/libstream-2a06f01d0b901e92.rmeta: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
