/root/repo/target/debug/deps/downlake_lint-717c24ff418cfdee.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/libdownlake_lint-717c24ff418cfdee.rmeta: crates/lint/src/main.rs

crates/lint/src/main.rs:
