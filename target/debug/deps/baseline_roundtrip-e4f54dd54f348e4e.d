/root/repo/target/debug/deps/baseline_roundtrip-e4f54dd54f348e4e.d: /root/repo/clippy.toml crates/lint/tests/baseline_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_roundtrip-e4f54dd54f348e4e.rmeta: /root/repo/clippy.toml crates/lint/tests/baseline_roundtrip.rs Cargo.toml

/root/repo/clippy.toml:
crates/lint/tests/baseline_roundtrip.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
