/root/repo/target/debug/deps/downlake_features-44226e4ab043fbe8.d: crates/features/src/lib.rs

/root/repo/target/debug/deps/libdownlake_features-44226e4ab043fbe8.rlib: crates/features/src/lib.rs

/root/repo/target/debug/deps/libdownlake_features-44226e4ab043fbe8.rmeta: crates/features/src/lib.rs

crates/features/src/lib.rs:
