/root/repo/target/debug/deps/frame_equivalence-81c4b087c042ecb7.d: tests/frame_equivalence.rs tests/common/mod.rs

/root/repo/target/debug/deps/libframe_equivalence-81c4b087c042ecb7.rmeta: tests/frame_equivalence.rs tests/common/mod.rs

tests/frame_equivalence.rs:
tests/common/mod.rs:
