/root/repo/target/debug/deps/pipeline_invariants-3f981be41e366990.d: /root/repo/clippy.toml tests/pipeline_invariants.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_invariants-3f981be41e366990.rmeta: /root/repo/clippy.toml tests/pipeline_invariants.rs tests/common/mod.rs Cargo.toml

/root/repo/clippy.toml:
tests/pipeline_invariants.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
