/root/repo/target/debug/deps/downlake-c1644a0653947ff8.d: src/bin/downlake.rs

/root/repo/target/debug/deps/downlake-c1644a0653947ff8: src/bin/downlake.rs

src/bin/downlake.rs:
