/root/repo/target/debug/deps/downlake_lint-d43504d21cb045e6.d: /root/repo/clippy.toml crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_lint-d43504d21cb045e6.rmeta: /root/repo/clippy.toml crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs Cargo.toml

/root/repo/clippy.toml:
crates/lint/src/lib.rs:
crates/lint/src/baseline.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
crates/lint/src/scan.rs:
crates/lint/src/walk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
