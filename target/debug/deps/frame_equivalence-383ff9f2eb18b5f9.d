/root/repo/target/debug/deps/frame_equivalence-383ff9f2eb18b5f9.d: tests/frame_equivalence.rs tests/common/mod.rs

/root/repo/target/debug/deps/frame_equivalence-383ff9f2eb18b5f9: tests/frame_equivalence.rs tests/common/mod.rs

tests/frame_equivalence.rs:
tests/common/mod.rs:
