/root/repo/target/debug/deps/downlake_exec-5b431b2c524e758c.d: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

/root/repo/target/debug/deps/downlake_exec-5b431b2c524e758c: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

crates/exec/src/lib.rs:
crates/exec/src/pool.rs:
crates/exec/src/seed.rs:
crates/exec/src/shard.rs:
