/root/repo/target/debug/deps/tables-fa255a40a06f5b65.d: /root/repo/clippy.toml crates/bench/benches/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-fa255a40a06f5b65.rmeta: /root/repo/clippy.toml crates/bench/benches/tables.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
