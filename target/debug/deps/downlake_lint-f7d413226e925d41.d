/root/repo/target/debug/deps/downlake_lint-f7d413226e925d41.d: /root/repo/clippy.toml crates/lint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_lint-f7d413226e925d41.rmeta: /root/repo/clippy.toml crates/lint/src/main.rs Cargo.toml

/root/repo/clippy.toml:
crates/lint/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
