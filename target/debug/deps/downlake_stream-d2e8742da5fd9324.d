/root/repo/target/debug/deps/downlake_stream-d2e8742da5fd9324.d: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

/root/repo/target/debug/deps/libdownlake_stream-d2e8742da5fd9324.rmeta: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

crates/stream/src/lib.rs:
crates/stream/src/collector.rs:
crates/stream/src/engine.rs:
crates/stream/src/online.rs:
crates/stream/src/session.rs:
