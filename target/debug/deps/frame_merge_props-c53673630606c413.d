/root/repo/target/debug/deps/frame_merge_props-c53673630606c413.d: /root/repo/clippy.toml crates/analysis/tests/frame_merge_props.rs Cargo.toml

/root/repo/target/debug/deps/libframe_merge_props-c53673630606c413.rmeta: /root/repo/clippy.toml crates/analysis/tests/frame_merge_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/analysis/tests/frame_merge_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
