/root/repo/target/debug/deps/ablations-9285b04e15ed80d8.d: /root/repo/clippy.toml crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-9285b04e15ed80d8.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
