/root/repo/target/debug/deps/generation_props-5d46d4f8a7d7e1dc.d: crates/synth/tests/generation_props.rs

/root/repo/target/debug/deps/libgeneration_props-5d46d4f8a7d7e1dc.rmeta: crates/synth/tests/generation_props.rs

crates/synth/tests/generation_props.rs:
