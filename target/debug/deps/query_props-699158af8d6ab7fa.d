/root/repo/target/debug/deps/query_props-699158af8d6ab7fa.d: /root/repo/clippy.toml crates/query/tests/query_props.rs Cargo.toml

/root/repo/target/debug/deps/libquery_props-699158af8d6ab7fa.rmeta: /root/repo/clippy.toml crates/query/tests/query_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/query/tests/query_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
