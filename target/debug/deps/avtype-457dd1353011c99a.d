/root/repo/target/debug/deps/avtype-457dd1353011c99a.d: /root/repo/clippy.toml crates/avtype/src/bin/avtype.rs Cargo.toml

/root/repo/target/debug/deps/libavtype-457dd1353011c99a.rmeta: /root/repo/clippy.toml crates/avtype/src/bin/avtype.rs Cargo.toml

/root/repo/clippy.toml:
crates/avtype/src/bin/avtype.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
