/root/repo/target/debug/deps/stream-56c0ae4786f50aba.d: crates/bench/src/bin/stream.rs

/root/repo/target/debug/deps/stream-56c0ae4786f50aba: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
