/root/repo/target/debug/deps/downlake_analysis-760ab6ae04adbf1a.d: crates/analysis/src/lib.rs crates/analysis/src/domains.rs crates/analysis/src/escalation.rs crates/analysis/src/frame.rs crates/analysis/src/labels.rs crates/analysis/src/monthly.rs crates/analysis/src/packers.rs crates/analysis/src/prevalence.rs crates/analysis/src/processes.rs crates/analysis/src/signers.rs crates/analysis/src/stats.rs

/root/repo/target/debug/deps/downlake_analysis-760ab6ae04adbf1a: crates/analysis/src/lib.rs crates/analysis/src/domains.rs crates/analysis/src/escalation.rs crates/analysis/src/frame.rs crates/analysis/src/labels.rs crates/analysis/src/monthly.rs crates/analysis/src/packers.rs crates/analysis/src/prevalence.rs crates/analysis/src/processes.rs crates/analysis/src/signers.rs crates/analysis/src/stats.rs

crates/analysis/src/lib.rs:
crates/analysis/src/domains.rs:
crates/analysis/src/escalation.rs:
crates/analysis/src/frame.rs:
crates/analysis/src/labels.rs:
crates/analysis/src/monthly.rs:
crates/analysis/src/packers.rs:
crates/analysis/src/prevalence.rs:
crates/analysis/src/processes.rs:
crates/analysis/src/signers.rs:
crates/analysis/src/stats.rs:
