/root/repo/target/debug/deps/codec_props-6f12c03c34aa7c80.d: crates/telemetry/tests/codec_props.rs

/root/repo/target/debug/deps/libcodec_props-6f12c03c34aa7c80.rmeta: crates/telemetry/tests/codec_props.rs

crates/telemetry/tests/codec_props.rs:
