/root/repo/target/debug/deps/avtype-d7e6bcf59450c84d.d: crates/avtype/src/bin/avtype.rs

/root/repo/target/debug/deps/avtype-d7e6bcf59450c84d: crates/avtype/src/bin/avtype.rs

crates/avtype/src/bin/avtype.rs:
