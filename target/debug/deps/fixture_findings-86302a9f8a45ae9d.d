/root/repo/target/debug/deps/fixture_findings-86302a9f8a45ae9d.d: /root/repo/clippy.toml crates/lint/tests/fixture_findings.rs Cargo.toml

/root/repo/target/debug/deps/libfixture_findings-86302a9f8a45ae9d.rmeta: /root/repo/clippy.toml crates/lint/tests/fixture_findings.rs Cargo.toml

/root/repo/clippy.toml:
crates/lint/tests/fixture_findings.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
