/root/repo/target/debug/deps/frame_merge_props-e21d837fbfc7c28b.d: crates/analysis/tests/frame_merge_props.rs

/root/repo/target/debug/deps/frame_merge_props-e21d837fbfc7c28b: crates/analysis/tests/frame_merge_props.rs

crates/analysis/tests/frame_merge_props.rs:
