/root/repo/target/debug/deps/experiments-be02982e8714ec2b.d: tests/experiments.rs tests/common/mod.rs

/root/repo/target/debug/deps/libexperiments-be02982e8714ec2b.rmeta: tests/experiments.rs tests/common/mod.rs

tests/experiments.rs:
tests/common/mod.rs:
