/root/repo/target/debug/deps/rules-432dda2a6b221c22.d: /root/repo/clippy.toml crates/bench/benches/rules.rs Cargo.toml

/root/repo/target/debug/deps/librules-432dda2a6b221c22.rmeta: /root/repo/clippy.toml crates/bench/benches/rules.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
