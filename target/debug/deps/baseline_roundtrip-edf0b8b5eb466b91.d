/root/repo/target/debug/deps/baseline_roundtrip-edf0b8b5eb466b91.d: crates/lint/tests/baseline_roundtrip.rs

/root/repo/target/debug/deps/baseline_roundtrip-edf0b8b5eb466b91: crates/lint/tests/baseline_roundtrip.rs

crates/lint/tests/baseline_roundtrip.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
