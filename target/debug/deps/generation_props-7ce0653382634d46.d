/root/repo/target/debug/deps/generation_props-7ce0653382634d46.d: crates/synth/tests/generation_props.rs

/root/repo/target/debug/deps/generation_props-7ce0653382634d46: crates/synth/tests/generation_props.rs

crates/synth/tests/generation_props.rs:
