/root/repo/target/debug/deps/fixture_findings-f80c4b2a5e7ec82b.d: crates/lint/tests/fixture_findings.rs

/root/repo/target/debug/deps/fixture_findings-f80c4b2a5e7ec82b: crates/lint/tests/fixture_findings.rs

crates/lint/tests/fixture_findings.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
