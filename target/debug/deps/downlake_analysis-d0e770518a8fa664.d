/root/repo/target/debug/deps/downlake_analysis-d0e770518a8fa664.d: /root/repo/clippy.toml crates/analysis/src/lib.rs crates/analysis/src/domains.rs crates/analysis/src/escalation.rs crates/analysis/src/frame.rs crates/analysis/src/labels.rs crates/analysis/src/monthly.rs crates/analysis/src/packers.rs crates/analysis/src/prevalence.rs crates/analysis/src/processes.rs crates/analysis/src/signers.rs crates/analysis/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_analysis-d0e770518a8fa664.rmeta: /root/repo/clippy.toml crates/analysis/src/lib.rs crates/analysis/src/domains.rs crates/analysis/src/escalation.rs crates/analysis/src/frame.rs crates/analysis/src/labels.rs crates/analysis/src/monthly.rs crates/analysis/src/packers.rs crates/analysis/src/prevalence.rs crates/analysis/src/processes.rs crates/analysis/src/signers.rs crates/analysis/src/stats.rs Cargo.toml

/root/repo/clippy.toml:
crates/analysis/src/lib.rs:
crates/analysis/src/domains.rs:
crates/analysis/src/escalation.rs:
crates/analysis/src/frame.rs:
crates/analysis/src/labels.rs:
crates/analysis/src/monthly.rs:
crates/analysis/src/packers.rs:
crates/analysis/src/prevalence.rs:
crates/analysis/src/processes.rs:
crates/analysis/src/signers.rs:
crates/analysis/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
