/root/repo/target/debug/deps/downlake_exec-e42d442daf130515.d: /root/repo/clippy.toml crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_exec-e42d442daf130515.rmeta: /root/repo/clippy.toml crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs Cargo.toml

/root/repo/clippy.toml:
crates/exec/src/lib.rs:
crates/exec/src/pool.rs:
crates/exec/src/seed.rs:
crates/exec/src/shard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
