/root/repo/target/debug/deps/downlake_bench-2e17048d05cd0931.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdownlake_bench-2e17048d05cd0931.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/report.rs:
