/root/repo/target/debug/deps/properties-60a14a43d8a8c4d9.d: crates/types/tests/properties.rs

/root/repo/target/debug/deps/properties-60a14a43d8a8c4d9: crates/types/tests/properties.rs

crates/types/tests/properties.rs:
