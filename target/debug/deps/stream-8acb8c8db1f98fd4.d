/root/repo/target/debug/deps/stream-8acb8c8db1f98fd4.d: crates/bench/src/bin/stream.rs

/root/repo/target/debug/deps/libstream-8acb8c8db1f98fd4.rmeta: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
