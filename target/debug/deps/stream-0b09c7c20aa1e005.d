/root/repo/target/debug/deps/stream-0b09c7c20aa1e005.d: /root/repo/clippy.toml crates/bench/src/bin/stream.rs Cargo.toml

/root/repo/target/debug/deps/libstream-0b09c7c20aa1e005.rmeta: /root/repo/clippy.toml crates/bench/src/bin/stream.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
