/root/repo/target/debug/deps/roundtrip-70de21ec88a631aa.d: crates/avtype/tests/roundtrip.rs

/root/repo/target/debug/deps/libroundtrip-70de21ec88a631aa.rmeta: crates/avtype/tests/roundtrip.rs

crates/avtype/tests/roundtrip.rs:
