/root/repo/target/debug/deps/tables-3fbdc16d5c07958c.d: crates/bench/benches/tables.rs

/root/repo/target/debug/deps/libtables-3fbdc16d5c07958c.rmeta: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
