/root/repo/target/debug/deps/rules-fdd97230c6e132e9.d: crates/bench/benches/rules.rs

/root/repo/target/debug/deps/librules-fdd97230c6e132e9.rmeta: crates/bench/benches/rules.rs

crates/bench/benches/rules.rs:
