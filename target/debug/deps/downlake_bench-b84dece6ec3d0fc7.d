/root/repo/target/debug/deps/downlake_bench-b84dece6ec3d0fc7.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdownlake_bench-b84dece6ec3d0fc7.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/report.rs:
