/root/repo/target/debug/deps/parallel-ffb785916ad9b440.d: crates/bench/src/bin/parallel.rs

/root/repo/target/debug/deps/parallel-ffb785916ad9b440: crates/bench/src/bin/parallel.rs

crates/bench/src/bin/parallel.rs:
