/root/repo/target/debug/deps/downlake_repro-d0c4f07f7c9f4a41.d: src/lib.rs

/root/repo/target/debug/deps/libdownlake_repro-d0c4f07f7c9f4a41.rmeta: src/lib.rs

src/lib.rs:
