/root/repo/target/debug/deps/downlake_lint-c15e672e0b173444.d: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

/root/repo/target/debug/deps/libdownlake_lint-c15e672e0b173444.rmeta: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

crates/lint/src/lib.rs:
crates/lint/src/baseline.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
crates/lint/src/scan.rs:
crates/lint/src/walk.rs:
