/root/repo/target/debug/deps/properties-01fe78038e3712b9.d: /root/repo/clippy.toml crates/rulelearn/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-01fe78038e3712b9.rmeta: /root/repo/clippy.toml crates/rulelearn/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/rulelearn/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
