/root/repo/target/debug/deps/golden_report-b58eaddbc6f35c5d.d: tests/golden_report.rs tests/common/mod.rs

/root/repo/target/debug/deps/golden_report-b58eaddbc6f35c5d: tests/golden_report.rs tests/common/mod.rs

tests/golden_report.rs:
tests/common/mod.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
