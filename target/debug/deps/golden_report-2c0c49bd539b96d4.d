/root/repo/target/debug/deps/golden_report-2c0c49bd539b96d4.d: /root/repo/clippy.toml tests/golden_report.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_report-2c0c49bd539b96d4.rmeta: /root/repo/clippy.toml tests/golden_report.rs tests/common/mod.rs Cargo.toml

/root/repo/clippy.toml:
tests/golden_report.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
