/root/repo/target/debug/deps/downlake_avtype-6db795d928a6ae47.d: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

/root/repo/target/debug/deps/libdownlake_avtype-6db795d928a6ae47.rmeta: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

crates/avtype/src/lib.rs:
crates/avtype/src/behavior.rs:
crates/avtype/src/family.rs:
crates/avtype/src/map.rs:
crates/avtype/src/parse.rs:
