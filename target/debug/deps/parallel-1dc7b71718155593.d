/root/repo/target/debug/deps/parallel-1dc7b71718155593.d: crates/bench/src/bin/parallel.rs

/root/repo/target/debug/deps/libparallel-1dc7b71718155593.rmeta: crates/bench/src/bin/parallel.rs

crates/bench/src/bin/parallel.rs:
