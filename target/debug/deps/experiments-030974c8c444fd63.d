/root/repo/target/debug/deps/experiments-030974c8c444fd63.d: tests/experiments.rs tests/common/mod.rs

/root/repo/target/debug/deps/experiments-030974c8c444fd63: tests/experiments.rs tests/common/mod.rs

tests/experiments.rs:
tests/common/mod.rs:
