/root/repo/target/debug/deps/collection_props-c681366bb0fe032e.d: tests/collection_props.rs

/root/repo/target/debug/deps/collection_props-c681366bb0fe032e: tests/collection_props.rs

tests/collection_props.rs:
