/root/repo/target/debug/deps/query-aa41edef857af981.d: /root/repo/clippy.toml crates/bench/src/bin/query.rs Cargo.toml

/root/repo/target/debug/deps/libquery-aa41edef857af981.rmeta: /root/repo/clippy.toml crates/bench/src/bin/query.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
