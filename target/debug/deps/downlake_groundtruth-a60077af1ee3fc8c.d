/root/repo/target/debug/deps/downlake_groundtruth-a60077af1ee3fc8c.d: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

/root/repo/target/debug/deps/libdownlake_groundtruth-a60077af1ee3fc8c.rlib: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

/root/repo/target/debug/deps/libdownlake_groundtruth-a60077af1ee3fc8c.rmeta: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

crates/groundtruth/src/lib.rs:
crates/groundtruth/src/engines.rs:
crates/groundtruth/src/labeler.rs:
crates/groundtruth/src/oracle.rs:
crates/groundtruth/src/scan.rs:
crates/groundtruth/src/urllabel.rs:
crates/groundtruth/src/whitelist.rs:
