/root/repo/target/debug/deps/downlake_bench-7f10d02ce04549e0.d: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_bench-7f10d02ce04549e0.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
