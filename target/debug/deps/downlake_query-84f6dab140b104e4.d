/root/repo/target/debug/deps/downlake_query-84f6dab140b104e4.d: crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs

/root/repo/target/debug/deps/libdownlake_query-84f6dab140b104e4.rlib: crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs

/root/repo/target/debug/deps/libdownlake_query-84f6dab140b104e4.rmeta: crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs

crates/query/src/lib.rs:
crates/query/src/adjacency.rs:
crates/query/src/col.rs:
crates/query/src/dense.rs:
crates/query/src/key.rs:
crates/query/src/partition.rs:
crates/query/src/pipeline.rs:
crates/query/src/stamp.rs:
