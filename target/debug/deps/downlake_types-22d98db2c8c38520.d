/root/repo/target/debug/deps/downlake_types-22d98db2c8c38520.d: /root/repo/clippy.toml crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/label.rs crates/types/src/meta.rs crates/types/src/process.rs crates/types/src/rank.rs crates/types/src/time.rs crates/types/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_types-22d98db2c8c38520.rmeta: /root/repo/clippy.toml crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/label.rs crates/types/src/meta.rs crates/types/src/process.rs crates/types/src/rank.rs crates/types/src/time.rs crates/types/src/url.rs Cargo.toml

/root/repo/clippy.toml:
crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/label.rs:
crates/types/src/meta.rs:
crates/types/src/process.rs:
crates/types/src/rank.rs:
crates/types/src/time.rs:
crates/types/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
