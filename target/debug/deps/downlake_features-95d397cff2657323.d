/root/repo/target/debug/deps/downlake_features-95d397cff2657323.d: crates/features/src/lib.rs

/root/repo/target/debug/deps/libdownlake_features-95d397cff2657323.rmeta: crates/features/src/lib.rs

crates/features/src/lib.rs:
