/root/repo/target/debug/deps/experiments-62135b739f64a15f.d: /root/repo/clippy.toml tests/experiments.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-62135b739f64a15f.rmeta: /root/repo/clippy.toml tests/experiments.rs tests/common/mod.rs Cargo.toml

/root/repo/clippy.toml:
tests/experiments.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
