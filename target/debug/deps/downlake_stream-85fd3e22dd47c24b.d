/root/repo/target/debug/deps/downlake_stream-85fd3e22dd47c24b.d: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

/root/repo/target/debug/deps/downlake_stream-85fd3e22dd47c24b: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

crates/stream/src/lib.rs:
crates/stream/src/collector.rs:
crates/stream/src/engine.rs:
crates/stream/src/online.rs:
crates/stream/src/session.rs:
