/root/repo/target/debug/deps/downlake-c0746ccf97f51ae4.d: src/bin/downlake.rs

/root/repo/target/debug/deps/libdownlake-c0746ccf97f51ae4.rmeta: src/bin/downlake.rs

src/bin/downlake.rs:
