/root/repo/target/debug/deps/properties-b08cfefa744e4d14.d: crates/types/tests/properties.rs

/root/repo/target/debug/deps/libproperties-b08cfefa744e4d14.rmeta: crates/types/tests/properties.rs

crates/types/tests/properties.rs:
