/root/repo/target/debug/deps/downlake-15c295e58667f436.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libdownlake-15c295e58667f436.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/baselines.rs:
crates/core/src/experiments/evasion.rs:
crates/core/src/experiments/rules.rs:
crates/core/src/live.rs:
crates/core/src/pipeline.rs:
crates/core/src/render.rs:
crates/core/src/report.rs:
