/root/repo/target/debug/deps/ablations-82d549ca6ee14147.d: /root/repo/clippy.toml crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-82d549ca6ee14147.rmeta: /root/repo/clippy.toml crates/bench/benches/ablations.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
