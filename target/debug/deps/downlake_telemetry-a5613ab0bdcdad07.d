/root/repo/target/debug/deps/downlake_telemetry-a5613ab0bdcdad07.d: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

/root/repo/target/debug/deps/libdownlake_telemetry-a5613ab0bdcdad07.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

/root/repo/target/debug/deps/libdownlake_telemetry-a5613ab0bdcdad07.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/codec.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/server.rs:
crates/telemetry/src/tables.rs:
