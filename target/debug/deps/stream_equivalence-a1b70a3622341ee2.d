/root/repo/target/debug/deps/stream_equivalence-a1b70a3622341ee2.d: tests/stream_equivalence.rs tests/common/mod.rs

/root/repo/target/debug/deps/libstream_equivalence-a1b70a3622341ee2.rmeta: tests/stream_equivalence.rs tests/common/mod.rs

tests/stream_equivalence.rs:
tests/common/mod.rs:
