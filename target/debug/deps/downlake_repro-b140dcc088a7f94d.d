/root/repo/target/debug/deps/downlake_repro-b140dcc088a7f94d.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_repro-b140dcc088a7f94d.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
