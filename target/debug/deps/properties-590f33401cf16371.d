/root/repo/target/debug/deps/properties-590f33401cf16371.d: crates/avtype/tests/properties.rs

/root/repo/target/debug/deps/properties-590f33401cf16371: crates/avtype/tests/properties.rs

crates/avtype/tests/properties.rs:
