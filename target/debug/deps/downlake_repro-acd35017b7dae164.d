/root/repo/target/debug/deps/downlake_repro-acd35017b7dae164.d: src/lib.rs

/root/repo/target/debug/deps/libdownlake_repro-acd35017b7dae164.rlib: src/lib.rs

/root/repo/target/debug/deps/libdownlake_repro-acd35017b7dae164.rmeta: src/lib.rs

src/lib.rs:
