/root/repo/target/debug/deps/pipeline_invariants-da8e20aab4b68682.d: tests/pipeline_invariants.rs tests/common/mod.rs

/root/repo/target/debug/deps/libpipeline_invariants-da8e20aab4b68682.rmeta: tests/pipeline_invariants.rs tests/common/mod.rs

tests/pipeline_invariants.rs:
tests/common/mod.rs:
