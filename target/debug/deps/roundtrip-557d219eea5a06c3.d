/root/repo/target/debug/deps/roundtrip-557d219eea5a06c3.d: /root/repo/clippy.toml crates/avtype/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-557d219eea5a06c3.rmeta: /root/repo/clippy.toml crates/avtype/tests/roundtrip.rs Cargo.toml

/root/repo/clippy.toml:
crates/avtype/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
