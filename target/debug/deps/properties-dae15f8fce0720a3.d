/root/repo/target/debug/deps/properties-dae15f8fce0720a3.d: crates/rulelearn/tests/properties.rs

/root/repo/target/debug/deps/libproperties-dae15f8fce0720a3.rmeta: crates/rulelearn/tests/properties.rs

crates/rulelearn/tests/properties.rs:
