/root/repo/target/debug/deps/figures-7a72c8244d407939.d: /root/repo/clippy.toml crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-7a72c8244d407939.rmeta: /root/repo/clippy.toml crates/bench/benches/figures.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
