/root/repo/target/debug/deps/properties-a66f19cf11843115.d: crates/rulelearn/tests/properties.rs

/root/repo/target/debug/deps/properties-a66f19cf11843115: crates/rulelearn/tests/properties.rs

crates/rulelearn/tests/properties.rs:
