/root/repo/target/debug/deps/downlake_features-37f0f6a3fa192f82.d: crates/features/src/lib.rs

/root/repo/target/debug/deps/libdownlake_features-37f0f6a3fa192f82.rmeta: crates/features/src/lib.rs

crates/features/src/lib.rs:
