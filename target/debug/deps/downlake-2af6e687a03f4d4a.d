/root/repo/target/debug/deps/downlake-2af6e687a03f4d4a.d: /root/repo/clippy.toml src/bin/downlake.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake-2af6e687a03f4d4a.rmeta: /root/repo/clippy.toml src/bin/downlake.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/downlake.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
