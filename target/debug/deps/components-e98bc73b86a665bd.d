/root/repo/target/debug/deps/components-e98bc73b86a665bd.d: crates/bench/benches/components.rs

/root/repo/target/debug/deps/libcomponents-e98bc73b86a665bd.rmeta: crates/bench/benches/components.rs

crates/bench/benches/components.rs:
