/root/repo/target/debug/deps/downlake_exec-8d6a60eec12ac615.d: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

/root/repo/target/debug/deps/libdownlake_exec-8d6a60eec12ac615.rmeta: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

crates/exec/src/lib.rs:
crates/exec/src/pool.rs:
crates/exec/src/seed.rs:
crates/exec/src/shard.rs:
