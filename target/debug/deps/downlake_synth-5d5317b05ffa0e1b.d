/root/repo/target/debug/deps/downlake_synth-5d5317b05ffa0e1b.d: crates/synth/src/lib.rs crates/synth/src/calibration.rs crates/synth/src/catalogs/mod.rs crates/synth/src/catalogs/domains.rs crates/synth/src/catalogs/families.rs crates/synth/src/catalogs/names.rs crates/synth/src/catalogs/packers.rs crates/synth/src/catalogs/processes.rs crates/synth/src/catalogs/signers.rs crates/synth/src/config.rs crates/synth/src/dist.rs crates/synth/src/eventgen.rs crates/synth/src/filegen.rs crates/synth/src/world.rs

/root/repo/target/debug/deps/libdownlake_synth-5d5317b05ffa0e1b.rmeta: crates/synth/src/lib.rs crates/synth/src/calibration.rs crates/synth/src/catalogs/mod.rs crates/synth/src/catalogs/domains.rs crates/synth/src/catalogs/families.rs crates/synth/src/catalogs/names.rs crates/synth/src/catalogs/packers.rs crates/synth/src/catalogs/processes.rs crates/synth/src/catalogs/signers.rs crates/synth/src/config.rs crates/synth/src/dist.rs crates/synth/src/eventgen.rs crates/synth/src/filegen.rs crates/synth/src/world.rs

crates/synth/src/lib.rs:
crates/synth/src/calibration.rs:
crates/synth/src/catalogs/mod.rs:
crates/synth/src/catalogs/domains.rs:
crates/synth/src/catalogs/families.rs:
crates/synth/src/catalogs/names.rs:
crates/synth/src/catalogs/packers.rs:
crates/synth/src/catalogs/processes.rs:
crates/synth/src/catalogs/signers.rs:
crates/synth/src/config.rs:
crates/synth/src/dist.rs:
crates/synth/src/eventgen.rs:
crates/synth/src/filegen.rs:
crates/synth/src/world.rs:
