/root/repo/target/debug/deps/golden_report-6e257ea96d05fcd8.d: tests/golden_report.rs tests/common/mod.rs

/root/repo/target/debug/deps/libgolden_report-6e257ea96d05fcd8.rmeta: tests/golden_report.rs tests/common/mod.rs

tests/golden_report.rs:
tests/common/mod.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
