/root/repo/target/debug/deps/downlake_synth-05a49824c6a50451.d: /root/repo/clippy.toml crates/synth/src/lib.rs crates/synth/src/calibration.rs crates/synth/src/catalogs/mod.rs crates/synth/src/catalogs/domains.rs crates/synth/src/catalogs/families.rs crates/synth/src/catalogs/names.rs crates/synth/src/catalogs/packers.rs crates/synth/src/catalogs/processes.rs crates/synth/src/catalogs/signers.rs crates/synth/src/config.rs crates/synth/src/dist.rs crates/synth/src/eventgen.rs crates/synth/src/filegen.rs crates/synth/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_synth-05a49824c6a50451.rmeta: /root/repo/clippy.toml crates/synth/src/lib.rs crates/synth/src/calibration.rs crates/synth/src/catalogs/mod.rs crates/synth/src/catalogs/domains.rs crates/synth/src/catalogs/families.rs crates/synth/src/catalogs/names.rs crates/synth/src/catalogs/packers.rs crates/synth/src/catalogs/processes.rs crates/synth/src/catalogs/signers.rs crates/synth/src/config.rs crates/synth/src/dist.rs crates/synth/src/eventgen.rs crates/synth/src/filegen.rs crates/synth/src/world.rs Cargo.toml

/root/repo/clippy.toml:
crates/synth/src/lib.rs:
crates/synth/src/calibration.rs:
crates/synth/src/catalogs/mod.rs:
crates/synth/src/catalogs/domains.rs:
crates/synth/src/catalogs/families.rs:
crates/synth/src/catalogs/names.rs:
crates/synth/src/catalogs/packers.rs:
crates/synth/src/catalogs/processes.rs:
crates/synth/src/catalogs/signers.rs:
crates/synth/src/config.rs:
crates/synth/src/dist.rs:
crates/synth/src/eventgen.rs:
crates/synth/src/filegen.rs:
crates/synth/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
