/root/repo/target/debug/deps/obs_manifest-ae1c798ea92efa61.d: /root/repo/clippy.toml tests/obs_manifest.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libobs_manifest-ae1c798ea92efa61.rmeta: /root/repo/clippy.toml tests/obs_manifest.rs tests/common/mod.rs Cargo.toml

/root/repo/clippy.toml:
tests/obs_manifest.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
