/root/repo/target/debug/deps/avtype-5b738aad39ddab33.d: crates/avtype/src/bin/avtype.rs

/root/repo/target/debug/deps/libavtype-5b738aad39ddab33.rmeta: crates/avtype/src/bin/avtype.rs

crates/avtype/src/bin/avtype.rs:
