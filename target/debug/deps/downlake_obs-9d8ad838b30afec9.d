/root/repo/target/debug/deps/downlake_obs-9d8ad838b30afec9.d: /root/repo/clippy.toml crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_obs-9d8ad838b30afec9.rmeta: /root/repo/clippy.toml crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs Cargo.toml

/root/repo/clippy.toml:
crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/manifest.rs:
crates/obs/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
