/root/repo/target/debug/deps/rand-4b40c1e466279bcb.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4b40c1e466279bcb.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
