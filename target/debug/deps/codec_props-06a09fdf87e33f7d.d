/root/repo/target/debug/deps/codec_props-06a09fdf87e33f7d.d: crates/telemetry/tests/codec_props.rs

/root/repo/target/debug/deps/codec_props-06a09fdf87e33f7d: crates/telemetry/tests/codec_props.rs

crates/telemetry/tests/codec_props.rs:
