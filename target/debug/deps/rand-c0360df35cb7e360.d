/root/repo/target/debug/deps/rand-c0360df35cb7e360.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c0360df35cb7e360.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c0360df35cb7e360.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
