/root/repo/target/debug/deps/stats_props-7089d963558a84df.d: /root/repo/clippy.toml crates/analysis/tests/stats_props.rs Cargo.toml

/root/repo/target/debug/deps/libstats_props-7089d963558a84df.rmeta: /root/repo/clippy.toml crates/analysis/tests/stats_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/analysis/tests/stats_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
