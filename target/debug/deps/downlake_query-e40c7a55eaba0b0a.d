/root/repo/target/debug/deps/downlake_query-e40c7a55eaba0b0a.d: crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs

/root/repo/target/debug/deps/libdownlake_query-e40c7a55eaba0b0a.rmeta: crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs

crates/query/src/lib.rs:
crates/query/src/adjacency.rs:
crates/query/src/col.rs:
crates/query/src/dense.rs:
crates/query/src/key.rs:
crates/query/src/partition.rs:
crates/query/src/pipeline.rs:
crates/query/src/stamp.rs:
