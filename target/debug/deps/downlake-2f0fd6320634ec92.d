/root/repo/target/debug/deps/downlake-2f0fd6320634ec92.d: src/bin/downlake.rs

/root/repo/target/debug/deps/downlake-2f0fd6320634ec92: src/bin/downlake.rs

src/bin/downlake.rs:
