/root/repo/target/debug/deps/downlake_obs-47f1f43ede1f296b.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libdownlake_obs-47f1f43ede1f296b.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/manifest.rs:
crates/obs/src/registry.rs:
