/root/repo/target/debug/deps/downlake-ada26f20d367ea08.d: /root/repo/clippy.toml src/bin/downlake.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake-ada26f20d367ea08.rmeta: /root/repo/clippy.toml src/bin/downlake.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/downlake.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
