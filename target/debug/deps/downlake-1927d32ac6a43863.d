/root/repo/target/debug/deps/downlake-1927d32ac6a43863.d: src/bin/downlake.rs

/root/repo/target/debug/deps/libdownlake-1927d32ac6a43863.rmeta: src/bin/downlake.rs

src/bin/downlake.rs:
