/root/repo/target/debug/deps/partition_props-36e53cc78bd16aef.d: crates/exec/tests/partition_props.rs

/root/repo/target/debug/deps/libpartition_props-36e53cc78bd16aef.rmeta: crates/exec/tests/partition_props.rs

crates/exec/tests/partition_props.rs:
