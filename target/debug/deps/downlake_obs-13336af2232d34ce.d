/root/repo/target/debug/deps/downlake_obs-13336af2232d34ce.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libdownlake_obs-13336af2232d34ce.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/manifest.rs:
crates/obs/src/registry.rs:
