/root/repo/target/debug/deps/oracle_props-6054b6d497c02e1e.d: crates/groundtruth/tests/oracle_props.rs

/root/repo/target/debug/deps/oracle_props-6054b6d497c02e1e: crates/groundtruth/tests/oracle_props.rs

crates/groundtruth/tests/oracle_props.rs:
