/root/repo/target/debug/deps/partition_props-e5cbfaec2da3829c.d: crates/exec/tests/partition_props.rs

/root/repo/target/debug/deps/partition_props-e5cbfaec2da3829c: crates/exec/tests/partition_props.rs

crates/exec/tests/partition_props.rs:
