/root/repo/target/debug/deps/serde-d8587ea47c5f14ac.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d8587ea47c5f14ac.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
