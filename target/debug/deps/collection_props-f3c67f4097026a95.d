/root/repo/target/debug/deps/collection_props-f3c67f4097026a95.d: tests/collection_props.rs

/root/repo/target/debug/deps/libcollection_props-f3c67f4097026a95.rmeta: tests/collection_props.rs

tests/collection_props.rs:
