/root/repo/target/debug/deps/frame_merge_props-8669dc854d31088f.d: crates/analysis/tests/frame_merge_props.rs

/root/repo/target/debug/deps/libframe_merge_props-8669dc854d31088f.rmeta: crates/analysis/tests/frame_merge_props.rs

crates/analysis/tests/frame_merge_props.rs:
