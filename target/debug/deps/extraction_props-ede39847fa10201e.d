/root/repo/target/debug/deps/extraction_props-ede39847fa10201e.d: crates/features/tests/extraction_props.rs

/root/repo/target/debug/deps/extraction_props-ede39847fa10201e: crates/features/tests/extraction_props.rs

crates/features/tests/extraction_props.rs:
