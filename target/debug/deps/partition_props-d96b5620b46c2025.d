/root/repo/target/debug/deps/partition_props-d96b5620b46c2025.d: /root/repo/clippy.toml crates/exec/tests/partition_props.rs Cargo.toml

/root/repo/target/debug/deps/libpartition_props-d96b5620b46c2025.rmeta: /root/repo/clippy.toml crates/exec/tests/partition_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/exec/tests/partition_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
