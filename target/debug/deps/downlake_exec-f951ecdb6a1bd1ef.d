/root/repo/target/debug/deps/downlake_exec-f951ecdb6a1bd1ef.d: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

/root/repo/target/debug/deps/libdownlake_exec-f951ecdb6a1bd1ef.rlib: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

/root/repo/target/debug/deps/libdownlake_exec-f951ecdb6a1bd1ef.rmeta: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

crates/exec/src/lib.rs:
crates/exec/src/pool.rs:
crates/exec/src/seed.rs:
crates/exec/src/shard.rs:
