/root/repo/target/debug/deps/parallel-a27b0bffd9b92ba8.d: /root/repo/clippy.toml crates/bench/src/bin/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libparallel-a27b0bffd9b92ba8.rmeta: /root/repo/clippy.toml crates/bench/src/bin/parallel.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
