/root/repo/target/debug/deps/stats_props-a51c86148c7ce8b1.d: crates/analysis/tests/stats_props.rs

/root/repo/target/debug/deps/libstats_props-a51c86148c7ce8b1.rmeta: crates/analysis/tests/stats_props.rs

crates/analysis/tests/stats_props.rs:
