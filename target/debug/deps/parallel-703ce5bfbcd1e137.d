/root/repo/target/debug/deps/parallel-703ce5bfbcd1e137.d: crates/bench/src/bin/parallel.rs

/root/repo/target/debug/deps/libparallel-703ce5bfbcd1e137.rmeta: crates/bench/src/bin/parallel.rs

crates/bench/src/bin/parallel.rs:
