/root/repo/target/debug/deps/downlake-e021813088bb34d1.d: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake-e021813088bb34d1.rmeta: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/baselines.rs:
crates/core/src/experiments/evasion.rs:
crates/core/src/experiments/rules.rs:
crates/core/src/live.rs:
crates/core/src/pipeline.rs:
crates/core/src/render.rs:
crates/core/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
