/root/repo/target/debug/deps/zero_alloc-55ae95c29d9e0e93.d: crates/stream/tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-55ae95c29d9e0e93: crates/stream/tests/zero_alloc.rs

crates/stream/tests/zero_alloc.rs:
