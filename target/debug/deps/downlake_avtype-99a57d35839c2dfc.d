/root/repo/target/debug/deps/downlake_avtype-99a57d35839c2dfc.d: /root/repo/clippy.toml crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_avtype-99a57d35839c2dfc.rmeta: /root/repo/clippy.toml crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs Cargo.toml

/root/repo/clippy.toml:
crates/avtype/src/lib.rs:
crates/avtype/src/behavior.rs:
crates/avtype/src/family.rs:
crates/avtype/src/map.rs:
crates/avtype/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
