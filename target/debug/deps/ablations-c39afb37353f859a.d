/root/repo/target/debug/deps/ablations-c39afb37353f859a.d: /root/repo/clippy.toml crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-c39afb37353f859a.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
