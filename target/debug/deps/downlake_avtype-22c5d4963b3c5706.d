/root/repo/target/debug/deps/downlake_avtype-22c5d4963b3c5706.d: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

/root/repo/target/debug/deps/libdownlake_avtype-22c5d4963b3c5706.rlib: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

/root/repo/target/debug/deps/libdownlake_avtype-22c5d4963b3c5706.rmeta: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

crates/avtype/src/lib.rs:
crates/avtype/src/behavior.rs:
crates/avtype/src/family.rs:
crates/avtype/src/map.rs:
crates/avtype/src/parse.rs:
