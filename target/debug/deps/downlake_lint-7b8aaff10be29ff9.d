/root/repo/target/debug/deps/downlake_lint-7b8aaff10be29ff9.d: /root/repo/clippy.toml crates/lint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_lint-7b8aaff10be29ff9.rmeta: /root/repo/clippy.toml crates/lint/src/main.rs Cargo.toml

/root/repo/clippy.toml:
crates/lint/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
