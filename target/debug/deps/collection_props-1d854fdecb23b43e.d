/root/repo/target/debug/deps/collection_props-1d854fdecb23b43e.d: /root/repo/clippy.toml tests/collection_props.rs Cargo.toml

/root/repo/target/debug/deps/libcollection_props-1d854fdecb23b43e.rmeta: /root/repo/clippy.toml tests/collection_props.rs Cargo.toml

/root/repo/clippy.toml:
tests/collection_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
