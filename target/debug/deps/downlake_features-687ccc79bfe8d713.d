/root/repo/target/debug/deps/downlake_features-687ccc79bfe8d713.d: crates/features/src/lib.rs

/root/repo/target/debug/deps/downlake_features-687ccc79bfe8d713: crates/features/src/lib.rs

crates/features/src/lib.rs:
