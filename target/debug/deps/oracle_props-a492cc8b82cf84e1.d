/root/repo/target/debug/deps/oracle_props-a492cc8b82cf84e1.d: /root/repo/clippy.toml crates/groundtruth/tests/oracle_props.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_props-a492cc8b82cf84e1.rmeta: /root/repo/clippy.toml crates/groundtruth/tests/oracle_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/groundtruth/tests/oracle_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
