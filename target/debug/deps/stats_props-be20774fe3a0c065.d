/root/repo/target/debug/deps/stats_props-be20774fe3a0c065.d: crates/analysis/tests/stats_props.rs

/root/repo/target/debug/deps/stats_props-be20774fe3a0c065: crates/analysis/tests/stats_props.rs

crates/analysis/tests/stats_props.rs:
