/root/repo/target/debug/deps/thread_matrix-c33320171b72d474.d: /root/repo/clippy.toml tests/thread_matrix.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libthread_matrix-c33320171b72d474.rmeta: /root/repo/clippy.toml tests/thread_matrix.rs tests/common/mod.rs Cargo.toml

/root/repo/clippy.toml:
tests/thread_matrix.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
