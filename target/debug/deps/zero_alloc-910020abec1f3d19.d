/root/repo/target/debug/deps/zero_alloc-910020abec1f3d19.d: /root/repo/clippy.toml crates/stream/tests/zero_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libzero_alloc-910020abec1f3d19.rmeta: /root/repo/clippy.toml crates/stream/tests/zero_alloc.rs Cargo.toml

/root/repo/clippy.toml:
crates/stream/tests/zero_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
