/root/repo/target/debug/deps/avtype-dfaaf2706eebf467.d: crates/avtype/src/bin/avtype.rs

/root/repo/target/debug/deps/avtype-dfaaf2706eebf467: crates/avtype/src/bin/avtype.rs

crates/avtype/src/bin/avtype.rs:
