/root/repo/target/debug/deps/downlake_stream-99560768238acd60.d: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

/root/repo/target/debug/deps/libdownlake_stream-99560768238acd60.rlib: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

/root/repo/target/debug/deps/libdownlake_stream-99560768238acd60.rmeta: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

crates/stream/src/lib.rs:
crates/stream/src/collector.rs:
crates/stream/src/engine.rs:
crates/stream/src/online.rs:
crates/stream/src/session.rs:
