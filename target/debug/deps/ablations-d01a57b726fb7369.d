/root/repo/target/debug/deps/ablations-d01a57b726fb7369.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-d01a57b726fb7369.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
