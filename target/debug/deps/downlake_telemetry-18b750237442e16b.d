/root/repo/target/debug/deps/downlake_telemetry-18b750237442e16b.d: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

/root/repo/target/debug/deps/libdownlake_telemetry-18b750237442e16b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/codec.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/server.rs:
crates/telemetry/src/tables.rs:
