/root/repo/target/debug/deps/proptest-3ffbd1b64d616713.d: /tmp/stubs/proptest/src/lib.rs /tmp/stubs/proptest/src/arbitrary.rs /tmp/stubs/proptest/src/bool.rs /tmp/stubs/proptest/src/collection.rs /tmp/stubs/proptest/src/option.rs /tmp/stubs/proptest/src/prelude.rs /tmp/stubs/proptest/src/regex.rs /tmp/stubs/proptest/src/rng.rs /tmp/stubs/proptest/src/sample.rs /tmp/stubs/proptest/src/strategy.rs /tmp/stubs/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-3ffbd1b64d616713.rlib: /tmp/stubs/proptest/src/lib.rs /tmp/stubs/proptest/src/arbitrary.rs /tmp/stubs/proptest/src/bool.rs /tmp/stubs/proptest/src/collection.rs /tmp/stubs/proptest/src/option.rs /tmp/stubs/proptest/src/prelude.rs /tmp/stubs/proptest/src/regex.rs /tmp/stubs/proptest/src/rng.rs /tmp/stubs/proptest/src/sample.rs /tmp/stubs/proptest/src/strategy.rs /tmp/stubs/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-3ffbd1b64d616713.rmeta: /tmp/stubs/proptest/src/lib.rs /tmp/stubs/proptest/src/arbitrary.rs /tmp/stubs/proptest/src/bool.rs /tmp/stubs/proptest/src/collection.rs /tmp/stubs/proptest/src/option.rs /tmp/stubs/proptest/src/prelude.rs /tmp/stubs/proptest/src/regex.rs /tmp/stubs/proptest/src/rng.rs /tmp/stubs/proptest/src/sample.rs /tmp/stubs/proptest/src/strategy.rs /tmp/stubs/proptest/src/test_runner.rs

/tmp/stubs/proptest/src/lib.rs:
/tmp/stubs/proptest/src/arbitrary.rs:
/tmp/stubs/proptest/src/bool.rs:
/tmp/stubs/proptest/src/collection.rs:
/tmp/stubs/proptest/src/option.rs:
/tmp/stubs/proptest/src/prelude.rs:
/tmp/stubs/proptest/src/regex.rs:
/tmp/stubs/proptest/src/rng.rs:
/tmp/stubs/proptest/src/sample.rs:
/tmp/stubs/proptest/src/strategy.rs:
/tmp/stubs/proptest/src/test_runner.rs:
