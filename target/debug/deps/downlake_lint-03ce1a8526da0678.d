/root/repo/target/debug/deps/downlake_lint-03ce1a8526da0678.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/downlake_lint-03ce1a8526da0678: crates/lint/src/main.rs

crates/lint/src/main.rs:
