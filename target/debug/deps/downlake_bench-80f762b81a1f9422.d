/root/repo/target/debug/deps/downlake_bench-80f762b81a1f9422.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdownlake_bench-80f762b81a1f9422.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdownlake_bench-80f762b81a1f9422.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/report.rs:
