/root/repo/target/debug/deps/ablations-018ecb30dad0acc4.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-018ecb30dad0acc4.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
