/root/repo/target/debug/deps/downlake_groundtruth-5d148824a82cd1b0.d: /root/repo/clippy.toml crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_groundtruth-5d148824a82cd1b0.rmeta: /root/repo/clippy.toml crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs Cargo.toml

/root/repo/clippy.toml:
crates/groundtruth/src/lib.rs:
crates/groundtruth/src/engines.rs:
crates/groundtruth/src/labeler.rs:
crates/groundtruth/src/oracle.rs:
crates/groundtruth/src/scan.rs:
crates/groundtruth/src/urllabel.rs:
crates/groundtruth/src/whitelist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
