/root/repo/target/debug/deps/downlake_avtype-773ac17ad010ca87.d: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

/root/repo/target/debug/deps/downlake_avtype-773ac17ad010ca87: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

crates/avtype/src/lib.rs:
crates/avtype/src/behavior.rs:
crates/avtype/src/family.rs:
crates/avtype/src/map.rs:
crates/avtype/src/parse.rs:
