/root/repo/target/debug/deps/properties-7814047059edd6ff.d: /root/repo/clippy.toml crates/avtype/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7814047059edd6ff.rmeta: /root/repo/clippy.toml crates/avtype/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/avtype/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
