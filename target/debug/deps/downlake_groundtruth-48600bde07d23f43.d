/root/repo/target/debug/deps/downlake_groundtruth-48600bde07d23f43.d: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

/root/repo/target/debug/deps/libdownlake_groundtruth-48600bde07d23f43.rmeta: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

crates/groundtruth/src/lib.rs:
crates/groundtruth/src/engines.rs:
crates/groundtruth/src/labeler.rs:
crates/groundtruth/src/oracle.rs:
crates/groundtruth/src/scan.rs:
crates/groundtruth/src/urllabel.rs:
crates/groundtruth/src/whitelist.rs:
