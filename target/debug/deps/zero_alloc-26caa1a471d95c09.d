/root/repo/target/debug/deps/zero_alloc-26caa1a471d95c09.d: crates/stream/tests/zero_alloc.rs

/root/repo/target/debug/deps/libzero_alloc-26caa1a471d95c09.rmeta: crates/stream/tests/zero_alloc.rs

crates/stream/tests/zero_alloc.rs:
