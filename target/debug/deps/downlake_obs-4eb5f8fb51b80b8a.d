/root/repo/target/debug/deps/downlake_obs-4eb5f8fb51b80b8a.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libdownlake_obs-4eb5f8fb51b80b8a.rlib: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libdownlake_obs-4eb5f8fb51b80b8a.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/manifest.rs:
crates/obs/src/registry.rs:
