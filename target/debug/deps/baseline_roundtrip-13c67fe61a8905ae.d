/root/repo/target/debug/deps/baseline_roundtrip-13c67fe61a8905ae.d: crates/lint/tests/baseline_roundtrip.rs

/root/repo/target/debug/deps/libbaseline_roundtrip-13c67fe61a8905ae.rmeta: crates/lint/tests/baseline_roundtrip.rs

crates/lint/tests/baseline_roundtrip.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
