/root/repo/target/debug/deps/downlake_bench-a652774106059ace.d: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_bench-a652774106059ace.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
