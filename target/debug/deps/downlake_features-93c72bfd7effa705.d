/root/repo/target/debug/deps/downlake_features-93c72bfd7effa705.d: /root/repo/clippy.toml crates/features/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_features-93c72bfd7effa705.rmeta: /root/repo/clippy.toml crates/features/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/features/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
