/root/repo/target/debug/deps/ablations-8c4d1926057add47.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-8c4d1926057add47.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
