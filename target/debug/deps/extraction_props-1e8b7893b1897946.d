/root/repo/target/debug/deps/extraction_props-1e8b7893b1897946.d: crates/features/tests/extraction_props.rs

/root/repo/target/debug/deps/libextraction_props-1e8b7893b1897946.rmeta: crates/features/tests/extraction_props.rs

crates/features/tests/extraction_props.rs:
