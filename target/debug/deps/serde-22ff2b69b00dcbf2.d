/root/repo/target/debug/deps/serde-22ff2b69b00dcbf2.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-22ff2b69b00dcbf2.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-22ff2b69b00dcbf2.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
