/root/repo/target/debug/deps/stream-a6b0cc3e49c98139.d: crates/bench/src/bin/stream.rs

/root/repo/target/debug/deps/libstream-a6b0cc3e49c98139.rmeta: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
