/root/repo/target/debug/deps/downlake_rulelearn-cbecf35de802df26.d: /root/repo/clippy.toml crates/rulelearn/src/lib.rs crates/rulelearn/src/data.rs crates/rulelearn/src/entropy.rs crates/rulelearn/src/metrics.rs crates/rulelearn/src/part.rs crates/rulelearn/src/rule.rs crates/rulelearn/src/ruleset.rs crates/rulelearn/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libdownlake_rulelearn-cbecf35de802df26.rmeta: /root/repo/clippy.toml crates/rulelearn/src/lib.rs crates/rulelearn/src/data.rs crates/rulelearn/src/entropy.rs crates/rulelearn/src/metrics.rs crates/rulelearn/src/part.rs crates/rulelearn/src/rule.rs crates/rulelearn/src/ruleset.rs crates/rulelearn/src/tree.rs Cargo.toml

/root/repo/clippy.toml:
crates/rulelearn/src/lib.rs:
crates/rulelearn/src/data.rs:
crates/rulelearn/src/entropy.rs:
crates/rulelearn/src/metrics.rs:
crates/rulelearn/src/part.rs:
crates/rulelearn/src/rule.rs:
crates/rulelearn/src/ruleset.rs:
crates/rulelearn/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
