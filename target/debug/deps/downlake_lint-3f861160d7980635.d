/root/repo/target/debug/deps/downlake_lint-3f861160d7980635.d: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

/root/repo/target/debug/deps/downlake_lint-3f861160d7980635: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

crates/lint/src/lib.rs:
crates/lint/src/baseline.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
crates/lint/src/scan.rs:
crates/lint/src/walk.rs:
