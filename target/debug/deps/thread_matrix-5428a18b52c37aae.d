/root/repo/target/debug/deps/thread_matrix-5428a18b52c37aae.d: tests/thread_matrix.rs tests/common/mod.rs

/root/repo/target/debug/deps/thread_matrix-5428a18b52c37aae: tests/thread_matrix.rs tests/common/mod.rs

tests/thread_matrix.rs:
tests/common/mod.rs:
