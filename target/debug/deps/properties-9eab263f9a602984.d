/root/repo/target/debug/deps/properties-9eab263f9a602984.d: /root/repo/clippy.toml crates/types/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9eab263f9a602984.rmeta: /root/repo/clippy.toml crates/types/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/types/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
