/root/repo/target/debug/deps/extraction_props-51310d5cb8ad0316.d: /root/repo/clippy.toml crates/features/tests/extraction_props.rs Cargo.toml

/root/repo/target/debug/deps/libextraction_props-51310d5cb8ad0316.rmeta: /root/repo/clippy.toml crates/features/tests/extraction_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/features/tests/extraction_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
