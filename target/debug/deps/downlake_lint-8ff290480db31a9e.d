/root/repo/target/debug/deps/downlake_lint-8ff290480db31a9e.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/libdownlake_lint-8ff290480db31a9e.rmeta: crates/lint/src/main.rs

crates/lint/src/main.rs:
