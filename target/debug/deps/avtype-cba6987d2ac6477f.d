/root/repo/target/debug/deps/avtype-cba6987d2ac6477f.d: /root/repo/clippy.toml crates/avtype/src/bin/avtype.rs Cargo.toml

/root/repo/target/debug/deps/libavtype-cba6987d2ac6477f.rmeta: /root/repo/clippy.toml crates/avtype/src/bin/avtype.rs Cargo.toml

/root/repo/clippy.toml:
crates/avtype/src/bin/avtype.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
