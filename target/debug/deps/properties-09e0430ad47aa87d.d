/root/repo/target/debug/deps/properties-09e0430ad47aa87d.d: crates/avtype/tests/properties.rs

/root/repo/target/debug/deps/libproperties-09e0430ad47aa87d.rmeta: crates/avtype/tests/properties.rs

crates/avtype/tests/properties.rs:
