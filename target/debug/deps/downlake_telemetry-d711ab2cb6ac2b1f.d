/root/repo/target/debug/deps/downlake_telemetry-d711ab2cb6ac2b1f.d: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

/root/repo/target/debug/deps/downlake_telemetry-d711ab2cb6ac2b1f: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/codec.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/server.rs:
crates/telemetry/src/tables.rs:
