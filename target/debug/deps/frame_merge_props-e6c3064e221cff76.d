/root/repo/target/debug/deps/frame_merge_props-e6c3064e221cff76.d: crates/analysis/tests/frame_merge_props.rs

/root/repo/target/debug/deps/frame_merge_props-e6c3064e221cff76: crates/analysis/tests/frame_merge_props.rs

crates/analysis/tests/frame_merge_props.rs:
