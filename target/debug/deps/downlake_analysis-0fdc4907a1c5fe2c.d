/root/repo/target/debug/deps/downlake_analysis-0fdc4907a1c5fe2c.d: crates/analysis/src/lib.rs crates/analysis/src/domains.rs crates/analysis/src/escalation.rs crates/analysis/src/frame.rs crates/analysis/src/labels.rs crates/analysis/src/legacy.rs crates/analysis/src/monthly.rs crates/analysis/src/packers.rs crates/analysis/src/prevalence.rs crates/analysis/src/processes.rs crates/analysis/src/signers.rs crates/analysis/src/stats.rs

/root/repo/target/debug/deps/downlake_analysis-0fdc4907a1c5fe2c: crates/analysis/src/lib.rs crates/analysis/src/domains.rs crates/analysis/src/escalation.rs crates/analysis/src/frame.rs crates/analysis/src/labels.rs crates/analysis/src/legacy.rs crates/analysis/src/monthly.rs crates/analysis/src/packers.rs crates/analysis/src/prevalence.rs crates/analysis/src/processes.rs crates/analysis/src/signers.rs crates/analysis/src/stats.rs

crates/analysis/src/lib.rs:
crates/analysis/src/domains.rs:
crates/analysis/src/escalation.rs:
crates/analysis/src/frame.rs:
crates/analysis/src/labels.rs:
crates/analysis/src/legacy.rs:
crates/analysis/src/monthly.rs:
crates/analysis/src/packers.rs:
crates/analysis/src/prevalence.rs:
crates/analysis/src/processes.rs:
crates/analysis/src/signers.rs:
crates/analysis/src/stats.rs:
