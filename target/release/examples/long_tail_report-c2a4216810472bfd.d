/root/repo/target/release/examples/long_tail_report-c2a4216810472bfd.d: examples/long_tail_report.rs

/root/repo/target/release/examples/long_tail_report-c2a4216810472bfd: examples/long_tail_report.rs

examples/long_tail_report.rs:
