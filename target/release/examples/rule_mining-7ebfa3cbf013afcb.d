/root/repo/target/release/examples/rule_mining-7ebfa3cbf013afcb.d: examples/rule_mining.rs

/root/repo/target/release/examples/rule_mining-7ebfa3cbf013afcb: examples/rule_mining.rs

examples/rule_mining.rs:
