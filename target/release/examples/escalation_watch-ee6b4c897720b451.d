/root/repo/target/release/examples/escalation_watch-ee6b4c897720b451.d: examples/escalation_watch.rs

/root/repo/target/release/examples/escalation_watch-ee6b4c897720b451: examples/escalation_watch.rs

examples/escalation_watch.rs:
