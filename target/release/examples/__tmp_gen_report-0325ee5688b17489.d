/root/repo/target/release/examples/__tmp_gen_report-0325ee5688b17489.d: examples/__tmp_gen_report.rs

/root/repo/target/release/examples/__tmp_gen_report-0325ee5688b17489: examples/__tmp_gen_report.rs

examples/__tmp_gen_report.rs:
