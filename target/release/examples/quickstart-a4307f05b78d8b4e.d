/root/repo/target/release/examples/quickstart-a4307f05b78d8b4e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a4307f05b78d8b4e: examples/quickstart.rs

examples/quickstart.rs:
