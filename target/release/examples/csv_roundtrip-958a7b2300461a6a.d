/root/repo/target/release/examples/csv_roundtrip-958a7b2300461a6a.d: examples/csv_roundtrip.rs

/root/repo/target/release/examples/csv_roundtrip-958a7b2300461a6a: examples/csv_roundtrip.rs

examples/csv_roundtrip.rs:
