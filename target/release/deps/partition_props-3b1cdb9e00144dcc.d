/root/repo/target/release/deps/partition_props-3b1cdb9e00144dcc.d: crates/exec/tests/partition_props.rs

/root/repo/target/release/deps/partition_props-3b1cdb9e00144dcc: crates/exec/tests/partition_props.rs

crates/exec/tests/partition_props.rs:
