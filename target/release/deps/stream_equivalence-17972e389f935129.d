/root/repo/target/release/deps/stream_equivalence-17972e389f935129.d: tests/stream_equivalence.rs tests/common/mod.rs

/root/repo/target/release/deps/stream_equivalence-17972e389f935129: tests/stream_equivalence.rs tests/common/mod.rs

tests/stream_equivalence.rs:
tests/common/mod.rs:
