/root/repo/target/release/deps/query_props-e4461d027764a078.d: crates/query/tests/query_props.rs

/root/repo/target/release/deps/query_props-e4461d027764a078: crates/query/tests/query_props.rs

crates/query/tests/query_props.rs:
