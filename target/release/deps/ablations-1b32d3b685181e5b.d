/root/repo/target/release/deps/ablations-1b32d3b685181e5b.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-1b32d3b685181e5b: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
