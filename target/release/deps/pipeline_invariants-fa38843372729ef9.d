/root/repo/target/release/deps/pipeline_invariants-fa38843372729ef9.d: tests/pipeline_invariants.rs tests/common/mod.rs

/root/repo/target/release/deps/pipeline_invariants-fa38843372729ef9: tests/pipeline_invariants.rs tests/common/mod.rs

tests/pipeline_invariants.rs:
tests/common/mod.rs:
