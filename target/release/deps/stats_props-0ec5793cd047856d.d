/root/repo/target/release/deps/stats_props-0ec5793cd047856d.d: crates/analysis/tests/stats_props.rs

/root/repo/target/release/deps/stats_props-0ec5793cd047856d: crates/analysis/tests/stats_props.rs

crates/analysis/tests/stats_props.rs:
