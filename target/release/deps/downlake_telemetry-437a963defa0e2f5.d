/root/repo/target/release/deps/downlake_telemetry-437a963defa0e2f5.d: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

/root/repo/target/release/deps/downlake_telemetry-437a963defa0e2f5: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/codec.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/server.rs:
crates/telemetry/src/tables.rs:
