/root/repo/target/release/deps/downlake_rulelearn-5d19e6d957c764b7.d: crates/rulelearn/src/lib.rs crates/rulelearn/src/data.rs crates/rulelearn/src/entropy.rs crates/rulelearn/src/metrics.rs crates/rulelearn/src/part.rs crates/rulelearn/src/rule.rs crates/rulelearn/src/ruleset.rs crates/rulelearn/src/tree.rs

/root/repo/target/release/deps/downlake_rulelearn-5d19e6d957c764b7: crates/rulelearn/src/lib.rs crates/rulelearn/src/data.rs crates/rulelearn/src/entropy.rs crates/rulelearn/src/metrics.rs crates/rulelearn/src/part.rs crates/rulelearn/src/rule.rs crates/rulelearn/src/ruleset.rs crates/rulelearn/src/tree.rs

crates/rulelearn/src/lib.rs:
crates/rulelearn/src/data.rs:
crates/rulelearn/src/entropy.rs:
crates/rulelearn/src/metrics.rs:
crates/rulelearn/src/part.rs:
crates/rulelearn/src/rule.rs:
crates/rulelearn/src/ruleset.rs:
crates/rulelearn/src/tree.rs:
