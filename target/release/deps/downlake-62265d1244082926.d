/root/repo/target/release/deps/downlake-62265d1244082926.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs

/root/repo/target/release/deps/libdownlake-62265d1244082926.rlib: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs

/root/repo/target/release/deps/libdownlake-62265d1244082926.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/baselines.rs:
crates/core/src/experiments/evasion.rs:
crates/core/src/experiments/rules.rs:
crates/core/src/live.rs:
crates/core/src/pipeline.rs:
crates/core/src/render.rs:
crates/core/src/report.rs:
