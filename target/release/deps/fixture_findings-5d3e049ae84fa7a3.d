/root/repo/target/release/deps/fixture_findings-5d3e049ae84fa7a3.d: crates/lint/tests/fixture_findings.rs

/root/repo/target/release/deps/fixture_findings-5d3e049ae84fa7a3: crates/lint/tests/fixture_findings.rs

crates/lint/tests/fixture_findings.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
