/root/repo/target/release/deps/downlake-f7d1e50c37d57469.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs

/root/repo/target/release/deps/libdownlake-f7d1e50c37d57469.rlib: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs

/root/repo/target/release/deps/libdownlake-f7d1e50c37d57469.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/baselines.rs:
crates/core/src/experiments/evasion.rs:
crates/core/src/experiments/rules.rs:
crates/core/src/live.rs:
crates/core/src/pipeline.rs:
crates/core/src/render.rs:
crates/core/src/report.rs:
