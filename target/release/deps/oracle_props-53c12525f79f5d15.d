/root/repo/target/release/deps/oracle_props-53c12525f79f5d15.d: crates/groundtruth/tests/oracle_props.rs

/root/repo/target/release/deps/oracle_props-53c12525f79f5d15: crates/groundtruth/tests/oracle_props.rs

crates/groundtruth/tests/oracle_props.rs:
