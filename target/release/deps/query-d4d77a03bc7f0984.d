/root/repo/target/release/deps/query-d4d77a03bc7f0984.d: crates/bench/src/bin/query.rs

/root/repo/target/release/deps/query-d4d77a03bc7f0984: crates/bench/src/bin/query.rs

crates/bench/src/bin/query.rs:
