/root/repo/target/release/deps/downlake_lint-e199ca19b582b9c3.d: crates/lint/src/main.rs

/root/repo/target/release/deps/downlake_lint-e199ca19b582b9c3: crates/lint/src/main.rs

crates/lint/src/main.rs:
