/root/repo/target/release/deps/query-76fede02dcaebf10.d: crates/bench/src/bin/query.rs

/root/repo/target/release/deps/query-76fede02dcaebf10: crates/bench/src/bin/query.rs

crates/bench/src/bin/query.rs:
