/root/repo/target/release/deps/obs_manifest-44e83b1ea7bc2dfc.d: tests/obs_manifest.rs tests/common/mod.rs

/root/repo/target/release/deps/obs_manifest-44e83b1ea7bc2dfc: tests/obs_manifest.rs tests/common/mod.rs

tests/obs_manifest.rs:
tests/common/mod.rs:
