/root/repo/target/release/deps/stream-968b85d0e07d2521.d: crates/bench/src/bin/stream.rs

/root/repo/target/release/deps/stream-968b85d0e07d2521: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
