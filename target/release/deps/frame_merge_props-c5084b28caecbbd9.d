/root/repo/target/release/deps/frame_merge_props-c5084b28caecbbd9.d: crates/analysis/tests/frame_merge_props.rs

/root/repo/target/release/deps/frame_merge_props-c5084b28caecbbd9: crates/analysis/tests/frame_merge_props.rs

crates/analysis/tests/frame_merge_props.rs:
