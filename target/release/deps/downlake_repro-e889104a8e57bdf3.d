/root/repo/target/release/deps/downlake_repro-e889104a8e57bdf3.d: src/lib.rs

/root/repo/target/release/deps/downlake_repro-e889104a8e57bdf3: src/lib.rs

src/lib.rs:
