/root/repo/target/release/deps/downlake_lint-5fb02cb4c2f697fd.d: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

/root/repo/target/release/deps/libdownlake_lint-5fb02cb4c2f697fd.rlib: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

/root/repo/target/release/deps/libdownlake_lint-5fb02cb4c2f697fd.rmeta: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

crates/lint/src/lib.rs:
crates/lint/src/baseline.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
crates/lint/src/scan.rs:
crates/lint/src/walk.rs:
