/root/repo/target/release/deps/properties-8192660e7839c3c1.d: crates/rulelearn/tests/properties.rs

/root/repo/target/release/deps/properties-8192660e7839c3c1: crates/rulelearn/tests/properties.rs

crates/rulelearn/tests/properties.rs:
