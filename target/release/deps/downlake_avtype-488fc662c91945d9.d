/root/repo/target/release/deps/downlake_avtype-488fc662c91945d9.d: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

/root/repo/target/release/deps/downlake_avtype-488fc662c91945d9: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

crates/avtype/src/lib.rs:
crates/avtype/src/behavior.rs:
crates/avtype/src/family.rs:
crates/avtype/src/map.rs:
crates/avtype/src/parse.rs:
