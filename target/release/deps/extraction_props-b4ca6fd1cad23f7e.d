/root/repo/target/release/deps/extraction_props-b4ca6fd1cad23f7e.d: crates/features/tests/extraction_props.rs

/root/repo/target/release/deps/extraction_props-b4ca6fd1cad23f7e: crates/features/tests/extraction_props.rs

crates/features/tests/extraction_props.rs:
