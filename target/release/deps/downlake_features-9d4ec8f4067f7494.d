/root/repo/target/release/deps/downlake_features-9d4ec8f4067f7494.d: crates/features/src/lib.rs

/root/repo/target/release/deps/libdownlake_features-9d4ec8f4067f7494.rlib: crates/features/src/lib.rs

/root/repo/target/release/deps/libdownlake_features-9d4ec8f4067f7494.rmeta: crates/features/src/lib.rs

crates/features/src/lib.rs:
