/root/repo/target/release/deps/parallel-0baa9c09c4bb557f.d: crates/bench/src/bin/parallel.rs

/root/repo/target/release/deps/parallel-0baa9c09c4bb557f: crates/bench/src/bin/parallel.rs

crates/bench/src/bin/parallel.rs:
