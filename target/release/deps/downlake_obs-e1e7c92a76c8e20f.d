/root/repo/target/release/deps/downlake_obs-e1e7c92a76c8e20f.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

/root/repo/target/release/deps/libdownlake_obs-e1e7c92a76c8e20f.rlib: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

/root/repo/target/release/deps/libdownlake_obs-e1e7c92a76c8e20f.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/manifest.rs:
crates/obs/src/registry.rs:
