/root/repo/target/release/deps/downlake_telemetry-10e19faefc5dafee.d: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

/root/repo/target/release/deps/libdownlake_telemetry-10e19faefc5dafee.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

/root/repo/target/release/deps/libdownlake_telemetry-10e19faefc5dafee.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/codec.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/event.rs crates/telemetry/src/record.rs crates/telemetry/src/server.rs crates/telemetry/src/tables.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/codec.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/server.rs:
crates/telemetry/src/tables.rs:
