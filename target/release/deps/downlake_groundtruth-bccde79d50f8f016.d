/root/repo/target/release/deps/downlake_groundtruth-bccde79d50f8f016.d: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

/root/repo/target/release/deps/libdownlake_groundtruth-bccde79d50f8f016.rlib: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

/root/repo/target/release/deps/libdownlake_groundtruth-bccde79d50f8f016.rmeta: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

crates/groundtruth/src/lib.rs:
crates/groundtruth/src/engines.rs:
crates/groundtruth/src/labeler.rs:
crates/groundtruth/src/oracle.rs:
crates/groundtruth/src/scan.rs:
crates/groundtruth/src/urllabel.rs:
crates/groundtruth/src/whitelist.rs:
