/root/repo/target/release/deps/avtype-866829b44447db84.d: crates/avtype/src/bin/avtype.rs

/root/repo/target/release/deps/avtype-866829b44447db84: crates/avtype/src/bin/avtype.rs

crates/avtype/src/bin/avtype.rs:
