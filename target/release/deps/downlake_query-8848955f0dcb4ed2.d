/root/repo/target/release/deps/downlake_query-8848955f0dcb4ed2.d: crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs

/root/repo/target/release/deps/downlake_query-8848955f0dcb4ed2: crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs

crates/query/src/lib.rs:
crates/query/src/adjacency.rs:
crates/query/src/col.rs:
crates/query/src/dense.rs:
crates/query/src/key.rs:
crates/query/src/partition.rs:
crates/query/src/pipeline.rs:
crates/query/src/stamp.rs:
