/root/repo/target/release/deps/downlake_lint-dc1a0f5c49dbd571.d: crates/lint/src/main.rs

/root/repo/target/release/deps/downlake_lint-dc1a0f5c49dbd571: crates/lint/src/main.rs

crates/lint/src/main.rs:
