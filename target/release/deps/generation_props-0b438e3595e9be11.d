/root/repo/target/release/deps/generation_props-0b438e3595e9be11.d: crates/synth/tests/generation_props.rs

/root/repo/target/release/deps/generation_props-0b438e3595e9be11: crates/synth/tests/generation_props.rs

crates/synth/tests/generation_props.rs:
