/root/repo/target/release/deps/downlake_exec-37fc65fe6e89fa7d.d: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

/root/repo/target/release/deps/libdownlake_exec-37fc65fe6e89fa7d.rlib: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

/root/repo/target/release/deps/libdownlake_exec-37fc65fe6e89fa7d.rmeta: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

crates/exec/src/lib.rs:
crates/exec/src/pool.rs:
crates/exec/src/seed.rs:
crates/exec/src/shard.rs:
