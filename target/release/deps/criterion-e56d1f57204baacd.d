/root/repo/target/release/deps/criterion-e56d1f57204baacd.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e56d1f57204baacd.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e56d1f57204baacd.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
