/root/repo/target/release/deps/downlake_rulelearn-e972fadc64a84fd8.d: crates/rulelearn/src/lib.rs crates/rulelearn/src/data.rs crates/rulelearn/src/entropy.rs crates/rulelearn/src/metrics.rs crates/rulelearn/src/part.rs crates/rulelearn/src/rule.rs crates/rulelearn/src/ruleset.rs crates/rulelearn/src/tree.rs

/root/repo/target/release/deps/libdownlake_rulelearn-e972fadc64a84fd8.rlib: crates/rulelearn/src/lib.rs crates/rulelearn/src/data.rs crates/rulelearn/src/entropy.rs crates/rulelearn/src/metrics.rs crates/rulelearn/src/part.rs crates/rulelearn/src/rule.rs crates/rulelearn/src/ruleset.rs crates/rulelearn/src/tree.rs

/root/repo/target/release/deps/libdownlake_rulelearn-e972fadc64a84fd8.rmeta: crates/rulelearn/src/lib.rs crates/rulelearn/src/data.rs crates/rulelearn/src/entropy.rs crates/rulelearn/src/metrics.rs crates/rulelearn/src/part.rs crates/rulelearn/src/rule.rs crates/rulelearn/src/ruleset.rs crates/rulelearn/src/tree.rs

crates/rulelearn/src/lib.rs:
crates/rulelearn/src/data.rs:
crates/rulelearn/src/entropy.rs:
crates/rulelearn/src/metrics.rs:
crates/rulelearn/src/part.rs:
crates/rulelearn/src/rule.rs:
crates/rulelearn/src/ruleset.rs:
crates/rulelearn/src/tree.rs:
