/root/repo/target/release/deps/downlake_bench-a8465288f8c88309.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libdownlake_bench-a8465288f8c88309.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libdownlake_bench-a8465288f8c88309.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/report.rs:
