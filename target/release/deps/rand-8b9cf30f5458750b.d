/root/repo/target/release/deps/rand-8b9cf30f5458750b.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-8b9cf30f5458750b.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-8b9cf30f5458750b.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
