/root/repo/target/release/deps/downlake_stream-ce8fb63ed5a2b236.d: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

/root/repo/target/release/deps/downlake_stream-ce8fb63ed5a2b236: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

crates/stream/src/lib.rs:
crates/stream/src/collector.rs:
crates/stream/src/engine.rs:
crates/stream/src/online.rs:
crates/stream/src/session.rs:
