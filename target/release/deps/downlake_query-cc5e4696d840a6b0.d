/root/repo/target/release/deps/downlake_query-cc5e4696d840a6b0.d: crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs

/root/repo/target/release/deps/libdownlake_query-cc5e4696d840a6b0.rlib: crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs

/root/repo/target/release/deps/libdownlake_query-cc5e4696d840a6b0.rmeta: crates/query/src/lib.rs crates/query/src/adjacency.rs crates/query/src/col.rs crates/query/src/dense.rs crates/query/src/key.rs crates/query/src/partition.rs crates/query/src/pipeline.rs crates/query/src/stamp.rs

crates/query/src/lib.rs:
crates/query/src/adjacency.rs:
crates/query/src/col.rs:
crates/query/src/dense.rs:
crates/query/src/key.rs:
crates/query/src/partition.rs:
crates/query/src/pipeline.rs:
crates/query/src/stamp.rs:
