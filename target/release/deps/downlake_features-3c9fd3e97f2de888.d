/root/repo/target/release/deps/downlake_features-3c9fd3e97f2de888.d: crates/features/src/lib.rs

/root/repo/target/release/deps/downlake_features-3c9fd3e97f2de888: crates/features/src/lib.rs

crates/features/src/lib.rs:
