/root/repo/target/release/deps/golden_report-b878f4af4e21b773.d: tests/golden_report.rs tests/common/mod.rs

/root/repo/target/release/deps/golden_report-b878f4af4e21b773: tests/golden_report.rs tests/common/mod.rs

tests/golden_report.rs:
tests/common/mod.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
