/root/repo/target/release/deps/serde-c2955a1c02ce2e0e.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c2955a1c02ce2e0e.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c2955a1c02ce2e0e.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
