/root/repo/target/release/deps/downlake-7597885661908960.d: src/bin/downlake.rs

/root/repo/target/release/deps/downlake-7597885661908960: src/bin/downlake.rs

src/bin/downlake.rs:
