/root/repo/target/release/deps/downlake_repro-685b23846fcd5334.d: src/lib.rs

/root/repo/target/release/deps/libdownlake_repro-685b23846fcd5334.rlib: src/lib.rs

/root/repo/target/release/deps/libdownlake_repro-685b23846fcd5334.rmeta: src/lib.rs

src/lib.rs:
