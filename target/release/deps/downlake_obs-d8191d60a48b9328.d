/root/repo/target/release/deps/downlake_obs-d8191d60a48b9328.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

/root/repo/target/release/deps/downlake_obs-d8191d60a48b9328: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/manifest.rs:
crates/obs/src/registry.rs:
