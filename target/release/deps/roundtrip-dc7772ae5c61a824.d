/root/repo/target/release/deps/roundtrip-dc7772ae5c61a824.d: crates/avtype/tests/roundtrip.rs

/root/repo/target/release/deps/roundtrip-dc7772ae5c61a824: crates/avtype/tests/roundtrip.rs

crates/avtype/tests/roundtrip.rs:
