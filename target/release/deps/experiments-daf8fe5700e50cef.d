/root/repo/target/release/deps/experiments-daf8fe5700e50cef.d: tests/experiments.rs tests/common/mod.rs

/root/repo/target/release/deps/experiments-daf8fe5700e50cef: tests/experiments.rs tests/common/mod.rs

tests/experiments.rs:
tests/common/mod.rs:
