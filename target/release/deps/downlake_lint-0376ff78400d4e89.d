/root/repo/target/release/deps/downlake_lint-0376ff78400d4e89.d: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

/root/repo/target/release/deps/downlake_lint-0376ff78400d4e89: crates/lint/src/lib.rs crates/lint/src/baseline.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scan.rs crates/lint/src/walk.rs

crates/lint/src/lib.rs:
crates/lint/src/baseline.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
crates/lint/src/scan.rs:
crates/lint/src/walk.rs:
