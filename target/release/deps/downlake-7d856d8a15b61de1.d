/root/repo/target/release/deps/downlake-7d856d8a15b61de1.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs

/root/repo/target/release/deps/downlake-7d856d8a15b61de1: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/baselines.rs crates/core/src/experiments/evasion.rs crates/core/src/experiments/rules.rs crates/core/src/live.rs crates/core/src/pipeline.rs crates/core/src/render.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/baselines.rs:
crates/core/src/experiments/evasion.rs:
crates/core/src/experiments/rules.rs:
crates/core/src/live.rs:
crates/core/src/pipeline.rs:
crates/core/src/render.rs:
crates/core/src/report.rs:
