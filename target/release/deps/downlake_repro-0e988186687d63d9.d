/root/repo/target/release/deps/downlake_repro-0e988186687d63d9.d: src/lib.rs

/root/repo/target/release/deps/libdownlake_repro-0e988186687d63d9.rlib: src/lib.rs

/root/repo/target/release/deps/libdownlake_repro-0e988186687d63d9.rmeta: src/lib.rs

src/lib.rs:
