/root/repo/target/release/deps/stream-a653b2bde24e0540.d: crates/bench/src/bin/stream.rs

/root/repo/target/release/deps/stream-a653b2bde24e0540: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
