/root/repo/target/release/deps/properties-478f9ae16d5755fa.d: crates/types/tests/properties.rs

/root/repo/target/release/deps/properties-478f9ae16d5755fa: crates/types/tests/properties.rs

crates/types/tests/properties.rs:
