/root/repo/target/release/deps/downlake_groundtruth-5bd021cf3cf4f28e.d: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

/root/repo/target/release/deps/downlake_groundtruth-5bd021cf3cf4f28e: crates/groundtruth/src/lib.rs crates/groundtruth/src/engines.rs crates/groundtruth/src/labeler.rs crates/groundtruth/src/oracle.rs crates/groundtruth/src/scan.rs crates/groundtruth/src/urllabel.rs crates/groundtruth/src/whitelist.rs

crates/groundtruth/src/lib.rs:
crates/groundtruth/src/engines.rs:
crates/groundtruth/src/labeler.rs:
crates/groundtruth/src/oracle.rs:
crates/groundtruth/src/scan.rs:
crates/groundtruth/src/urllabel.rs:
crates/groundtruth/src/whitelist.rs:
