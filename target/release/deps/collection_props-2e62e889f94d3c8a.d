/root/repo/target/release/deps/collection_props-2e62e889f94d3c8a.d: tests/collection_props.rs

/root/repo/target/release/deps/collection_props-2e62e889f94d3c8a: tests/collection_props.rs

tests/collection_props.rs:
