/root/repo/target/release/deps/parallel-31eb2a4cbc45bf7a.d: crates/bench/src/bin/parallel.rs

/root/repo/target/release/deps/parallel-31eb2a4cbc45bf7a: crates/bench/src/bin/parallel.rs

crates/bench/src/bin/parallel.rs:
