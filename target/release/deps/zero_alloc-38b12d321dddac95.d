/root/repo/target/release/deps/zero_alloc-38b12d321dddac95.d: crates/stream/tests/zero_alloc.rs

/root/repo/target/release/deps/zero_alloc-38b12d321dddac95: crates/stream/tests/zero_alloc.rs

crates/stream/tests/zero_alloc.rs:
