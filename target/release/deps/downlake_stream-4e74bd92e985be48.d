/root/repo/target/release/deps/downlake_stream-4e74bd92e985be48.d: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

/root/repo/target/release/deps/libdownlake_stream-4e74bd92e985be48.rlib: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

/root/repo/target/release/deps/libdownlake_stream-4e74bd92e985be48.rmeta: crates/stream/src/lib.rs crates/stream/src/collector.rs crates/stream/src/engine.rs crates/stream/src/online.rs crates/stream/src/session.rs

crates/stream/src/lib.rs:
crates/stream/src/collector.rs:
crates/stream/src/engine.rs:
crates/stream/src/online.rs:
crates/stream/src/session.rs:
