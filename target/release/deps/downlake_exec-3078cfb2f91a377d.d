/root/repo/target/release/deps/downlake_exec-3078cfb2f91a377d.d: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

/root/repo/target/release/deps/downlake_exec-3078cfb2f91a377d: crates/exec/src/lib.rs crates/exec/src/pool.rs crates/exec/src/seed.rs crates/exec/src/shard.rs

crates/exec/src/lib.rs:
crates/exec/src/pool.rs:
crates/exec/src/seed.rs:
crates/exec/src/shard.rs:
