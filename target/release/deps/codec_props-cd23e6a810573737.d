/root/repo/target/release/deps/codec_props-cd23e6a810573737.d: crates/telemetry/tests/codec_props.rs

/root/repo/target/release/deps/codec_props-cd23e6a810573737: crates/telemetry/tests/codec_props.rs

crates/telemetry/tests/codec_props.rs:
