/root/repo/target/release/deps/downlake_bench-46d9033b2362e6c0.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

/root/repo/target/release/deps/downlake_bench-46d9033b2362e6c0: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/report.rs:
