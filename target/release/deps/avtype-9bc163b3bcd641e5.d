/root/repo/target/release/deps/avtype-9bc163b3bcd641e5.d: crates/avtype/src/bin/avtype.rs

/root/repo/target/release/deps/avtype-9bc163b3bcd641e5: crates/avtype/src/bin/avtype.rs

crates/avtype/src/bin/avtype.rs:
