/root/repo/target/release/deps/downlake-b2604aec99eee4a0.d: src/bin/downlake.rs

/root/repo/target/release/deps/downlake-b2604aec99eee4a0: src/bin/downlake.rs

src/bin/downlake.rs:
