/root/repo/target/release/deps/downlake_types-cbcbe57d261a42f3.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/label.rs crates/types/src/meta.rs crates/types/src/process.rs crates/types/src/rank.rs crates/types/src/time.rs crates/types/src/url.rs

/root/repo/target/release/deps/downlake_types-cbcbe57d261a42f3: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/label.rs crates/types/src/meta.rs crates/types/src/process.rs crates/types/src/rank.rs crates/types/src/time.rs crates/types/src/url.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/label.rs:
crates/types/src/meta.rs:
crates/types/src/process.rs:
crates/types/src/rank.rs:
crates/types/src/time.rs:
crates/types/src/url.rs:
