/root/repo/target/release/deps/downlake_types-ea8edd07959e6d31.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/label.rs crates/types/src/meta.rs crates/types/src/process.rs crates/types/src/rank.rs crates/types/src/time.rs crates/types/src/url.rs

/root/repo/target/release/deps/libdownlake_types-ea8edd07959e6d31.rlib: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/label.rs crates/types/src/meta.rs crates/types/src/process.rs crates/types/src/rank.rs crates/types/src/time.rs crates/types/src/url.rs

/root/repo/target/release/deps/libdownlake_types-ea8edd07959e6d31.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/label.rs crates/types/src/meta.rs crates/types/src/process.rs crates/types/src/rank.rs crates/types/src/time.rs crates/types/src/url.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/label.rs:
crates/types/src/meta.rs:
crates/types/src/process.rs:
crates/types/src/rank.rs:
crates/types/src/time.rs:
crates/types/src/url.rs:
