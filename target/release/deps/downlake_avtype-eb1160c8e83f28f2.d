/root/repo/target/release/deps/downlake_avtype-eb1160c8e83f28f2.d: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

/root/repo/target/release/deps/libdownlake_avtype-eb1160c8e83f28f2.rlib: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

/root/repo/target/release/deps/libdownlake_avtype-eb1160c8e83f28f2.rmeta: crates/avtype/src/lib.rs crates/avtype/src/behavior.rs crates/avtype/src/family.rs crates/avtype/src/map.rs crates/avtype/src/parse.rs

crates/avtype/src/lib.rs:
crates/avtype/src/behavior.rs:
crates/avtype/src/family.rs:
crates/avtype/src/map.rs:
crates/avtype/src/parse.rs:
