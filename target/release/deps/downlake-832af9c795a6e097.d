/root/repo/target/release/deps/downlake-832af9c795a6e097.d: src/bin/downlake.rs

/root/repo/target/release/deps/downlake-832af9c795a6e097: src/bin/downlake.rs

src/bin/downlake.rs:
