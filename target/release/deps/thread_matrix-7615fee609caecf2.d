/root/repo/target/release/deps/thread_matrix-7615fee609caecf2.d: tests/thread_matrix.rs tests/common/mod.rs

/root/repo/target/release/deps/thread_matrix-7615fee609caecf2: tests/thread_matrix.rs tests/common/mod.rs

tests/thread_matrix.rs:
tests/common/mod.rs:
