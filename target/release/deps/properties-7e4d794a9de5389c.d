/root/repo/target/release/deps/properties-7e4d794a9de5389c.d: crates/avtype/tests/properties.rs

/root/repo/target/release/deps/properties-7e4d794a9de5389c: crates/avtype/tests/properties.rs

crates/avtype/tests/properties.rs:
