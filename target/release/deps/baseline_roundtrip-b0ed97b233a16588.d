/root/repo/target/release/deps/baseline_roundtrip-b0ed97b233a16588.d: crates/lint/tests/baseline_roundtrip.rs

/root/repo/target/release/deps/baseline_roundtrip-b0ed97b233a16588: crates/lint/tests/baseline_roundtrip.rs

crates/lint/tests/baseline_roundtrip.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
