/root/repo/target/release/deps/downlake_analysis-de4f6d354dd0b521.d: crates/analysis/src/lib.rs crates/analysis/src/domains.rs crates/analysis/src/escalation.rs crates/analysis/src/frame.rs crates/analysis/src/labels.rs crates/analysis/src/legacy.rs crates/analysis/src/monthly.rs crates/analysis/src/packers.rs crates/analysis/src/prevalence.rs crates/analysis/src/processes.rs crates/analysis/src/signers.rs crates/analysis/src/stats.rs

/root/repo/target/release/deps/libdownlake_analysis-de4f6d354dd0b521.rlib: crates/analysis/src/lib.rs crates/analysis/src/domains.rs crates/analysis/src/escalation.rs crates/analysis/src/frame.rs crates/analysis/src/labels.rs crates/analysis/src/legacy.rs crates/analysis/src/monthly.rs crates/analysis/src/packers.rs crates/analysis/src/prevalence.rs crates/analysis/src/processes.rs crates/analysis/src/signers.rs crates/analysis/src/stats.rs

/root/repo/target/release/deps/libdownlake_analysis-de4f6d354dd0b521.rmeta: crates/analysis/src/lib.rs crates/analysis/src/domains.rs crates/analysis/src/escalation.rs crates/analysis/src/frame.rs crates/analysis/src/labels.rs crates/analysis/src/legacy.rs crates/analysis/src/monthly.rs crates/analysis/src/packers.rs crates/analysis/src/prevalence.rs crates/analysis/src/processes.rs crates/analysis/src/signers.rs crates/analysis/src/stats.rs

crates/analysis/src/lib.rs:
crates/analysis/src/domains.rs:
crates/analysis/src/escalation.rs:
crates/analysis/src/frame.rs:
crates/analysis/src/labels.rs:
crates/analysis/src/legacy.rs:
crates/analysis/src/monthly.rs:
crates/analysis/src/packers.rs:
crates/analysis/src/prevalence.rs:
crates/analysis/src/processes.rs:
crates/analysis/src/signers.rs:
crates/analysis/src/stats.rs:
