//! Real-data ingestion path: export a dataset to the CSV interchange
//! format, read it back as raw events, push those through the σ-capped
//! collection server, and run an analysis on the result — exactly what a
//! downstream user with genuine telemetry would do.
//!
//! ```text
//! cargo run --release --example csv_roundtrip
//! ```

use downlake_repro::analysis::{prevalence_report, LabelView};
use downlake_repro::core::{Study, StudyConfig};
use downlake_repro::synth::Scale;
use downlake_repro::telemetry::{csv, CollectionServer, ReportingPolicy};
use downlake_repro::types::FileLabel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Produce a dataset (a real deployment would skip this step).
    let study = Study::run(&StudyConfig::new(3).with_scale(Scale::Tiny));
    let original = study.dataset().stats();
    println!(
        "exporting {} events / {} files to CSV…",
        original.events, original.files
    );

    // 2. Export.
    let mut buffer: Vec<u8> = Vec::new();
    csv::write_events(study.dataset(), &mut buffer)?;
    println!("  {} bytes of CSV", buffer.len());

    // 3. Re-ingest through the collection server (as a fresh feed).
    let raw_events = csv::read_raw_events(buffer.as_slice())?;
    let mut server = CollectionServer::new(ReportingPolicy::paper_default());
    for event in raw_events {
        server.observe(event);
    }
    let replayed = server.into_dataset();
    let stats = replayed.stats();
    println!(
        "re-ingested: {} events, {} files, {} machines",
        stats.events, stats.files, stats.machines
    );
    assert_eq!(stats.events, original.events, "lossless round trip");
    assert_eq!(stats.files, original.files);
    assert_eq!(stats.machines, original.machines);

    // 4. Any analysis runs unchanged on the replayed dataset. Labels here
    //    come from the original study's oracle; a real deployment would
    //    plug its own ground-truth source into the LabelView.
    let gt = study.ground_truth();
    let types = study.types();
    let view = LabelView::new(|h| gt.label(h), |h| types.malware_type(h));
    let report = prevalence_report(&replayed, &view, 20);
    println!(
        "replayed analysis: P(prevalence=1) = {:.1}%, {:.1}% of machines touched unknown files",
        report.prevalence_one_share, report.machines_touching_unknown
    );
    let unknown_files = replayed
        .files()
        .iter()
        .filter(|r| view.label(r.hash) == FileLabel::Unknown)
        .count();
    println!(
        "{:.1}% of replayed files are unknown — the long tail survives the round trip",
        100.0 * unknown_files as f64 / stats.files as f64
    );
    Ok(())
}
