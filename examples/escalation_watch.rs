//! Escalation watch: the §V-B "from adware/PUP to malware" analysis as a
//! monitoring scenario. Finds machines whose first infection was
//! "low-severity" (adware/PUP) and reports how quickly they escalated to
//! damaging malware, compared against the benign baseline — Fig. 5's
//! argument that adware is a leading indicator of compromise.
//!
//! ```text
//! cargo run --release --example escalation_watch
//! ```

use downlake_repro::analysis::{escalation_cdf, EscalationKind};
use downlake_repro::core::{Study, StudyConfig};
use downlake_repro::synth::Scale;
use downlake_repro::types::{FileLabel, MalwareType};

fn main() {
    let study = Study::run(&StudyConfig::new(99).with_scale(Scale::Small));
    let view = study.label_view();
    let report = escalation_cdf(study.dataset(), &view);

    println!("escalation profile (share of escalating machines within N days):\n");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "seed", "day 0", "≤1 day", "≤5 days", "≤30 days", "machines"
    );
    for kind in EscalationKind::ALL {
        if let Some(cdf) = report.curve(kind) {
            println!(
                "{:<10} {:>7.1}% {:>7.1}% {:>7.1}% {:>8.1}% {:>9}",
                kind.name(),
                100.0 * cdf.eval(0.0),
                100.0 * cdf.eval(1.0),
                100.0 * cdf.eval(5.0),
                100.0 * cdf.eval(30.0),
                cdf.len(),
            );
        }
    }

    // The operational takeaway: rank machines by "watch priority" — an
    // adware/PUP execution without (yet) a damaging follow-up.
    let mut at_risk = 0usize;
    let mut already_escalated = 0usize;
    for machine in study.dataset().machines() {
        let mut seeded = false;
        let mut escalated = false;
        for event in study.dataset().events_of_machine(machine) {
            if view.label(event.file) != FileLabel::Malicious {
                continue;
            }
            match view.malware_type(event.file) {
                Some(MalwareType::Adware) | Some(MalwareType::Pup) => seeded = true,
                Some(MalwareType::Undefined) | None => {}
                Some(_) if seeded => escalated = true,
                Some(_) => {}
            }
        }
        if seeded && escalated {
            already_escalated += 1;
        } else if seeded {
            at_risk += 1;
        }
    }
    println!(
        "\n{} machines executed adware/PUP and already escalated to damaging malware;",
        already_escalated
    );
    println!(
        "{} machines executed adware/PUP and are still escalation candidates (watchlist).",
        at_risk
    );
}
