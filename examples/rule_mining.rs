//! Rule mining walkthrough: train the §VI rule-based classifier on one
//! month, inspect the human-readable rules, and interrogate it about
//! hypothetical download events.
//!
//! ```text
//! cargo run --release --example rule_mining
//! ```

use downlake_repro::core::{Study, StudyConfig};
use downlake_repro::features::{build_training_set, Extractor, FeatureVector};
use downlake_repro::rulelearn::{ConflictPolicy, PartLearner, TreeConfig};
use downlake_repro::synth::Scale;
use downlake_repro::types::{FileHash, Month};
use std::collections::BTreeMap;

fn main() {
    let study = Study::run(&StudyConfig::new(7).with_scale(Scale::Small));
    let extractor = Extractor::new(study.dataset(), study.url_labeler());
    let gt = study.ground_truth();

    // Training data: the labeled files of January. A BTreeMap keeps the
    // training-instance order (and therefore PART rule induction)
    // deterministic run-to-run.
    let mut vectors: BTreeMap<FileHash, FeatureVector> = BTreeMap::new();
    for event in study.dataset().month(Month::January).events() {
        vectors
            .entry(event.file)
            .or_insert_with(|| extractor.extract_event(event));
    }
    let instances = build_training_set(vectors.iter().map(|(&h, v)| (v, gt.label(h))));
    println!("training on {instances}");

    let learner = PartLearner::new(TreeConfig {
        min_leaf: 4,
        prune: false,
        ..TreeConfig::default()
    });
    let rules = learner
        .learn(&instances)
        .reevaluate(&instances)
        .select_with(0.001, 10);
    println!(
        "selected {} rules at τ=0.1% (of {} extracted)\n",
        rules.len(),
        learner.learn(&instances).len()
    );

    println!("ten highest-coverage rules:");
    let mut sorted: Vec<_> = rules.rules().to_vec();
    sorted.sort_by_key(|rule| std::cmp::Reverse(rule.covered));
    for rule in sorted.iter().take(10) {
        println!("  {}", rule.render(rules.schema()));
    }

    // Interrogate the classifier about hand-built download scenarios.
    println!("\nclassifying hypothetical downloads (conflicts are rejected):");
    let scenarios: [(&str, [&str; 8]); 4] = [
        (
            "Somoto-signed NSIS installer via Chrome from a top-1k host",
            [
                "Somoto Ltd.",
                "thawte code signing ca g2",
                "NSIS",
                "Google Inc",
                "verisign class 3 code signing 2010 ca",
                "(unpacked)",
                "browser",
                "top 1k",
            ],
        ),
        (
            "TeamViewer-signed setup via Chrome",
            [
                "TeamViewer",
                "digicert assured id code signing ca-1",
                "INNO",
                "Google Inc",
                "verisign class 3 code signing 2010 ca",
                "(unpacked)",
                "browser",
                "top 1k",
            ],
        ),
        (
            "unsigned executable dropped by Acrobat Reader",
            [
                "(unsigned)",
                "(unsigned)",
                "(unpacked)",
                "Adobe Systems Incorporated",
                "verisign class 3 code signing 2010 ca",
                "(unpacked)",
                "acrobat reader",
                "unranked",
            ],
        ),
        (
            "unsigned UPX-packed file from an unranked domain",
            [
                "(unsigned)",
                "(unsigned)",
                "UPX",
                "Microsoft Windows",
                "verisign class 3 code signing 2010 ca",
                "(unpacked)",
                "windows",
                "unranked",
            ],
        ),
    ];
    for (what, values) in scenarios {
        let verdict = rules.classify_values(&values, ConflictPolicy::Reject);
        println!(
            "  {what}: {}",
            verdict.class_name().unwrap_or("no confident verdict")
        );
    }
}
