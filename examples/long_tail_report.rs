//! Regenerates every table and figure of the paper's evaluation and
//! prints them as one plain-text report.
//!
//! ```text
//! cargo run --release --example long_tail_report [tiny|small|default|large|paper] [seed] [--threads N]
//! ```
//!
//! Scale controls the synthetic population as a fraction of the paper's
//! (default: 1/16 ≈ 190k events; `paper` regenerates at full 3M-event
//! scale and takes minutes). `--threads 0` uses one worker per available
//! core; any thread count produces byte-identical output.

use downlake_repro::core::{report, Study, StudyConfig};
use downlake_repro::synth::Scale;

fn parse_scale(arg: &str) -> Option<Scale> {
    match arg {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "default" => Some(Scale::Default),
        "large" => Some(Scale::Large),
        "paper" => Some(Scale::Paper),
        _ => arg.parse::<f64>().ok().map(Scale::Fraction),
    }
}

fn main() {
    let mut threads = 1usize;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = args.next().and_then(|v| v.parse().ok()).unwrap_or(1);
        } else {
            positional.push(arg);
        }
    }
    let scale = positional
        .first()
        .and_then(|a| parse_scale(a))
        .unwrap_or(Scale::Default);
    let seed = positional
        .get(1)
        .and_then(|a| a.parse::<u64>().ok())
        .unwrap_or(42);

    eprintln!("running study at {scale:?}, seed {seed}, threads {threads}…");
    let study = Study::run(
        &StudyConfig::new(seed)
            .with_scale(scale)
            .with_threads(threads),
    );
    println!("{}", report::full_report(&study));
}
