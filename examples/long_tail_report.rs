//! Regenerates every table and figure of the paper's evaluation and
//! prints them as one plain-text report.
//!
//! ```text
//! cargo run --release --example long_tail_report [tiny|small|default|large|paper] [seed]
//! ```
//!
//! Scale controls the synthetic population as a fraction of the paper's
//! (default: 1/16 ≈ 190k events; `paper` regenerates at full 3M-event
//! scale and takes minutes).

use downlake_repro::core::{report, Study, StudyConfig};
use downlake_repro::synth::Scale;

fn parse_scale(arg: &str) -> Option<Scale> {
    match arg {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "default" => Some(Scale::Default),
        "large" => Some(Scale::Large),
        "paper" => Some(Scale::Paper),
        _ => arg.parse::<f64>().ok().map(Scale::Fraction),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args
        .first()
        .and_then(|a| parse_scale(a))
        .unwrap_or(Scale::Default);
    let seed = args
        .get(1)
        .and_then(|a| a.parse::<u64>().ok())
        .unwrap_or(42);

    eprintln!("running study at {scale:?}, seed {seed}…");
    let study = Study::run(&StudyConfig::new(seed).with_scale(scale));
    println!("{}", report::full_report(&study));
}
