//! Quickstart: run a small study end to end and print the headline
//! long-tail findings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use downlake_repro::core::{experiments, Study, StudyConfig};
use downlake_repro::synth::Scale;
use downlake_repro::types::FileLabel;

fn main() {
    // A 1/64-scale world runs in a couple of seconds.
    let config = StudyConfig::new(42).with_scale(Scale::Small);
    println!("generating world and collecting telemetry (seed 42, 1/64 scale)…");
    let study = Study::run(&config);

    let stats = study.dataset().stats();
    println!(
        "\ncollected {} download events from {} machines ({} distinct files, {} domains)",
        stats.events, stats.machines, stats.files, stats.domains
    );

    // The paper's headline: the long tail stays unknown.
    let view = study.label_view();
    let total = study.dataset().files().len();
    let unknown = study
        .dataset()
        .files()
        .iter()
        .filter(|r| view.label(r.hash) == FileLabel::Unknown)
        .count();
    println!(
        "{:.1}% of downloaded files have no ground truth (paper: 83%)",
        100.0 * unknown as f64 / total as f64
    );

    println!("\n{}", experiments::table2(&study));
    println!("{}", experiments::fig5_quantiles(&study));

    let outcome = experiments::rule_experiments(&study);
    println!(
        "rule-based labeling: {:.1}% of unknowns labeled, expansion {:.2}x (paper: 28.3%, 2.33x)",
        outcome.unknown_labeled_share(),
        outcome.expansion_factor()
    );
    if let Some(rule) = outcome.example_rules.first() {
        println!("example learned rule:\n  {rule}");
    }
}
