#!/usr/bin/env sh
# Lint gate for the workspace: formatting plus clippy with warnings
# promoted to errors. Run from the repository root before sending a PR;
# CI can call it verbatim.
#
#   sh .github/lint-gate.sh
#
# Note: property-test helper functions are only referenced from inside
# `proptest!` blocks, so building against a stubbed/offline proptest can
# report spurious dead-code warnings in `*_props.rs` / `properties.rs`
# test files. Against the real dependency set the gate is clean.
set -eu

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
