#!/usr/bin/env sh
# Lint gate for the workspace: formatting, clippy with warnings promoted
# to errors, then the custom determinism/hot-path static-analysis pass.
# Run from the repository root before sending a PR; CI can call it
# verbatim.
#
#   sh .github/lint-gate.sh
#
# Note: property-test helper functions are only referenced from inside
# `proptest!` blocks, so building against a stubbed/offline proptest can
# report spurious dead-code warnings in `*_props.rs` / `properties.rs`
# test files. Against the real dependency set the gate is clean.
set -eu

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings

# Rustdoc gate: the API docs must build warning-free (missing_docs is
# a hard warning in every published crate; broken intra-doc links fail
# here too). `--lib` because the `downlake` CLI bin intentionally shares
# its name with the core library crate, which cargo reports as a doc
# output collision.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --lib

# downlake-lint: the baseline is empty and stays empty — `--check`
# fails (non-zero) on ANY finding and rejects a non-empty
# lint-baseline.json outright. Fix the finding, or justify an
# unavoidable site inline with
#   // downlake-lint: allow(<rule>) — <reason>
# (reasonless allows are ignored). Reasoned allows are themselves
# ratcheted: lint-allows.json pins the per-rule count and `--check`
# fails when any rule's count grows. Lower it with --update-allows
# after burning an allow down. The run also emits a SARIF 2.1.0 report
# for code-host annotation.
echo "downlake-lint: checking determinism & hot-path rules (zero-findings gate + allow ratchet)"
cargo run -p downlake-lint --release -- --check --sarif lint.sarif

# The SARIF report must be machine-readable: parse it with the in-repo
# JSON parser (no external tooling in hermetic CI) and sanity-check the
# fields dashboards key on. The committed tests/sarif_smoke.rs suite
# pins the same shape in-process; this checks the real artifact.
python3 - <<'EOF'
import json
doc = json.load(open("lint.sarif"))
assert doc["version"] == "2.1.0", "SARIF version"
run = doc["runs"][0]
assert run["tool"]["driver"]["name"] == "downlake-lint"
assert len(run["tool"]["driver"]["rules"]) == 9, "nine rules declared"
print("downlake-lint: SARIF artifact parses (%d result(s))" % len(run["results"]))
EOF

# Smoke-run the parallel-speedup bench at tiny scale: exercises the
# worker pool end to end and fails if thread count changes one byte of
# the report. (Timing numbers at this scale are noise; ignore them.)
echo "parallel_speedup: tiny-scale smoke run (byte-identity across thread counts)"
cargo run -p downlake-bench --release --bin parallel -- --smoke

# Smoke-run the stream-throughput bench at tiny scale: replays the raw
# event stream through the online subsystem and fails unless every
# replay (per-event and pooled micro-batches) ends byte-identical to
# the batch pipeline.
echo "stream_throughput: tiny-scale smoke run (online/batch identity)"
cargo run -p downlake-bench --release --bin stream -- --smoke

# Smoke-run the sharded-service bench at tiny scale: drives the full
# stream through the StreamService at every (threads × shards) grid
# cell with a February hot swap published at epoch 500, and fails
# unless all cells end in the same logical state AND a swap-free run's
# verdicts equal the single StreamSession replay's. The committed
# tests/service_equivalence.rs suite pins the same invariants (plus
# snapshot/resume identity) in-process.
echo "service_throughput: tiny-scale smoke run (grid/session identity, hot swap exercised)"
cargo run -p downlake-bench --release --bin service -- --smoke

# Smoke-run the query-engine bench at tiny scale: runs all sixteen
# analysis passes twice — once through the pre-refactor bespoke loops,
# once through the downlake-query relational engine — and fails unless
# the rendered tables are byte-identical. (Timing at this scale is
# noise; the committed BENCH_query.json holds the large-scale numbers.)
echo "query_tables: tiny-scale smoke run (engine/loops identity)"
cargo run -p downlake-bench --release --bin query -- --smoke

# Smoke-run the sweep-fanout bench at tiny scale: fans a 3×3 (σ × τ)
# sensitivity sweep out over the pool at 1 vs 4 threads and fails
# unless the timing-stripped sweep surfaces are byte-identical. The
# committed tests/sweep_determinism.rs suite pins the same invariant
# in-process; this exercises the sweep-level pool end to end.
echo "sweep_fanout: tiny-scale smoke run (surface identity across pool widths)"
cargo run -p downlake-bench --release --bin sweep -- --smoke

# Smoke-run the lake-cache bench at tiny scale: runs the same study
# in-RAM, lake-cold (generate + spill segments), and lake-warm (reopen
# cached segments), and fails unless all three reports are
# byte-identical AND the warm run performed zero event generation
# (checked through the obs counters). The lake root is a tempdir the
# bin removes on exit. The committed tests/lake_equivalence.rs suite
# pins the same invariants in-process.
echo "lake_cache: tiny-scale smoke run (cold/warm/in-RAM identity, warm generation-free)"
cargo run -p downlake-bench --release --bin lake -- --smoke

# Observability smoke: a run manifest must come out of the CLI and its
# non-timing sections must be byte-identical at 1 vs 4 threads. The
# committed tests/obs_manifest.rs suite pins the same invariant
# in-process; this exercises the actual `--obs` flag end to end.
echo "downlake-obs: manifest smoke (--obs at 1 vs 4 threads, stripped-timing identity)"
cargo run -p downlake-repro --release --bin downlake -- --scale tiny --threads 1 --obs /tmp/downlake-obs-t1.json run > /dev/null
cargo run -p downlake-repro --release --bin downlake -- --scale tiny --threads 4 --obs /tmp/downlake-obs-t4.json run > /dev/null
python3 - <<'EOF'
import json
a = json.load(open("/tmp/downlake-obs-t1.json"))
b = json.load(open("/tmp/downlake-obs-t4.json"))
assert "timing" in a and "timing" in b, "manifest must carry a timing section"
a.pop("timing"); b.pop("timing")
assert a == b, "non-timing manifest sections diverged between 1 and 4 threads"
print("downlake-obs: manifests identical outside `timing`")
EOF
